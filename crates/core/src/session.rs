//! Sessions: a private object space over the shared permanent database.
//!
//! §6: "Each user session in the GemStone system has its own invocation of
//! the Interpreter, and its own Object Manager with a private object space.
//! Sessions have shared access to the permanent database through
//! transactions."
//!
//! A [`Session`]:
//! * faults committed objects into its [`Workspace`] on first touch,
//!   resolving unswizzled references through the GOOP table (§6);
//! * holds an immutable `Arc<CommittedView>` snapshot refreshed at
//!   transaction begin, and reads (faults, directory lookups, query
//!   evaluation) *as of* that snapshot, lock-free against the concurrent
//!   store — committers never block readers;
//! * tracks reads and writes for optimistic validation; mutation stays in
//!   the session-local workspace until commit, which is the only point
//!   that touches shared state (under the database's commit lock);
//! * carries the [`TimeDial`] — when set, every element fetch is conducted
//!   in that past database state and writes are refused;
//! * implements [`OpalWorld`] so the OPAL interpreter runs directly against
//!   it, and [`QueryContext`] so compiled selection blocks plan against the
//!   Directory Manager.

use crate::auth::{Access, DBA};
use crate::db::{CommittedView, Database, Schema};
use crate::meta::MethodSource;
use gemstone_calculus::{
    est_err_pct, scrape_selectivities, AlgExpr, IndexCatalog, JoinKey, OpProfile, PlanDecision,
    PlanOptions, PlanStats, Query, QueryContext, StatsView, Term, VarId, VarStats,
};
use gemstone_object::{
    structurally_equal, value_key, BodyFormat, ClassId, ConflictKind, ElemName, GemError,
    GemResult, Goop, HeapObject, Kernel, MethodId, MethodRef, Oop, OopKind, PRef, SegmentId,
    SymbolId, Workspace,
};
use gemstone_opal::{
    compile_doit_with_lints, effects, CompiledMethod, Effect, EffectSummary, Interpreter, Lint,
    OpalWorld, QueryTemplate,
};
use gemstone_storage::{DirKey, ObjectDelta};
use gemstone_telemetry::{
    Counter, Histogram, JournalEvent, MetricsRegistry, MetricsSnapshot, OpenSpan, SpanEvent,
    SpanKind, Telemetry,
};
use gemstone_temporal::{TimeDial, TxnTime};
use gemstone_txn::{AccessSet, ConflictReport, SlotId, TxnToken};
use std::cmp::Ordering;
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// High bit of a [`MethodId`] marking a session-local doIt body (lives in
/// the session's private table, never in the shared method vector).
const LOCAL_METHOD_BIT: u32 = 1 << 31;

/// A logged-in session.
pub struct Session {
    db: Arc<Database>,
    ws: Workspace,
    user: String,
    txn: Option<TxnToken>,
    /// The committed snapshot this session reads against: refreshed at
    /// transaction begin, immutable (and lock-free to read) afterwards.
    snap: Arc<CommittedView>,
    reads: AccessSet,
    dial: TimeDial,
    /// Globals assigned this transaction, not yet committed.
    pending_globals: HashMap<SymbolId, Oop>,
    /// True once this transaction wrote a *committed* object (directories
    /// then decline to serve queries until commit/abort).
    wrote_committed: bool,
    kernel: Kernel,
    block_class: ClassId,
    /// Session-local doIt bodies (statement code), indexed by
    /// `MethodId & !LOCAL_METHOD_BIT`. Executing statements therefore
    /// takes no shared method lock.
    local_methods: Vec<Arc<CompiledMethod>>,
    /// The plan and operator counters of the most recent query this session
    /// evaluated (select block or [`Session::query`]) — what `explain()`
    /// renders.
    last_plan: Option<(AlgExpr, PlanStats)>,
    /// Compile-time lints from the most recent [`Session::run`] (unused
    /// temporaries, shadowing, unreachable statements, impure select
    /// blocks). Advisory: a lint never blocks execution.
    last_lints: Vec<Lint>,
    /// Telemetry bundle shared with the database (clones share state).
    telemetry: Telemetry,
    /// Nonzero id attributing this session's spans in the shared tracer.
    session_id: u64,
    /// Lazily recorded session marker span (0 until tracing records one).
    session_span: u64,
    /// The open transaction span, when tracing captured the txn begin.
    txn_span: Option<OpenSpan>,
    /// Current statement span id — the parent of plan-operator and
    /// track-I/O spans (0 outside a statement or when unsampled).
    stmt_span: u64,
    /// True while [`Session::run`] is on the stack (distinguishes an
    /// unsampled statement from no statement at all).
    stmt_active: bool,
    /// Cached registry handles this session bumps (shared atomics).
    m: SessionMetrics,
    /// Profile the next query evaluation (set by `explain_analyze`).
    profile_next: bool,
    /// Per-operator profile of the most recent profiled query.
    last_profile: Option<OpProfile>,
    /// True when the current statement evaluated a select block / query.
    plan_this_stmt: bool,
    /// Statements at least this slow land in the slow log. `None` = off.
    slow_threshold_ns: Option<u64>,
    slow_log: Vec<SlowStatement>,
    /// Consecutive overlap conflicts; a storm (≥ 8) auto-captures a
    /// diagnostic bundle when the flight recorder is running. Watermark
    /// refusals (stale snapshot, not contention) neither feed nor reset it.
    consecutive_conflicts: u32,
    /// Clock stamp (ns) of the current transaction's begin — the zero
    /// point of the commit timeline's snapshot-age phase.
    txn_began_ns: u64,
    /// True while every statement of the open transaction was statically
    /// summarized `Pure`/`ReadOnly` *before* execution — the commit then
    /// skips the dirty-object walk and write-set construction entirely.
    /// Any unclassified entry point (a raw [`Session::send`], a direct
    /// OpalWorld write, a segment move) conservatively clears it.
    txn_static_ro: bool,
    /// True while the interpreter is running a statement the analysis
    /// proved read-only: a soundness tripwire — any write reaching the
    /// workspace under this flag is an analysis bug (debug-asserted).
    stmt_static_ro: bool,
    /// The effect summary of the most recent statement [`Session::run`]
    /// classified (what the REPL's `:effects` and tests inspect).
    last_effect: Option<EffectSummary>,
    /// How the planner chose the most recent query's plan (canonical plan,
    /// cost, alternatives) — `None` until a query runs.
    last_decision: Option<PlanChoiceRecord>,
    /// Label of the statement currently (or most recently) running, used
    /// to attribute `PlanChoice`/`PlanDrift` journal events.
    stmt_label: String,
}

/// The observable record of one planning decision: what `PlanChoice`
/// journals and what the plan-regression gate string-matches on.
#[derive(Debug, Clone)]
pub struct PlanChoiceRecord {
    /// Canonical chosen-plan string (`AlgExpr::describe`).
    pub canon: String,
    /// Estimated cost of the chosen plan, in row-visit units.
    pub est_cost: f64,
    /// Considered `(canonical plan, estimated cost)` pairs, chosen first.
    pub alternatives: Vec<(String, f64)>,
    /// True when statistics actually drove the choice.
    pub cost_based: bool,
    /// True when this plan followed a drift-triggered stats refresh.
    pub replan: bool,
}

/// What [`Session::resolve_stats_view`] hands the planner: per-range
/// `(var, committed-set goop)` pairs, the resolved statistics view, and
/// whether a drift-triggered refresh means this plan is a re-plan.
type ResolvedStats = (Vec<(u16, Option<u64>)>, Option<StatsView>, bool);

/// Consecutive conflicts that count as a storm (bundle auto-capture).
const CONFLICT_STORM_THRESHOLD: u32 = 8;

/// Estimate-vs-actual ratio at which an analyzed run counts as plan drift.
const DRIFT_RATIO: u64 = 4;
/// Noise floor for drift: both sides tiny means the miss is meaningless.
const DRIFT_FLOOR: u64 = 16;

/// One slow-log entry: a statement that exceeded the session's threshold.
#[derive(Clone, Debug)]
pub struct SlowStatement {
    /// The OPAL source text as submitted.
    pub source: String,
    /// The plan of the query the statement evaluated, or a placeholder
    /// when it ran no select block.
    pub plan_summary: String,
    pub wall_ns: u64,
}

/// Slow-log entries kept per session before new ones are dropped.
const SLOW_LOG_CAP: usize = 128;

/// The registry handles a session increments on its hot paths, resolved
/// once at login (get-or-create) so steady-state updates are lock-free
/// atomic adds on cells shared database-wide.
struct SessionMetrics {
    statements: Counter,
    statement_ns: Histogram,
    dispatches: Counter,
    sends: Counter,
    verify_checks: Counter,
    verify_rejects: Counter,
    rows_scanned: Counter,
    index_rows: Counter,
    index_hits: Counter,
    index_fallbacks: Counter,
    select_in: Counter,
    select_out: Counter,
    nest_loops: Counter,
    hash_builds: Counter,
    hash_probes: Counter,
    hash_matches: Counter,
    rows_out: Counter,
    effects_computed: Counter,
    effects_pure: Counter,
    effects_read_only: Counter,
    effects_writes_local: Counter,
    effects_writes_global: Counter,
    effects_unknown: Counter,
    effects_stmts_classified: Counter,
    effects_stmts_static_ro: Counter,
    effects_static_ro_commits: Counter,
    effects_invalidations: Counter,
    phase_snapshot_age: Histogram,
    phase_validation: Histogram,
    phase_safe_write: Histogram,
    phase_fsync: Histogram,
    phase_publish: Histogram,
    plan_choices: Counter,
    plan_cost_based: Counter,
    plan_replans: Counter,
    plan_drift: Counter,
}

impl SessionMetrics {
    fn bind(r: &MetricsRegistry) -> SessionMetrics {
        SessionMetrics {
            statements: r.counter("session.statements"),
            statement_ns: r.histogram("session.statement_ns"),
            dispatches: r.counter("opal.interp.dispatches"),
            sends: r.counter("opal.interp.sends"),
            verify_checks: r.counter("opal.verify.checks"),
            verify_rejects: r.counter("opal.verify.rejects"),
            rows_scanned: r.counter("calculus.rows_scanned"),
            index_rows: r.counter("calculus.index_rows"),
            index_hits: r.counter("calculus.index_hits"),
            index_fallbacks: r.counter("calculus.index_fallbacks"),
            select_in: r.counter("calculus.select_in"),
            select_out: r.counter("calculus.select_out"),
            nest_loops: r.counter("calculus.nest_loops"),
            hash_builds: r.counter("calculus.hash_builds"),
            hash_probes: r.counter("calculus.hash_probes"),
            hash_matches: r.counter("calculus.hash_matches"),
            rows_out: r.counter("calculus.rows_out"),
            effects_computed: r.counter("opal.effects.computed"),
            effects_pure: r.counter("opal.effects.pure"),
            effects_read_only: r.counter("opal.effects.read_only"),
            effects_writes_local: r.counter("opal.effects.writes_local"),
            effects_writes_global: r.counter("opal.effects.writes_global"),
            effects_unknown: r.counter("opal.effects.unknown"),
            effects_stmts_classified: r.counter("opal.effects.stmts_classified"),
            effects_stmts_static_ro: r.counter("opal.effects.stmts_static_ro"),
            effects_static_ro_commits: r.counter("opal.effects.static_ro_commits"),
            effects_invalidations: r.counter("opal.effects.invalidations"),
            phase_snapshot_age: r.histogram("commit.phase.snapshot_age_us"),
            phase_validation: r.histogram("commit.phase.validation_us"),
            phase_safe_write: r.histogram("commit.phase.safe_write_us"),
            phase_fsync: r.histogram("commit.phase.fsync_us"),
            phase_publish: r.histogram("commit.phase.publish_us"),
            plan_choices: r.counter("calculus.plan.choices"),
            plan_cost_based: r.counter("calculus.plan.cost_based"),
            plan_replans: r.counter("calculus.plan.replans"),
            plan_drift: r.counter("calculus.plan.drift"),
        }
    }

    /// The per-effect-class counter for one computed summary (the live
    /// twin of the journal's `effect_class_counter` replay rule).
    fn effect_class(&self, e: Effect) -> &Counter {
        match e {
            Effect::Pure => &self.effects_pure,
            Effect::ReadOnly => &self.effects_read_only,
            Effect::WritesLocal => &self.effects_writes_local,
            Effect::WritesGlobal => &self.effects_writes_global,
            Effect::Unknown => &self.effects_unknown,
        }
    }

    /// Fold one query's operator counters into the registry.
    fn note_plan(&self, s: &PlanStats) {
        self.rows_scanned.add(s.rows_scanned);
        self.index_rows.add(s.index_rows);
        self.index_hits.add(s.index_hits);
        self.index_fallbacks.add(s.index_fallbacks);
        self.select_in.add(s.select_in);
        self.select_out.add(s.select_out);
        self.nest_loops.add(s.nest_loops);
        self.hash_builds.add(s.hash_builds);
        self.hash_probes.add(s.hash_probes);
        self.hash_matches.add(s.hash_matches);
        self.rows_out.add(s.rows_out);
    }
}

impl Session {
    pub(crate) fn login(db: Arc<Database>, user: &str) -> Session {
        let (kernel, block_class) = {
            let schema = db.schema.read();
            (schema.kernel, schema.block_class)
        };
        let snap = db.committed_view();
        let telemetry = db.telemetry().clone();
        let session_id = telemetry.new_session_id();
        let m = SessionMetrics::bind(&telemetry.registry);
        Session {
            db,
            ws: Workspace::new(),
            user: user.to_string(),
            txn: None,
            snap,
            reads: AccessSet::new(),
            dial: TimeDial::now(),
            pending_globals: HashMap::new(),
            wrote_committed: false,
            kernel,
            block_class,
            local_methods: Vec::new(),
            last_plan: None,
            last_lints: Vec::new(),
            telemetry,
            session_id,
            session_span: 0,
            txn_span: None,
            stmt_span: 0,
            stmt_active: false,
            m,
            profile_next: false,
            last_profile: None,
            plan_this_stmt: false,
            slow_threshold_ns: None,
            slow_log: Vec::new(),
            consecutive_conflicts: 0,
            txn_began_ns: 0,
            txn_static_ro: true,
            stmt_static_ro: false,
            last_effect: None,
            last_decision: None,
            stmt_label: String::new(),
        }
    }

    pub(crate) fn internal_login(db: Arc<Database>) -> Session {
        Session::login(db, DBA)
    }

    /// The shared database.
    pub fn database(&self) -> &Arc<Database> {
        &self.db
    }

    /// The session's user name.
    pub fn user(&self) -> &str {
        &self.user
    }

    // ----------------------------------------------------- transactions

    fn ensure_txn(&mut self) {
        if self.txn.is_none() {
            // Snapshot refresh, then registration — atomically with
            // respect to log pruning. `begin_at_checked` refuses a start
            // the log has been pruned past (a concurrent commit won the
            // window between our view read and registration); the refusal
            // means a newer view is already published, so re-reading and
            // retrying always makes progress. Once registered, pruning
            // never passes our start, so a writing commit cannot be
            // conservatively aborted by the watermark.
            self.txn = Some(loop {
                self.snap = self.db.committed_view();
                if let Some(token) =
                    self.db.txns.begin_at_checked_for(self.snap.time, self.session_id)
                {
                    break token;
                }
                std::thread::yield_now();
            });
            self.txn_began_ns = self.telemetry.clock().now_ns();
            if self.telemetry.tracer.enabled() {
                let parent = self.ensure_session_span();
                self.txn_span = Some(self.telemetry.tracer.begin(
                    SpanKind::Transaction,
                    self.session_id,
                    parent,
                    "txn",
                ));
            }
            self.reads.clear();
            self.txn_static_ro = true;
            self.refresh_workspace();
        }
    }

    /// Record the session's marker span on first use while tracing is on,
    /// so transaction and statement spans have a per-session root.
    fn ensure_session_span(&mut self) -> u64 {
        if self.session_span == 0 {
            let start = self.telemetry.clock().now_ns();
            let end = self.telemetry.clock().now_ns();
            self.session_span = self.telemetry.tracer.record(
                SpanKind::Session,
                self.session_id,
                0,
                &format!("session {}", self.user),
                start,
                end,
            );
        }
        self.session_span
    }

    fn end_txn_span(&mut self) {
        if let Some(sp) = self.txn_span.take() {
            self.telemetry.tracer.end(sp);
        }
    }

    /// The innermost live span id — what store-level track-I/O spans and
    /// plan-operator spans attach to.
    fn io_parent(&self) -> u64 {
        if self.stmt_span != 0 {
            self.stmt_span
        } else {
            self.txn_span.as_ref().map(|s| s.id()).unwrap_or(self.session_span)
        }
    }

    /// The committed time this session's faults read at: the transaction
    /// snapshot while one is open, else the latest published commit.
    fn read_time(&self) -> TxnTime {
        if self.txn.is_some() {
            self.snap.time
        } else {
            self.db.committed_view().time
        }
    }

    /// Refresh cached committed copies to the transaction's snapshot, so a
    /// new transaction sees a fresh consistent state while session
    /// pointers stay stable.
    fn refresh_workspace(&mut self) {
        let targets: Vec<(Oop, Goop)> =
            self.ws.iter().filter_map(|(oop, o)| o.goop.map(|g| (oop, g))).collect();
        let session_id = self.session_id;
        let io_parent = self.io_parent();
        let t = self.snap.time;
        for (oop, goop) in targets {
            let Ok(pobj) = self.db.store.get_traced(goop, session_id, io_parent) else {
                continue;
            };
            let class = pobj.class;
            let segment = pobj.segment;
            let alias_next = pobj.alias_next;
            let elems: Vec<(ElemName, PRef)> = pobj.elements_at(t).collect();
            let bytes = pobj.bytes_at(t).map(|b| b.to_vec());
            drop(pobj);
            let mut elements = BTreeMap::new();
            for (name, v) in elems {
                elements.insert(name, pref_to_oop(&self.ws, v));
            }
            let obj = self.ws.get_mut(oop).expect("refresh target");
            obj.class = class;
            obj.refresh_from_fault(elements, bytes, alias_next, segment);
        }
    }

    /// Commit the current transaction: optimistic validation, then the
    /// Linker/Boxer/Commit-Manager pipeline, then directory maintenance,
    /// then snapshot publication. Writing commits serialize on the
    /// database's commit lock; read-only commits skip it entirely.
    pub fn commit(&mut self) -> GemResult<TxnTime> {
        let Some(token) = self.txn else {
            // Nothing read or written: trivially committed "at" now.
            return Ok(self.db.txns.now());
        };
        // Statically proven read-only: every statement this transaction
        // ran was summarized Pure/ReadOnly before execution, so the
        // workspace cannot hold a dirty object — skip the dirty walk, the
        // delta vector and the write-set construction entirely and commit
        // lock-free with an empty write set. (A schema flush staged by
        // concurrent DDL still takes the full path.)
        if self.txn_static_ro
            && self.pending_globals.is_empty()
            && !self.db.schema.read().schema_dirty
        {
            debug_assert!(
                self.ws.dirty_objects().is_empty(),
                "effect analysis misclassified a writing transaction as read-only"
            );
            let time = self.db.txns.commit(token, &self.reads, &AccessSet::new())?;
            self.m.effects_static_ro_commits.inc();
            if self.telemetry.journal.enabled() {
                self.telemetry.journal.emit(&JournalEvent::EffectCommit);
            }
            self.consecutive_conflicts = 0;
            self.reads.clear();
            self.txn = None;
            self.wrote_committed = false;
            self.end_txn_span();
            return Ok(time);
        }
        // 1. Assign identities to new dirty objects (the store's GOOP
        //    allocator is internally synchronized).
        let dirty = self.ws.dirty_objects();
        for &oop in &dirty {
            let obj = self.ws.get_mut(oop)?;
            if obj.goop.is_none() {
                let g = self.db.store.alloc_goop();
                obj.goop = Some(g);
                self.ws.bind_goop(oop, g);
            }
        }
        // 2. Build deltas and the write set.
        let mut writes = AccessSet::new();
        let mut deltas = Vec::with_capacity(dirty.len());
        for &oop in &dirty {
            let obj = self.ws.get(oop)?;
            let goop = obj.goop.expect("assigned above");
            let mut elem_writes = Vec::new();
            if obj.is_new() {
                writes.record(SlotId::Object(goop));
                for (name, v) in obj.raw_elements() {
                    elem_writes.push((name, self.oop_to_pref(v)?));
                }
            } else {
                for name in obj.dirty_elems() {
                    writes.record(SlotId::Elem(goop, name));
                    elem_writes.push((name, self.oop_to_pref(obj.elem(name))?));
                }
            }
            let bytes_write = if obj.is_new() || obj.bytes_dirty() {
                if obj.bytes_dirty() {
                    writes.record(SlotId::Bytes(goop));
                }
                obj.bytes().map(|b| b.to_vec())
            } else {
                None
            };
            deltas.push(ObjectDelta {
                goop,
                class: obj.class,
                segment: obj.segment,
                alias_next: obj.alias_next(),
                elem_writes,
                bytes_write,
                is_new: obj.is_new(),
            });
        }
        // Read-only fast path: nothing to persist, so validation is
        // trivial (the transaction serializes at its snapshot) and the
        // commit pipeline — and its lock — is skipped entirely.
        let schema_write = !self.pending_globals.is_empty() || self.db.schema.read().schema_dirty;
        if deltas.is_empty() && !schema_write {
            let time = self.db.txns.commit(token, &self.reads, &writes)?;
            self.consecutive_conflicts = 0;
            self.reads.clear();
            self.txn = None;
            self.wrote_committed = false;
            self.end_txn_span();
            return Ok(time);
        }
        // 3. Validate, serialized with every other writing commit so the
        //    validation order, the storage write order, and the snapshot
        //    publication order all agree. Two-phase: `prepare` validates
        //    and assigns the commit time but logs nothing — the commit is
        //    only recorded (`finalize`) after the safe-write group is on
        //    disk, so a storage failure leaves no phantom commit in the
        //    validation log or the prune watermark.
        // Commit-timeline phase 1: how stale the snapshot is by the time
        // the writing commit enters validation. Phase 2 (validation)
        // includes the wait for the commit lock — under contention that
        // wait *is* the validation story.
        let validate_from = self.telemetry.clock().now_ns();
        let snapshot_age_us = validate_from.saturating_sub(self.txn_began_ns) / 1_000;
        let db = self.db.clone();
        let _commit = db.commit_lock.lock();
        let time = match self.db.txns.prepare(&token, &self.reads, &writes) {
            Ok(t) => t,
            Err(e) => {
                // Conflict: the transaction is dead; discard its workspace.
                self.end_txn_span();
                self.discard_workspace();
                if let GemError::TransactionConflict { kind, .. } = &e {
                    match kind {
                        ConflictKind::Overlap => {
                            self.consecutive_conflicts += 1;
                            if self.consecutive_conflicts == CONFLICT_STORM_THRESHOLD {
                                self.db.capture_bundle("conflict-storm");
                            }
                        }
                        // A watermark refusal is snapshot staleness, not
                        // contention: it neither feeds nor resets the storm.
                        ConflictKind::Watermark => {}
                    }
                }
                return Err(e);
            }
        };
        self.consecutive_conflicts = 0;
        let validation_us = self.telemetry.clock().now_ns().saturating_sub(validate_from) / 1_000;
        // 4. Persist (metadata travels in the same safe-write group). A
        //    schema-only commit consumed no transaction time: it rewrites
        //    metadata at the unchanged committed time.
        let committed = self.db.committed_view();
        let store_time = if time > committed.time { time } else { committed.time };
        let pending: Vec<(SymbolId, Oop)> = self.pending_globals.drain().collect();
        let mut globals = committed.globals.clone();
        if !pending.is_empty() {
            let mut next = (*globals).clone();
            for (sym, v) in pending {
                let p = match v.kind() {
                    OopKind::Heap(_) => PRef::goop(
                        self.ws.get(v)?.goop.expect("globals commit after goop assignment"),
                    ),
                    OopKind::Ref(g) => PRef::goop(g),
                    _ => v.to_pref_immediate().expect("immediate"),
                };
                next.insert(sym, p);
            }
            globals = Arc::new(next);
        }
        let phases;
        let publish_us;
        let mut stats_updates = Vec::new();
        {
            let mut schema = self.db.schema.write();
            if schema.schema_dirty
                || schema.stats_dirty
                || !Arc::ptr_eq(&globals, &committed.globals)
            {
                schema.flush_meta(&self.db.store, &globals);
            }
            phases = match self.db.store.commit_batch_traced(
                store_time,
                &deltas,
                self.session_id,
                self.io_parent(),
            ) {
                Ok(p) => p,
                Err(e) => {
                    // Storage failure: the prepared transaction dies with no
                    // trace in the commit log — nothing was published, so
                    // later snapshots validate against a consistent history.
                    drop(schema);
                    self.db.txns.abort(token);
                    self.end_txn_span();
                    self.discard_workspace();
                    return Err(e);
                }
            };
            // 5. Directory maintenance (§6: the Linker "calling for
            //    restructuring of directories as needed").
            let Schema { symbols, dirs, .. } = &mut *schema;
            if let Err(e) = dirs.on_commit(&self.db.store, symbols, &deltas, store_time) {
                drop(schema);
                self.db.txns.abort(token);
                self.end_txn_span();
                self.discard_workspace();
                return Err(e);
            }
            // Statistics maintenance rides the same choke point: refresh
            // cardinality and key sketches for the sets this batch touched.
            // Best-effort — the commit is already durable, so a refresh
            // failure degrades statistics, never the commit. Journaling
            // happens after the schema lock drops.
            if self.db.stats_maintenance_enabled() {
                let Schema { dirs, stats, stats_dirty, .. } = &mut *schema;
                stats_updates = dirs
                    .refresh_stats_for_deltas(&self.db.store, &deltas, stats, store_time.ticks())
                    .unwrap_or_default();
                if !stats_updates.is_empty() {
                    *stats_dirty = true;
                }
            }
            // The writes are durable: log the commit and publish the view.
            let publish_from = self.telemetry.clock().now_ns();
            self.db.txns.finalize(token, time, &writes)?;
            let view = Arc::new(CommittedView { time: store_time, globals });
            *self.db.committed.write() = view.clone();
            self.snap = view;
            publish_us = self.telemetry.clock().now_ns().saturating_sub(publish_from) / 1_000;
        }
        self.db.journal_stats_updates(&stats_updates);
        // Commit timeline: record the phase breakdown and journal it with
        // the *same* values, so replaying the journal rebuilds the
        // `commit.phase.*` histograms byte-exactly.
        self.m.phase_snapshot_age.record(snapshot_age_us);
        self.m.phase_validation.record(validation_us);
        self.m.phase_safe_write.record(phases.safe_write_us);
        self.m.phase_fsync.record(phases.fsync_us);
        self.m.phase_publish.record(publish_us);
        if self.telemetry.journal.enabled() {
            self.telemetry.journal.emit(&JournalEvent::CommitTimeline {
                session: self.session_id,
                snapshot_age_us,
                validation_us,
                safe_write_us: phases.safe_write_us,
                fsync_us: phases.fsync_us,
                publish_us,
            });
        }
        // 6. The workspace copies are now clean cached copies.
        for &oop in &dirty {
            let goop = self.ws.get(oop)?.goop.expect("assigned");
            self.ws.get_mut(oop)?.mark_committed(goop);
        }
        self.reads.clear();
        self.txn = None;
        self.wrote_committed = false;
        self.end_txn_span();
        Ok(store_time)
    }

    /// Abort: discard every uncommitted change. "An entire session workspace
    /// can be discarded" (§6).
    pub fn abort(&mut self) {
        if let Some(token) = self.txn.take() {
            self.db.txns.abort(token);
        }
        self.end_txn_span();
        self.discard_workspace();
    }

    fn discard_workspace(&mut self) {
        self.ws = Workspace::new();
        self.pending_globals.clear();
        self.reads.clear();
        self.txn = None;
        self.wrote_committed = false;
    }

    // -------------------------------------------------------- time dial

    /// Set the time dial: subsequent reads see the database state at `t`;
    /// writes are refused until the dial returns to now.
    pub fn set_time_dial(&mut self, t: TxnTime) {
        self.dial.set(t);
    }

    /// Return the dial to the present.
    pub fn time_dial_now(&mut self) {
        self.dial.reset();
    }

    /// §5.4's SafeTime: the most recent state no running transaction can
    /// change.
    pub fn safe_time(&self) -> TxnTime {
        self.db.txns.safe_time()
    }

    /// The recovery report of the reopening that produced this session's
    /// database (all-default if the database was freshly created). Lets a
    /// session observe and assert what crash recovery saw.
    pub fn recovery_report(&self) -> gemstone_storage::RecoveryReport {
        self.db.recovery_report()
    }

    // ------------------------------------------------- faulting & refs

    /// Resolve a value to a usable session pointer, faulting committed
    /// objects on first touch (the GOOP "resolved through a global object
    /// table", §6).
    pub fn swizzle(&mut self, oop: Oop) -> GemResult<Oop> {
        match oop.as_unswizzled() {
            None => Ok(oop),
            Some(g) => {
                if let Some(local) = self.ws.lookup_goop(g) {
                    return Ok(local);
                }
                self.fault(g)
            }
        }
    }

    fn fault(&mut self, goop: Goop) -> GemResult<Oop> {
        let t = self.read_time();
        let pobj = self.db.store.get_traced(goop, self.session_id, self.io_parent())?;
        self.db.schema.read().auth.check(&self.user, pobj.segment, Access::Read)?;
        let class = pobj.class;
        let segment = pobj.segment;
        let alias_next = pobj.alias_next;
        let elems: Vec<(ElemName, PRef)> = pobj.elements_at(t).collect();
        let bytes = pobj.bytes_at(t).map(|b| b.to_vec());
        drop(pobj);
        let mut elements = BTreeMap::new();
        for (name, v) in elems {
            elements.insert(name, pref_to_oop(&self.ws, v));
        }
        let obj = HeapObject::faulted(class, goop, segment, elements, bytes, alias_next);
        Ok(self.ws.alloc(obj))
    }

    /// A workspace write or allocation is happening: the transaction can
    /// no longer claim the static read-only commit path. During a
    /// statement the analysis proved read-only this must be unreachable —
    /// the debug assertion is the soundness tripwire every write-bearing
    /// test in the suite arms.
    fn note_write(&mut self) {
        debug_assert!(
            !self.stmt_static_ro,
            "write during a statement the effect analysis classified read-only"
        );
        self.txn_static_ro = false;
    }

    fn oop_to_pref(&self, oop: Oop) -> GemResult<PRef> {
        match oop.kind() {
            OopKind::Ref(g) => Ok(PRef::goop(g)),
            OopKind::Heap(_) => {
                let g =
                    self.ws.get(oop)?.goop.ok_or_else(|| {
                        GemError::Corrupt("uncommitted object escaped commit".into())
                    })?;
                Ok(PRef::goop(g))
            }
            _ => Ok(oop.to_pref_immediate().expect("immediate")),
        }
    }

    fn record_read(&mut self, slot: SlotId) {
        if !self.dial.in_past() {
            self.reads.record(slot);
        }
    }

    /// True if the session has uncommitted writes to *committed* objects
    /// (directories then decline to serve queries, because they reflect only
    /// committed state — transient scratch objects cannot be in a committed
    /// collection, so they don't count).
    pub fn has_local_writes(&self) -> bool {
        self.wrote_committed
    }

    /// Move an object to a protection segment (DBA operation; the change
    /// commits with the object).
    pub fn set_segment(&mut self, obj: Oop, segment: SegmentId) -> GemResult<()> {
        if self.user != DBA {
            return Err(GemError::AuthorizationDenied {
                segment: segment.0,
                detail: "only the DBA may move objects between segments".into(),
            });
        }
        let obj = self.swizzle(obj)?;
        self.txn_static_ro = false;
        let o = self.ws.get_mut(obj)?;
        o.segment = segment;
        o.touch_for_commit(); // the segment change must reach the disk
        Ok(())
    }

    // ------------------------------------------------------- execution

    /// Compile and execute a block of OPAL source, returning the value of
    /// its last statement (§6: "Communication with GemStone is done in
    /// blocks of OPAL source code. Compilation and execution of those blocks
    /// is done entirely in the GemStone system").
    pub fn run(&mut self, source: &str) -> GemResult<Oop> {
        let t0 = self.telemetry.clock().now_ns();
        self.ensure_txn();
        let parent = if self.telemetry.tracer.enabled() {
            match self.txn_span.as_ref() {
                Some(s) => s.id(),
                None => self.ensure_session_span(),
            }
        } else {
            0
        };
        let label: String = source.chars().take(60).collect();
        self.stmt_label = label.clone();
        let span =
            self.telemetry.tracer.begin(SpanKind::Statement, self.session_id, parent, &label);
        self.stmt_span = span.id();
        self.stmt_active = true;
        self.plan_this_stmt = false;
        let result = self.run_compiled(source);
        self.stmt_span = 0;
        self.stmt_active = false;
        self.telemetry.tracer.end(span);
        let wall = self.telemetry.clock().now_ns().saturating_sub(t0);
        self.m.statements.inc();
        self.m.statement_ns.record(wall);
        if self.telemetry.journal.enabled() {
            self.telemetry.journal.emit(&JournalEvent::Statement {
                session: self.session_id,
                wall_ns: wall,
                label: label.clone(),
            });
        }
        if let Some(threshold) = self.slow_threshold_ns {
            if wall >= threshold && self.slow_log.len() < SLOW_LOG_CAP {
                let plan_summary = if self.plan_this_stmt {
                    self.last_plan
                        .as_ref()
                        .map(|(p, _)| p.describe())
                        .unwrap_or_else(|| "(no plan)".into())
                } else {
                    "(no select block)".into()
                };
                self.slow_log.push(SlowStatement {
                    source: source.to_string(),
                    plan_summary,
                    wall_ns: wall,
                });
            }
        }
        // Structured failures auto-capture a diagnostic bundle while the
        // flight recorder is running.
        match &result {
            Err(GemError::DiskDead) => {
                self.db.capture_bundle("disk-dead");
            }
            Err(GemError::CorruptMethod(_)) => {
                self.db.capture_bundle("corrupt-method");
            }
            _ => {}
        }
        result
    }

    fn run_compiled(&mut self, source: &str) -> GemResult<Oop> {
        let (method, lints) = compile_doit_with_lints(self, source)?;
        self.last_lints = lints;
        // Classify before execution: a transaction whose every statement
        // proves Pure/ReadOnly commits on the static fast path.
        let summary = self.classify_statement(&method);
        let static_ro = summary.effect.is_read_only();
        self.txn_static_ro &= static_ro;
        self.last_effect = Some(summary);
        let id = self.add_doit_code(method)?;
        self.stmt_static_ro = static_ro;
        let result = Interpreter::new(self).run_doit(id);
        self.stmt_static_ro = false;
        // The statement body is dead once the interpreter returns (block
        // closures hold their own Arc to the method), so long-lived
        // sessions don't accumulate doIt bodies.
        self.local_methods.pop();
        result
    }

    /// Run the effect analysis over a compiled statement body, journaling
    /// any callee summaries computed along the way plus the statement's
    /// own classification. Lock order: the effects cache is acquired
    /// *before* any schema/methods read lock the analyzer takes.
    fn classify_statement(&mut self, m: &CompiledMethod) -> EffectSummary {
        let db = self.db.clone();
        let mut cache = db.effects.lock();
        let summary = effects::summarize_body(self, &mut cache, m);
        let fresh = cache.take_fresh();
        drop(cache);
        for (id, s) in &fresh {
            self.note_summary(*id, s);
        }
        self.m.effects_stmts_classified.inc();
        let static_ro = summary.effect.is_read_only();
        if static_ro {
            self.m.effects_stmts_static_ro.inc();
        }
        if self.telemetry.journal.enabled() {
            self.telemetry.journal.emit(&JournalEvent::EffectClassify { static_ro });
        }
        summary
    }

    /// Counter + journal moves for one freshly computed method summary.
    fn note_summary(&mut self, id: MethodId, s: &EffectSummary) {
        self.m.effects_computed.inc();
        self.m.effect_class(s.effect).inc();
        if self.telemetry.journal.enabled() {
            let selector = self.sym_name(self.method(id).selector);
            self.telemetry.journal.emit(&JournalEvent::EffectSummary {
                selector,
                effect: s.effect.as_str().to_string(),
                reads: s.globals_read.len() as u64,
                writes: s.globals_written.len() as u64,
            });
        }
    }

    /// Drop every cached effect summary (a method was installed or
    /// rebound). Called only after schema/methods write guards are
    /// released — the effects cache sits *above* them in the hierarchy.
    fn invalidate_effects(&mut self) {
        let dropped = self.db.effects.lock().invalidate();
        if dropped {
            self.m.effects_invalidations.inc();
            if self.telemetry.journal.enabled() {
                self.telemetry.journal.emit(&JournalEvent::EffectInvalidate);
            }
        }
    }

    /// The effect summary of an installed method, computed (and cached)
    /// on demand: `class_name` then instance-side `selector`, falling
    /// back to the class side.
    pub fn method_effects(&mut self, class_name: &str, selector: &str) -> GemResult<EffectSummary> {
        let (class, sel) = {
            let schema = self.db.schema.read();
            let cname = schema
                .symbols
                .lookup(class_name)
                .ok_or_else(|| GemError::RuntimeError(format!("no such class {class_name}")))?;
            let class = schema
                .classes
                .by_name(cname)
                .ok_or_else(|| GemError::RuntimeError(format!("no such class {class_name}")))?;
            let sel =
                schema.symbols.lookup(selector).ok_or_else(|| GemError::DoesNotUnderstand {
                    class: class_name.to_string(),
                    selector: selector.to_string(),
                })?;
            (class, sel)
        };
        let mref = self
            .lookup_method(class, sel)
            .or_else(|| self.lookup_class_method(class, sel))
            .ok_or_else(|| GemError::DoesNotUnderstand {
                class: class_name.to_string(),
                selector: selector.to_string(),
            })?;
        let db = self.db.clone();
        let mut cache = db.effects.lock();
        let summary = effects::summarize_ref(self, &mut cache, mref);
        let fresh = cache.take_fresh();
        drop(cache);
        for (id, s) in &fresh {
            self.note_summary(*id, s);
        }
        Ok(summary)
    }

    /// The effect summary of the most recent statement [`Session::run`]
    /// classified, if any.
    pub fn last_effect(&self) -> Option<&EffectSummary> {
        self.last_effect.as_ref()
    }

    /// Render an effect summary with symbol names resolved — what the
    /// REPL's `:effects` command prints.
    pub fn render_effect(&self, s: &EffectSummary) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = write!(out, "effect: {}", s.effect);
        if s.effect.is_read_only() {
            out.push_str("  (eligible for the static read-only commit path)");
        }
        let names = |set: &std::collections::BTreeSet<gemstone_object::SymbolId>| {
            set.iter().map(|g| self.sym_name(*g)).collect::<Vec<_>>().join(", ")
        };
        if !s.globals_read.is_empty() {
            let _ = write!(out, "\nglobals read: {}", names(&s.globals_read));
        }
        if !s.globals_written.is_empty() {
            let _ = write!(out, "\nglobals written: {}", names(&s.globals_written));
        }
        if s.invoking_params != 0 {
            let ps: Vec<String> = (0..32u32)
                .filter(|i| s.invoking_params & (1 << i) != 0)
                .map(|i| i.to_string())
                .collect();
            let _ = write!(
                out,
                "\ninvokes block parameter(s) {} — judged at each call site",
                ps.join(", ")
            );
        }
        out
    }

    /// Compile-time lints produced by the most recent [`Session::run`].
    /// Advisory only — lints never prevent execution.
    pub fn last_lints(&self) -> &[Lint] {
        &self.last_lints
    }

    /// Evaluate a multi-range calculus [`Query`] directly (OPAL select
    /// blocks compile to single-range queries; joins across collections
    /// enter here). Plans against the Directory Manager's catalog, records
    /// the chosen plan and its counters for [`Session::explain`], and
    /// returns one tuple per result-template row.
    pub fn query(&mut self, query: &Query) -> GemResult<Vec<Vec<Oop>>> {
        self.ensure_txn();
        if !self.stmt_active {
            self.stmt_label = "(query)".into();
        }
        let catalog = self.db.schema.read().dirs.catalog().clone();
        self.eval_with_catalog(query, &catalog)
    }

    /// Evaluate against a catalog, honoring the profile-next flag: the
    /// single evaluation entry behind [`Session::query`] and select
    /// blocks. Folds the plan counters into the registry either way.
    ///
    /// With statistics enabled the planner gets a [`StatsView`] resolved
    /// for this query's sets (refreshing any drift-staled set first), the
    /// decision is journaled as `PlanChoice`, and analyzed runs feed
    /// observed selectivities and drift episodes back into the catalog.
    fn eval_with_catalog(
        &mut self,
        query: &Query,
        catalog: &IndexCatalog,
    ) -> GemResult<Vec<Vec<Oop>>> {
        self.plan_this_stmt = true;
        let stats_on = self.db.stats_enabled();
        let (var_sets, view, replan) =
            if stats_on { self.resolve_stats_view(query)? } else { (Vec::new(), None, false) };
        let had_stats = view.is_some();
        let options = PlanOptions { hash_joins: true, stats: view };
        if self.profile_next {
            let clock = self.telemetry.clock().clone();
            let now = move || clock.now_ns();
            let (rows, decision, stats, profile) =
                gemstone_calculus::eval_query_profiled_with(self, query, catalog, &options, &now)?;
            self.record_plan_spans(&profile);
            self.m.note_plan(&stats);
            self.journal_plan(&stats);
            if stats_on {
                self.note_plan_choice(&decision, replan);
                if had_stats {
                    self.absorb_profile(&decision, &profile, &var_sets);
                }
            }
            self.last_profile = Some(profile);
            self.note_decision(&decision, replan);
            self.last_plan = Some((decision.plan, stats));
            Ok(rows)
        } else {
            let (rows, decision, stats) =
                gemstone_calculus::eval_query_explained_with(self, query, catalog, &options)?;
            self.m.note_plan(&stats);
            self.journal_plan(&stats);
            if stats_on {
                self.note_plan_choice(&decision, replan);
            }
            self.note_decision(&decision, replan);
            self.last_plan = Some((decision.plan, stats));
            Ok(rows)
        }
    }

    /// Resolve each range variable's constant domain to its committed set
    /// and look up catalog statistics: the planner's [`StatsView`], plus
    /// the `(var, set)` map the feedback paths use. Sets a prior drift
    /// episode marked stale are refreshed from their directories first —
    /// the re-optimization protocol — and `replan = true` rides out.
    fn resolve_stats_view(&mut self, query: &Query) -> GemResult<ResolvedStats> {
        let mut var_sets: Vec<(u16, Option<u64>)> = Vec::with_capacity(query.ranges.len());
        for range in &query.ranges {
            let set = if let Term::Const(c) = &range.domain {
                let c = self.swizzle(*c)?;
                self.ws.get(c).ok().and_then(|o| o.goop).map(|g| g.0)
            } else {
                None
            };
            var_sets.push((range.var.0, set));
        }
        let stale: Vec<u64> = {
            let schema = self.db.schema.read();
            var_sets
                .iter()
                .filter_map(|(_, s)| *s)
                .filter(|g| schema.stats.get(*g).is_some_and(|s| s.stale))
                .collect()
        };
        let mut replan = false;
        if !stale.is_empty() {
            let now = self.db.txns.now().ticks();
            let mut refreshed = Vec::new();
            {
                let mut schema = self.db.schema.write();
                let Schema { dirs, stats, stats_dirty, .. } = &mut *schema;
                for g in stale {
                    let ups = dirs.refresh_stats_for_set(&self.db.store, Goop(g), stats, now)?;
                    if !ups.is_empty() {
                        *stats_dirty = true;
                        replan = true;
                    }
                    refreshed.extend(ups);
                }
            }
            self.db.journal_stats_updates(&refreshed);
        }
        let schema = self.db.schema.read();
        if schema.stats.is_empty() {
            return Ok((var_sets, None, replan));
        }
        let mut per_var: Vec<Option<VarStats>> = vec![None; query.var_count()];
        for (var, set) in &var_sets {
            if let Some(s) = set.and_then(|g| schema.stats.get(g)) {
                per_var[*var as usize] = Some(VarStats::from_set(s));
            }
        }
        Ok((var_sets, Some(StatsView { per_var }), replan))
    }

    /// Count and journal one planning decision (the counter moves and the
    /// `PlanChoice` event travel together, so replay stays byte-exact).
    fn note_plan_choice(&self, decision: &PlanDecision, replan: bool) {
        self.m.plan_choices.inc();
        if decision.cost_based {
            self.m.plan_cost_based.inc();
        }
        if replan {
            self.m.plan_replans.inc();
        }
        if self.telemetry.journal.enabled() {
            self.telemetry.journal.emit(&JournalEvent::PlanChoice {
                session: self.session_id,
                label: self.stmt_label.clone(),
                chosen: decision.canon.clone(),
                cost_milli: (decision.est_cost * 1000.0) as u64,
                alternatives: decision.alternatives.len() as u64,
                cost_based: decision.cost_based,
                replan,
            });
        }
    }

    /// Remember the decision for [`Session::last_decision`].
    fn note_decision(&mut self, decision: &PlanDecision, replan: bool) {
        self.last_decision = Some(PlanChoiceRecord {
            canon: decision.canon.clone(),
            est_cost: decision.est_cost,
            alternatives: decision.alternatives.clone(),
            cost_based: decision.cost_based,
            replan,
        });
    }

    /// After an analyzed run with statistics: scrape each residual
    /// select's observed selectivity back into the catalog, then compare
    /// the worst per-operator estimate against its actual. A miss beyond
    /// [`DRIFT_RATIO`] (above the [`DRIFT_FLOOR`] noise floor) journals a
    /// `PlanDrift` episode and marks the query's sets stale, so the next
    /// execution re-plans over fresh statistics.
    fn absorb_profile(
        &mut self,
        decision: &PlanDecision,
        profile: &OpProfile,
        var_sets: &[(u16, Option<u64>)],
    ) {
        let scraped = scrape_selectivities(&decision.plan, profile);
        if !scraped.is_empty() {
            let mut schema = self.db.schema.write();
            let mut any = false;
            for (var, key, rows_in, rows_out) in &scraped {
                let set = var_sets.iter().find(|(v, _)| v == var).and_then(|(_, s)| *s);
                if let Some(g) = set {
                    schema
                        .stats
                        .entry(g)
                        .predicates
                        .entry(key.clone())
                        .or_default()
                        .observe(*rows_in, *rows_out);
                    any = true;
                }
            }
            if any {
                schema.stats_dirty = true;
            }
        }
        if let Some((op, est, actual)) = profile.worst_estimate() {
            let hi = est.max(actual);
            let lo = est.min(actual).max(1);
            if hi >= DRIFT_FLOOR && hi / lo >= DRIFT_RATIO {
                self.m.plan_drift.inc();
                if self.telemetry.journal.enabled() {
                    self.telemetry.journal.emit(&JournalEvent::PlanDrift {
                        session: self.session_id,
                        label: self.stmt_label.clone(),
                        plan: decision.canon.clone(),
                        op: op as u64,
                        est,
                        actual,
                        err_pct: est_err_pct(est, actual),
                    });
                }
                let mut schema = self.db.schema.write();
                for (_, set) in var_sets {
                    if let Some(g) = set {
                        schema.stats.mark_stale(*g);
                    }
                }
            }
        }
    }

    /// Mirror one query's operator counters into the flight recorder (the
    /// journal twin of [`SessionMetrics::note_plan`]).
    fn journal_plan(&self, s: &PlanStats) {
        if !self.telemetry.journal.enabled() {
            return;
        }
        self.telemetry.journal.emit(&JournalEvent::Plan {
            rows_scanned: s.rows_scanned,
            index_rows: s.index_rows,
            index_hits: s.index_hits,
            index_fallbacks: s.index_fallbacks,
            select_in: s.select_in,
            select_out: s.select_out,
            nest_loops: s.nest_loops,
            hash_builds: s.hash_builds,
            hash_probes: s.hash_probes,
            hash_matches: s.hash_matches,
            rows_out: s.rows_out,
        });
    }

    /// Replay a per-operator profile into the tracer as plan-operator
    /// spans under the current statement (or session when profiling ran
    /// outside a statement). Times are reconstructed: every operator
    /// starts at the replay instant and lasts its measured inclusive wall
    /// time, so the tree nests plausibly without per-operator timestamps.
    fn record_plan_spans(&mut self, profile: &OpProfile) {
        if !self.telemetry.tracer.enabled() {
            return;
        }
        if self.stmt_active && self.stmt_span == 0 {
            return; // unsampled statement: suppress its whole subtree
        }
        let root_parent =
            if self.stmt_span != 0 { self.stmt_span } else { self.ensure_session_span() };
        let n = profile.nodes.len();
        let mut parent_of = vec![usize::MAX; n];
        for (i, node) in profile.nodes.iter().enumerate() {
            for &c in &node.children {
                parent_of[c] = i;
            }
        }
        let base = self.telemetry.clock().now_ns();
        let mut span_ids = vec![0u64; n];
        for (i, node) in profile.nodes.iter().enumerate() {
            // Pre-order guarantees the parent's span id is already known.
            let parent =
                if parent_of[i] == usize::MAX { root_parent } else { span_ids[parent_of[i]] };
            span_ids[i] = self.telemetry.tracer.record(
                SpanKind::PlanOperator,
                self.session_id,
                parent,
                &node.label,
                base,
                base + node.wall_ns.max(1),
            );
        }
    }

    /// EXPLAIN ANALYZE: run a block of OPAL source with per-operator
    /// profiling and render the algebra tree of the query it evaluated,
    /// annotated with rows-in/rows-out, hash-build sizes, and per-operator
    /// wall time, followed by the aggregate operator counters. Returns a
    /// placeholder when the statement evaluated no select block.
    pub fn explain_analyze(&mut self, source: &str) -> GemResult<String> {
        self.profile_next = true;
        self.last_profile = None;
        let result = self.run(source);
        self.profile_next = false;
        result?;
        Ok(self.render_analysis().unwrap_or_else(|| "(no select block evaluated)".into()))
    }

    /// [`Session::query`] with per-operator profiling: the profile lands
    /// in [`Session::last_profile`] / [`Session::render_analysis`].
    pub fn query_analyzed(&mut self, query: &Query) -> GemResult<Vec<Vec<Oop>>> {
        self.profile_next = true;
        self.last_profile = None;
        let result = self.query(query);
        self.profile_next = false;
        result
    }

    /// The per-operator profile of the most recent profiled query.
    pub fn last_profile(&self) -> Option<&OpProfile> {
        self.last_profile.as_ref()
    }

    /// Render the most recent profiled query (plan, per-operator
    /// annotations, aggregate counters), or `None` when nothing was
    /// profiled yet.
    pub fn render_analysis(&self) -> Option<String> {
        let profile = self.last_profile.as_ref()?;
        let (plan, stats) = self.last_plan.as_ref()?;
        Some(format!("plan: {}\n{}{}", plan.describe(), profile.render(), stats.summary()))
    }

    // ------------------------------------------------------- telemetry

    /// A diffable point-in-time copy of every database-wide metric.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.telemetry.registry.snapshot()
    }

    /// This session's buffered spans, oldest first.
    pub fn trace(&self) -> Vec<SpanEvent> {
        self.telemetry.tracer.events(Some(self.session_id))
    }

    /// Enable/disable span tracing (database-wide; affects all sessions).
    pub fn set_tracing(&self, on: bool) {
        self.telemetry.tracer.set_enabled(on);
    }

    /// Record 1 in `n` statement spans (with their subtrees).
    pub fn set_trace_sampling(&self, n: u64) {
        self.telemetry.tracer.set_sampling(n);
    }

    /// This session's span-attribution id (nonzero, unique per login).
    pub fn session_id(&self) -> u64 {
        self.session_id
    }

    /// The forensic report of this session's most recent validation
    /// conflict: what kind it was, which committed transaction killed it,
    /// and which objects (with their home tracks) overlapped. `None`
    /// until the session loses a validation.
    pub fn last_conflict(&self) -> Option<ConflictReport> {
        self.db.txns.last_conflict_for(self.session_id)
    }

    /// The shared telemetry bundle (registry + tracer + clock).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Statements at least this slow are recorded in the slow log
    /// (`None` disables — the default).
    pub fn set_slow_threshold(&mut self, ns: Option<u64>) {
        self.slow_threshold_ns = ns;
    }

    /// Recorded slow statements, oldest first (capped at 128).
    pub fn slow_log(&self) -> &[SlowStatement] {
        &self.slow_log
    }

    pub fn clear_slow_log(&mut self) {
        self.slow_log.clear();
    }

    /// Render the most recent query's plan and operator counters, or `None`
    /// when the session has not evaluated a query yet.
    pub fn explain(&self) -> Option<String> {
        self.last_plan
            .as_ref()
            .map(|(plan, stats)| format!("plan: {}\n{}", plan.describe(), stats.summary()))
    }

    /// The operator counters of the most recent query (for reports/tests).
    pub fn last_plan_stats(&self) -> Option<PlanStats> {
        self.last_plan.as_ref().map(|(_, s)| *s)
    }

    /// How the planner chose the most recent query's plan: canonical plan
    /// string, estimated cost, considered alternatives, whether statistics
    /// drove the choice, and whether it followed a drift-triggered refresh.
    pub fn last_decision(&self) -> Option<&PlanChoiceRecord> {
        self.last_decision.as_ref()
    }

    /// Render the planner's statistics catalog (REPL `:stats`): one block
    /// per set with cardinality, staleness, key sketches, and observed
    /// predicate selectivities.
    pub fn render_stats(&self) -> String {
        use std::fmt::Write as _;
        let stats = self.db.planner_stats();
        if stats.is_empty() {
            return "(statistics catalog empty — enable with Database::enable_stats)".into();
        }
        let mut out = String::new();
        for (goop, set) in &stats.sets {
            let _ = writeln!(
                out,
                "set {goop}: cardinality={} updated_at={}{}",
                set.cardinality,
                set.updated_at,
                if set.stale { " STALE" } else { "" },
            );
            for (path, sk) in &set.sketches {
                let _ = writeln!(
                    out,
                    "  sketch {path}: total={} distinct={} fuzz={} points={}",
                    sk.total,
                    sk.distinct,
                    sk.fuzz,
                    sk.points.len(),
                );
            }
            for (key, obs) in &set.predicates {
                let _ = writeln!(
                    out,
                    "  pred {key}: {}/{} sel={:.4}",
                    obs.rows_out,
                    obs.rows_in,
                    obs.selectivity().unwrap_or(0.0),
                );
            }
        }
        out
    }

    /// Run a block and render its result (the host-side display of §6's
    /// "returning results"). Dispatches `printString`, so user-defined
    /// printing applies.
    pub fn run_display(&mut self, source: &str) -> GemResult<String> {
        let v = self.run(source)?;
        self.display(v)
    }

    /// Send a message to an object from Rust.
    pub fn send(&mut self, recv: Oop, selector: &str, args: &[Oop]) -> GemResult<Oop> {
        self.ensure_txn();
        // Unclassified execution: anything could be written.
        self.txn_static_ro = false;
        let sel = self.intern(selector);
        Interpreter::new(self).send_message(recv, sel, args)
    }

    /// Render any value by dispatching `printString` (falling back to the
    /// built-in printer if the method errors).
    pub fn display(&mut self, v: Oop) -> GemResult<String> {
        match self.send(v, "printString", &[]) {
            Ok(shown) => match self.string_value(shown) {
                Some(s) => Ok(s),
                None => gemstone_opal::world::print_oop(self, v, Default::default()),
            },
            Err(_) => gemstone_opal::world::print_oop(self, v, Default::default()),
        }
    }

    pub(crate) fn recompile_method(&mut self, ms: &MethodSource) -> GemResult<()> {
        let m = gemstone_opal::compile_method(self, ms.class, &ms.source)?;
        let sel = m.selector;
        let id = self.add_method_code(m)?;
        self.install_method(ms.class, sel, MethodRef::Compiled(id), ms.class_side);
        Ok(())
    }

    // ------------------------------------------------ internal helpers

    /// Bytecode verification shared by doIt and installed-method
    /// registration (counters + journal events move here exactly once).
    fn verified(&mut self, m: CompiledMethod) -> GemResult<CompiledMethod> {
        self.m.verify_checks.inc();
        if let Err(e) = gemstone_opal::verify::check(&m) {
            self.m.verify_rejects.inc();
            if self.telemetry.journal.enabled() {
                self.telemetry.journal.emit(&JournalEvent::VerifyCheck { rejected: true });
            }
            return Err(e.into());
        }
        if self.telemetry.journal.enabled() {
            self.telemetry.journal.emit(&JournalEvent::VerifyCheck { rejected: false });
        }
        Ok(m)
    }

    /// Register a session-local doIt body: verified like any method but
    /// never installed database-wide, so executing statements takes no
    /// shared method lock.
    fn add_doit_code(&mut self, m: CompiledMethod) -> GemResult<MethodId> {
        let m = self.verified(m)?;
        self.local_methods.push(Arc::new(m));
        Ok(MethodId(LOCAL_METHOD_BIT | (self.local_methods.len() as u32 - 1)))
    }

    fn elem_read(&mut self, obj: Oop, name: ElemName) -> GemResult<Oop> {
        self.ensure_txn();
        let obj = self.swizzle(obj)?;
        let (goop, segment) = {
            let o = self.ws.get(obj)?;
            (o.goop, o.segment)
        };
        self.db.schema.read().auth.check(&self.user, segment, Access::Read)?;
        if let (Some(t), Some(g)) = (self.dial.setting(), goop) {
            // Past state: read through the permanent histories.
            let v = self
                .db
                .store
                .get_traced(g, self.session_id, self.io_parent())?
                .elem_at(name, t)
                .unwrap_or(PRef::NIL);
            return Ok(pref_to_oop(&self.ws, v));
        }
        if let Some(g) = goop {
            self.record_read(SlotId::Elem(g, name));
        }
        let v = self.ws.get(obj)?.elem(name);
        let v2 = self.swizzle(v)?;
        if v2 != v {
            self.ws.get_mut(obj)?.swizzle_elem_in_place(name, v2);
        }
        Ok(v2)
    }

    fn elem_write(&mut self, obj: Oop, name: ElemName, v: Oop) -> GemResult<()> {
        self.ensure_txn();
        self.note_write();
        let obj = self.swizzle(obj)?;
        // Past states are immutable — but transient scratch objects (no
        // permanent identity yet) stay writable even while the dial is set,
        // so read-only reports can build result collections.
        if self.ws.get(obj)?.goop.is_some() {
            if self.dial.in_past() {
                return Err(GemError::WriteInPast);
            }
            self.wrote_committed = true;
        }
        let segment = self.ws.get(obj)?.segment;
        self.db.schema.read().auth.check(&self.user, segment, Access::Write)?;
        self.ws.get_mut(obj)?.set_elem(name, v);
        Ok(())
    }
}

/// Convert a persistent value into a session pointer: immediates directly,
/// references either to the already-faulted copy or to an unswizzled ref.
fn pref_to_oop(ws: &Workspace, v: PRef) -> Oop {
    match v.as_goop() {
        Some(g) => ws.lookup_goop(g).unwrap_or_else(|| Oop::unswizzled(g)),
        None => v.to_oop_immediate().expect("immediate"),
    }
}

// ------------------------------------------------------------- OpalWorld

impl OpalWorld for Session {
    fn intern(&mut self, name: &str) -> SymbolId {
        // Fast path: almost every intern is a lookup of an existing
        // symbol, served under the shared read lock.
        if let Some(s) = self.db.schema.read().symbols.lookup(name) {
            return s;
        }
        self.db.schema.write().symbols.intern(name)
    }

    fn sym_name(&self, id: SymbolId) -> String {
        self.db.schema.read().symbols.name(id).to_string()
    }

    fn class_named(&self, name: SymbolId) -> Option<ClassId> {
        self.db.schema.read().classes.by_name(name)
    }

    fn class_name_of(&self, class: ClassId) -> SymbolId {
        self.db.schema.read().classes.get(class).name
    }

    fn superclass_of(&self, class: ClassId) -> Option<ClassId> {
        self.db.schema.read().classes.get(class).superclass
    }

    fn define_subclass(
        &mut self,
        superclass: ClassId,
        name: SymbolId,
        instvars: Vec<SymbolId>,
    ) -> GemResult<ClassId> {
        let mut schema = self.db.schema.write();
        let id = schema.classes.subclass(name, superclass, instvars)?;
        schema.schema_dirty = true;
        Ok(id)
    }

    fn add_instvar(&mut self, class: ClassId, var: SymbolId) -> GemResult<()> {
        let mut schema = self.db.schema.write();
        schema.classes.add_instvar(class, var)?;
        schema.schema_dirty = true;
        Ok(())
    }

    fn declares_instvar(&self, class: ClassId, var: SymbolId) -> bool {
        self.db.schema.read().classes.declares_instvar(class, var)
    }

    fn lookup_method(&self, class: ClassId, selector: SymbolId) -> Option<MethodRef> {
        self.db.schema.read().classes.lookup_method(class, selector).map(|(_, m)| m)
    }

    fn lookup_class_method(&self, class: ClassId, selector: SymbolId) -> Option<MethodRef> {
        self.db.schema.read().classes.lookup_class_method(class, selector).map(|(_, m)| m)
    }

    fn install_method(
        &mut self,
        class: ClassId,
        selector: SymbolId,
        m: MethodRef,
        class_side: bool,
    ) {
        {
            let mut schema = self.db.schema.write();
            if class_side {
                schema.classes.add_class_method(class, selector, m);
            } else {
                schema.classes.add_method(class, selector, m);
            }
            schema.schema_dirty = true;
        }
        // Rebinding a selector can change any closed-world effect join;
        // invalidate only after the schema write guard is released (the
        // effects cache is above `schema` in the lock hierarchy).
        self.invalidate_effects();
    }

    fn is_kind_of(&self, a: ClassId, b: ClassId) -> bool {
        self.db.schema.read().classes.is_kind_of(a, b)
    }

    fn kernel(&self) -> Kernel {
        self.kernel
    }

    fn class_of(&self, oop: Oop) -> ClassId {
        match oop.kind() {
            OopKind::Ref(g) => self.db.store.get(g).map(|o| o.class).unwrap_or(self.kernel.object),
            _ => gemstone_object::class_of(&self.ws, &self.kernel, oop),
        }
    }

    fn class_format(&self, class: ClassId) -> BodyFormat {
        self.db.schema.read().classes.get(class).format
    }

    fn block_class(&self) -> ClassId {
        self.block_class
    }

    fn selector_defined_anywhere(&self, selector: SymbolId) -> bool {
        self.db.schema.read().classes.iter().any(|(_, def)| {
            def.methods.contains_key(&selector) || def.class_methods.contains_key(&selector)
        })
    }

    fn selector_targets(&self, selector: SymbolId) -> Vec<MethodRef> {
        let schema = self.db.schema.read();
        let mut out = Vec::new();
        for (_, def) in schema.classes.iter() {
            for m in
                [def.methods.get(&selector), def.class_methods.get(&selector)].into_iter().flatten()
            {
                if !out.contains(m) {
                    out.push(*m);
                }
            }
        }
        out
    }

    fn note_method_source(&mut self, class: ClassId, source: &str, class_side: bool) {
        let mut schema = self.db.schema.write();
        schema.method_sources.push(MethodSource { class, source: source.to_string(), class_side });
        schema.schema_dirty = true;
    }

    fn method(&self, id: MethodId) -> Arc<CompiledMethod> {
        if id.0 & LOCAL_METHOD_BIT != 0 {
            self.local_methods[(id.0 & !LOCAL_METHOD_BIT) as usize].clone()
        } else {
            self.db.methods.read()[id.0 as usize].clone()
        }
    }

    fn note_interp_stats(&mut self, dispatches: u64, sends: u64) {
        self.m.dispatches.add(dispatches);
        self.m.sends.add(sends);
        if self.telemetry.journal.enabled() {
            self.telemetry.journal.emit(&JournalEvent::Interp { dispatches, sends });
        }
    }

    fn add_method_code(&mut self, m: CompiledMethod) -> GemResult<MethodId> {
        let m = self.verified(m)?;
        let id = {
            let mut methods = self.db.methods.write();
            methods.push(Arc::new(m));
            MethodId(methods.len() as u32 - 1)
        };
        // Invalidate after the methods write guard drops: no stale
        // summary may survive a method-table append.
        self.invalidate_effects();
        Ok(id)
    }

    fn new_object(&mut self, class: ClassId) -> GemResult<Oop> {
        self.ensure_txn();
        // A fresh object is born dirty: allocation is a local write.
        self.note_write();
        let format = self.class_format(class);
        let obj = match format {
            BodyFormat::Elements => HeapObject::new_elements(class, SegmentId::SYSTEM),
            BodyFormat::Bytes => HeapObject::new_bytes(class, SegmentId::SYSTEM, Vec::new()),
        };
        Ok(self.ws.alloc(obj))
    }

    fn new_string(&mut self, s: &str) -> Oop {
        // Open the transaction first: the clear below must not be undone
        // by a later lazy transaction begin resetting the flag.
        self.ensure_txn();
        self.note_write();
        self.ws.alloc(HeapObject::new_bytes(
            self.kernel.string,
            SegmentId::SYSTEM,
            s.as_bytes().to_vec(),
        ))
    }

    fn string_value(&self, oop: Oop) -> Option<String> {
        match oop.kind() {
            OopKind::Sym(s) => Some(self.sym_name(s)),
            OopKind::Heap(_) => {
                self.ws.get(oop).ok().and_then(|o| o.as_str().ok()).map(String::from)
            }
            OopKind::Ref(g) => self.db.store.get(g).ok().and_then(|o| {
                o.bytes_current().and_then(|b| std::str::from_utf8(b).ok()).map(String::from)
            }),
            _ => None,
        }
    }

    fn get_elem(&mut self, obj: Oop, name: ElemName) -> GemResult<Oop> {
        self.elem_read(obj, name)
    }

    fn get_elem_at(&mut self, obj: Oop, name: ElemName, t: TxnTime) -> GemResult<Oop> {
        self.ensure_txn();
        let obj = self.swizzle(obj)?;
        let goop = self.ws.get(obj)?.goop;
        match goop {
            Some(g) => {
                let v = self
                    .db
                    .store
                    .get_traced(g, self.session_id, self.io_parent())?
                    .elem_at(name, t)
                    .unwrap_or(PRef::NIL);
                Ok(pref_to_oop(&self.ws, v))
            }
            // A transient object has no history: it did not exist at t.
            None => Ok(Oop::NIL),
        }
    }

    fn set_elem(&mut self, obj: Oop, name: ElemName, v: Oop) -> GemResult<()> {
        self.elem_write(obj, name, v)
    }

    fn elements(&mut self, obj: Oop) -> GemResult<Vec<Oop>> {
        self.ensure_txn();
        let obj = self.swizzle(obj)?;
        let goop = self.ws.get(obj)?.goop;
        if let (Some(t), Some(g)) = (self.dial.setting(), goop) {
            let vals: Vec<PRef> = self
                .db
                .store
                .get_traced(g, self.session_id, self.io_parent())?
                .elements_at(t)
                .map(|(_, v)| v)
                .collect();
            return Ok(vals.into_iter().map(|v| pref_to_oop(&self.ws, v)).collect());
        }
        if let Some(g) = goop {
            self.record_read(SlotId::Object(g));
        }
        let raw: Vec<(ElemName, Oop)> = self.ws.get(obj)?.present_elements().collect();
        let mut out = Vec::with_capacity(raw.len());
        for (name, v) in raw {
            let v2 = self.swizzle(v)?;
            if v2 != v {
                self.ws.get_mut(obj)?.swizzle_elem_in_place(name, v2);
            }
            out.push(v2);
        }
        Ok(out)
    }

    fn element_names(&mut self, obj: Oop) -> GemResult<Vec<ElemName>> {
        self.ensure_txn();
        let obj = self.swizzle(obj)?;
        let goop = self.ws.get(obj)?.goop;
        if let (Some(t), Some(g)) = (self.dial.setting(), goop) {
            return Ok(self
                .db
                .store
                .get_traced(g, self.session_id, self.io_parent())?
                .elements_at(t)
                .map(|(n, _)| n)
                .collect());
        }
        if let Some(g) = goop {
            self.record_read(SlotId::Object(g));
        }
        Ok(self.ws.get(obj)?.present_elements().map(|(n, _)| n).collect())
    }

    fn add_aliased(&mut self, obj: Oop, v: Oop) -> GemResult<()> {
        self.ensure_txn();
        self.note_write();
        let obj = self.swizzle(obj)?;
        if self.ws.get(obj)?.goop.is_some() {
            if self.dial.in_past() {
                return Err(GemError::WriteInPast);
            }
            self.wrote_committed = true;
        }
        self.ws.get_mut(obj)?.add_aliased(v);
        Ok(())
    }

    fn push_indexed(&mut self, obj: Oop, v: Oop) -> GemResult<i64> {
        self.ensure_txn();
        self.note_write();
        let obj = self.swizzle(obj)?;
        if self.ws.get(obj)?.goop.is_some() {
            if self.dial.in_past() {
                return Err(GemError::WriteInPast);
            }
            self.wrote_committed = true;
        }
        Ok(self.ws.get_mut(obj)?.push_indexed(v).as_int().unwrap())
    }

    fn obj_size(&mut self, obj: Oop) -> GemResult<usize> {
        self.ensure_txn();
        let obj = self.swizzle(obj)?;
        let goop = self.ws.get(obj)?.goop;
        if let (Some(t), Some(g)) = (self.dial.setting(), goop) {
            let pobj = self.db.store.get_traced(g, self.session_id, self.io_parent())?;
            return Ok(match pobj.bytes_at(t) {
                Some(b) => b.len(),
                None => pobj.elements_at(t).count(),
            });
        }
        if let Some(g) = goop {
            self.record_read(SlotId::Object(g));
        }
        let o = self.ws.get(obj)?;
        Ok(match o.bytes() {
            Some(b) => b.len(),
            None => o.size(),
        })
    }

    fn equals(&mut self, a: Oop, b: Oop) -> GemResult<bool> {
        let a = self.swizzle(a)?;
        let b = self.swizzle(b)?;
        let schema = self.db.schema.read();
        Ok(structurally_equal(&self.ws, &schema.symbols, a, b))
    }

    fn compare(&mut self, a: Oop, b: Oop) -> GemResult<Option<Ordering>> {
        let a = self.swizzle(a)?;
        let b = self.swizzle(b)?;
        gemstone_opal::world::compare_values(self, a, b)
    }

    fn get_global(&self, name: SymbolId) -> Option<Oop> {
        if let Some(v) = self.pending_globals.get(&name) {
            return Some(*v);
        }
        // Committed globals come from the transaction snapshot: lock-free,
        // and consistent with every other read in the transaction. Between
        // transactions, read the latest published view (the session's own
        // snapshot predates its own most recent commit).
        if self.txn.is_some() {
            self.snap.globals.get(&name).map(|p| pref_to_oop(&self.ws, *p))
        } else {
            self.db.committed_view().globals.get(&name).map(|p| pref_to_oop(&self.ws, *p))
        }
    }

    fn set_global(&mut self, name: SymbolId, v: Oop) -> GemResult<()> {
        self.ensure_txn();
        self.note_write();
        self.pending_globals.insert(name, v);
        Ok(())
    }

    fn system_message(&mut self, selector: SymbolId, args: &[Oop]) -> GemResult<Oop> {
        let name = self.sym_name(selector);
        match name.as_str() {
            "commitTransaction" => match self.commit() {
                Ok(_) => Ok(Oop::TRUE),
                Err(GemError::TransactionConflict { .. }) => Ok(Oop::FALSE),
                Err(e) => Err(e),
            },
            "abortTransaction" => {
                self.abort();
                Ok(Oop::TRUE)
            }
            "timeDial:" => {
                let t =
                    args[0].as_int().filter(|t| *t >= 0).ok_or_else(|| GemError::TypeMismatch {
                        expected: "non-negative integer time",
                        got: format!("{:?}", args[0]),
                    })?;
                self.set_time_dial(TxnTime::from_ticks(t as u64));
                Ok(args[0])
            }
            "timeDialNow" => {
                self.time_dial_now();
                Ok(Oop::TRUE)
            }
            "safeTime" => Ok(Oop::int(self.safe_time().ticks() as i64)),
            "currentTime" => Ok(Oop::int(self.db.txns.now().ticks() as i64)),
            "archiveHistoryBefore:" => {
                if self.user != DBA {
                    return Err(GemError::AuthorizationDenied {
                        segment: 0,
                        detail: "only the DBA may archive history".into(),
                    });
                }
                let t =
                    args[0].as_int().filter(|t| *t >= 0).ok_or_else(|| GemError::TypeMismatch {
                        expected: "non-negative integer time",
                        got: format!("{:?}", args[0]),
                    })?;
                let n = self.db.archive_history_before(TxnTime::from_ticks(t as u64))?;
                Ok(Oop::int(n as i64))
            }
            "createIndexOn:path:" => {
                let coll = self.swizzle(args[0])?;
                let goop = self.ws.get(coll)?.goop.ok_or_else(|| {
                    GemError::RuntimeError(
                        "createIndexOn: requires a committed collection (commit first)".into(),
                    )
                })?;
                let path = self.path_arg(args[1])?;
                let now = self.db.txns.now();
                let mut schema = self.db.schema.write();
                let Schema { symbols, dirs, schema_dirty, .. } = &mut *schema;
                dirs.create_index(&self.db.store, symbols, goop, path, now)?;
                *schema_dirty = true;
                Ok(Oop::TRUE)
            }
            "error:" => {
                let msg = self.string_value(args[0]).unwrap_or_else(|| format!("{:?}", args[0]));
                Err(GemError::RuntimeError(msg))
            }
            other => Err(GemError::DoesNotUnderstand {
                class: "System".into(),
                selector: other.to_string(),
            }),
        }
    }

    fn run_select(
        &mut self,
        coll: Oop,
        template: &QueryTemplate,
        captured: &[Oop],
    ) -> GemResult<Vec<Oop>> {
        self.ensure_txn();
        let coll = self.swizzle(coll)?;
        // Substitute the receiver and captured values into the template.
        // A verified SelectQuery always supplies exactly `n_captured` values
        // and a single-range template; re-check here because this entry
        // point is also reachable programmatically.
        template.validate().map_err(GemError::CorruptMethod)?;
        if captured.len() != template.n_captured as usize {
            return Err(GemError::CorruptMethod(format!(
                "select block captures {} values, got {}",
                template.n_captured,
                captured.len()
            )));
        }
        let mut query = template.query.clone();
        let Some(range0) = query.ranges.first_mut() else {
            return Err(GemError::CorruptMethod("select template has no range".into()));
        };
        range0.domain = Term::Const(coll);
        let mut env_consts: HashMap<VarId, Oop> = HashMap::new();
        for (i, v) in captured.iter().enumerate() {
            env_consts.insert(VarId(1 + i as u16), *v);
        }
        substitute(&mut query.pred, &env_consts);
        let catalog = self.db.schema.read().dirs.catalog().clone();
        let rows = self.eval_with_catalog(&query, &catalog)?;
        Ok(rows.into_iter().filter_map(|mut r| (!r.is_empty()).then(|| r.remove(0))).collect())
    }
}

/// Replace captured-variable terms with constants.
fn substitute(pred: &mut gemstone_calculus::Pred, env: &HashMap<VarId, Oop>) {
    use gemstone_calculus::Pred as P;
    match pred {
        P::True => {}
        P::And(a, b) | P::Or(a, b) => {
            substitute(a, env);
            substitute(b, env);
        }
        P::Not(a) => substitute(a, env),
        P::Cmp(a, _, b) | P::In(a, b) | P::Subset(a, b) => {
            substitute_term(a, env);
            substitute_term(b, env);
        }
    }
}

fn substitute_term(term: &mut Term, env: &HashMap<VarId, Oop>) {
    match term {
        Term::Var(v) => {
            if let Some(c) = env.get(v) {
                *term = Term::Const(*c);
            }
        }
        Term::Path(_, _) | Term::Const(_) => {}
        Term::Mul(a, b) | Term::Add(a, b) | Term::Sub(a, b) | Term::Div(a, b) => {
            substitute_term(a, env);
            substitute_term(b, env);
        }
    }
}

// ----------------------------------------------------------- QueryContext

impl QueryContext for Session {
    fn elem(&mut self, obj: Oop, name: ElemName) -> GemResult<Oop> {
        if obj.is_nil() {
            return Ok(Oop::NIL);
        }
        self.elem_read(obj, name)
    }

    fn elements(&mut self, obj: Oop) -> GemResult<Vec<Oop>> {
        OpalWorld::elements(self, obj)
    }

    fn equals(&mut self, a: Oop, b: Oop) -> GemResult<bool> {
        OpalWorld::equals(self, a, b)
    }

    fn compare(&mut self, a: Oop, b: Oop) -> GemResult<Option<Ordering>> {
        OpalWorld::compare(self, a, b)
    }

    fn index_range(
        &mut self,
        collection: Oop,
        path: &[ElemName],
        lo: Option<(Oop, bool)>,
        hi: Option<(Oop, bool)>,
    ) -> GemResult<Option<Vec<Oop>>> {
        if self.has_local_writes() {
            return Ok(None);
        }
        let collection = self.swizzle(collection)?;
        let Some(goop) = self.ws.get(collection)?.goop else {
            return Ok(None);
        };
        let lo_key = match lo {
            None => None,
            Some((k, inc)) => {
                let k = self.swizzle(k)?;
                match self.session_dir_key(k)? {
                    Some(dk) => Some((dk, inc)),
                    None => return Ok(None),
                }
            }
        };
        let hi_key = match hi {
            None => None,
            Some((k, inc)) => {
                let k = self.swizzle(k)?;
                match self.session_dir_key(k)? {
                    Some(dk) => Some((dk, inc)),
                    None => return Ok(None),
                }
            }
        };
        // Serve at the dial when set, else the transaction snapshot —
        // directory answers stay consistent with every other read even
        // while concurrent commits re-key the directory.
        let at = Some(self.dial.setting().unwrap_or(self.snap.time));
        let goops = {
            let schema = self.db.schema.read();
            schema.dirs.range(
                goop,
                path,
                lo_key.as_ref().map(|(k, i)| (k, *i)),
                hi_key.as_ref().map(|(k, i)| (k, *i)),
                at,
            )
        };
        let Some(goops) = goops else { return Ok(None) };
        self.record_read(SlotId::Object(goop));
        let mut out = Vec::with_capacity(goops.len());
        for g in goops {
            out.push(self.swizzle(Oop::unswizzled(g))?);
        }
        Ok(Some(out))
    }

    fn join_key(&mut self, v: Oop) -> GemResult<Option<JoinKey>> {
        // The Object Manager's structural key is exactly the hash image of
        // `=` (structural equivalence IS value-key equality), so it can key
        // hash-join buckets directly. NaN is the one exception: its bits
        // collide while `NaN = NaN` is false, so it joins via `equals`.
        let v = self.swizzle(v)?;
        if v.as_float().is_some_and(f64::is_nan) {
            return Ok(None);
        }
        let schema = self.db.schema.read();
        Ok(Some(value_key(&self.ws, &schema.symbols, v)))
    }

    fn index_lookup(
        &mut self,
        collection: Oop,
        path: &[ElemName],
        key: Oop,
    ) -> GemResult<Option<Vec<Oop>>> {
        // Directories reflect committed state only.
        if self.has_local_writes() {
            return Ok(None);
        }
        let collection = self.swizzle(collection)?;
        let Some(goop) = self.ws.get(collection)?.goop else {
            return Ok(None);
        };
        let key = self.swizzle(key)?;
        let dir_key = match self.session_dir_key(key)? {
            Some(k) => k,
            None => return Ok(None),
        };
        let at = Some(self.dial.setting().unwrap_or(self.snap.time));
        let goops = {
            let schema = self.db.schema.read();
            schema.dirs.lookup(goop, path, &dir_key, at)
        };
        let Some(goops) = goops else { return Ok(None) };
        self.record_read(SlotId::Object(goop));
        let mut out = Vec::with_capacity(goops.len());
        for g in goops {
            out.push(self.swizzle(Oop::unswizzled(g))?);
        }
        Ok(Some(out))
    }
}

impl Session {
    /// A DirKey for a session value (mirrors the store-side key function).
    fn session_dir_key(&mut self, v: Oop) -> GemResult<Option<DirKey>> {
        Ok(match v.kind() {
            OopKind::Int(i) => Some(DirKey::num(i as f64)),
            OopKind::Float(f) => Some(DirKey::num(f)),
            OopKind::Sym(s) => Some(DirKey::text(&self.sym_name(s))),
            OopKind::Char(c) => Some(DirKey::Text(c.to_string().into_bytes())),
            OopKind::True | OopKind::False => {
                Some(DirKey::Ref(v.to_pref_immediate().unwrap().bits()))
            }
            OopKind::Heap(_) => {
                let o = self.ws.get(v)?;
                match o.bytes() {
                    Some(b) => Some(DirKey::Text(b.to_vec())),
                    None => o.goop.map(|g| DirKey::Ref(g.0)),
                }
            }
            _ => None,
        })
    }

    /// Parse the `path:` argument of `createIndexOn:path:` — a symbol,
    /// string, or array of symbols/strings.
    fn path_arg(&mut self, v: Oop) -> GemResult<Vec<SymbolId>> {
        if let Some(s) = v.as_sym() {
            return Ok(vec![s]);
        }
        if let Some(s) = self.string_value(v) {
            return Ok(vec![self.intern(&s)]);
        }
        if v.is_heap() {
            let parts = OpalWorld::elements(self, v)?;
            let mut path = Vec::with_capacity(parts.len());
            for p in parts {
                match p.as_sym() {
                    Some(s) => path.push(s),
                    None => {
                        let s = self.string_value(p).ok_or_else(|| GemError::TypeMismatch {
                            expected: "symbol path element",
                            got: format!("{p:?}"),
                        })?;
                        path.push(self.intern(&s));
                    }
                }
            }
            return Ok(path);
        }
        Err(GemError::TypeMismatch { expected: "path (symbol or array)", got: format!("{v:?}") })
    }
}
