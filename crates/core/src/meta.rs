//! Persistence of the schema: symbols, classes, globals, user method
//! sources, and directory specifications. Serialized into metadata blobs in
//! the permanent store's catalog at every commit that changed them.
//!
//! Compiled methods are *recompiled from source* at recovery (after the
//! kernel is reinstalled), so bytecode and primitive numbers can evolve
//! without a disk-format migration.

use gemstone_calculus::{KeySketch, SelObs, StatsCatalog};
use gemstone_object::GemError;
use gemstone_object::{
    BodyFormat, ClassDef, ClassId, ClassKind, ClassTable, GemResult, PRef, SymbolId, SymbolTable,
};
use std::collections::HashMap;

/// Metadata blob keys in the store catalog.
pub const META_SYMBOLS: u8 = 1;
pub const META_CLASSES: u8 = 2;
pub const META_GLOBALS: u8 = 3;
pub const META_METHODS: u8 = 4;
pub const META_DIRS: u8 = 5;
pub const META_STATS: u8 = 6;

/// A user method's compilation record.
#[derive(Debug, Clone, PartialEq)]
pub struct MethodSource {
    pub class: ClassId,
    pub source: String,
    pub class_side: bool,
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    buf.extend_from_slice(&(s.len() as u32).to_le_bytes());
    buf.extend_from_slice(s.as_bytes());
}

fn get_str(buf: &mut &[u8]) -> GemResult<String> {
    let len = get_u32(buf)? as usize;
    if buf.len() < len {
        return Err(GemError::Corrupt("truncated string".into()));
    }
    let s = std::str::from_utf8(&buf[..len])
        .map_err(|_| GemError::Corrupt("bad utf-8 in metadata".into()))?
        .to_string();
    *buf = &buf[len..];
    Ok(s)
}

fn get_u32(buf: &mut &[u8]) -> GemResult<u32> {
    if buf.len() < 4 {
        return Err(GemError::Corrupt("truncated u32".into()));
    }
    let v = u32::from_le_bytes(buf[..4].try_into().unwrap());
    *buf = &buf[4..];
    Ok(v)
}

fn get_u64(buf: &mut &[u8]) -> GemResult<u64> {
    if buf.len() < 8 {
        return Err(GemError::Corrupt("truncated u64".into()));
    }
    let v = u64::from_le_bytes(buf[..8].try_into().unwrap());
    *buf = &buf[8..];
    Ok(v)
}

// ---------------------------------------------------------------- symbols

pub fn put_symbols(symbols: &SymbolTable) -> Vec<u8> {
    let mut buf = Vec::new();
    buf.extend_from_slice(&(symbols.len() as u32).to_le_bytes());
    for (_, name) in symbols.iter() {
        put_str(&mut buf, name);
    }
    buf
}

pub fn get_symbols(mut buf: &[u8]) -> GemResult<SymbolTable> {
    let b = &mut buf;
    let n = get_u32(b)?;
    // Defensive cap: a corrupt length field must not drive allocation.
    let mut names = Vec::with_capacity((n as usize).min(1 << 16));
    for _ in 0..n {
        names.push(get_str(b)?);
    }
    Ok(SymbolTable::from_names(names))
}

// ---------------------------------------------------------------- classes

/// Serialize class *structure* only (no method dictionaries: those are
/// rebuilt from kernel installation plus method sources).
pub fn put_classes(classes: &ClassTable) -> Vec<u8> {
    let mut buf = Vec::new();
    buf.extend_from_slice(&(classes.len() as u32).to_le_bytes());
    for (_, def) in classes.iter() {
        buf.extend_from_slice(&def.name.0.to_le_bytes());
        let sup = def.superclass.map_or(u32::MAX, |c| c.0);
        buf.extend_from_slice(&sup.to_le_bytes());
        buf.push(match def.format {
            BodyFormat::Elements => 0,
            BodyFormat::Bytes => 1,
        });
        buf.push(match def.kind {
            ClassKind::Kernel => 0,
            ClassKind::User => 1,
        });
        buf.extend_from_slice(&(def.instvars.len() as u32).to_le_bytes());
        for v in &def.instvars {
            buf.extend_from_slice(&v.0.to_le_bytes());
        }
    }
    buf
}

pub fn get_classes(mut buf: &[u8]) -> GemResult<ClassTable> {
    let b = &mut buf;
    let n = get_u32(b)?;
    let mut table = ClassTable::default();
    for _ in 0..n {
        let name = SymbolId(get_u32(b)?);
        let sup = get_u32(b)?;
        let superclass = if sup == u32::MAX { None } else { Some(ClassId(sup)) };
        if b.len() < 2 {
            return Err(GemError::Corrupt("truncated class record".into()));
        }
        let format = match b[0] {
            0 => BodyFormat::Elements,
            1 => BodyFormat::Bytes,
            t => return Err(GemError::Corrupt(format!("bad body format {t}"))),
        };
        let kind = match b[1] {
            0 => ClassKind::Kernel,
            _ => ClassKind::User,
        };
        *b = &b[2..];
        let nv = get_u32(b)?;
        let mut instvars = Vec::with_capacity((nv as usize).min(1 << 12));
        for _ in 0..nv {
            instvars.push(SymbolId(get_u32(b)?));
        }
        table.define(ClassDef {
            name,
            superclass,
            format,
            instvars,
            methods: HashMap::new(),
            class_methods: HashMap::new(),
            kind,
        })?;
    }
    Ok(table)
}

// ---------------------------------------------------------------- globals

pub fn put_globals(globals: &HashMap<SymbolId, PRef>) -> Vec<u8> {
    let mut buf = Vec::new();
    buf.extend_from_slice(&(globals.len() as u32).to_le_bytes());
    let mut entries: Vec<_> = globals.iter().collect();
    entries.sort_by_key(|(s, _)| s.0);
    for (sym, v) in entries {
        buf.extend_from_slice(&sym.0.to_le_bytes());
        buf.extend_from_slice(&v.bits().to_le_bytes());
    }
    buf
}

pub fn get_globals(mut buf: &[u8]) -> GemResult<HashMap<SymbolId, PRef>> {
    let b = &mut buf;
    let n = get_u32(b)?;
    let mut out = HashMap::with_capacity((n as usize).min(1 << 16));
    for _ in 0..n {
        let sym = SymbolId(get_u32(b)?);
        let v = PRef::from_bits(get_u64(b)?);
        out.insert(sym, v);
    }
    Ok(out)
}

// ---------------------------------------------------------------- methods

pub fn put_method_sources(methods: &[MethodSource]) -> Vec<u8> {
    let mut buf = Vec::new();
    buf.extend_from_slice(&(methods.len() as u32).to_le_bytes());
    for m in methods {
        buf.extend_from_slice(&m.class.0.to_le_bytes());
        buf.push(m.class_side as u8);
        put_str(&mut buf, &m.source);
    }
    buf
}

pub fn get_method_sources(mut buf: &[u8]) -> GemResult<Vec<MethodSource>> {
    let b = &mut buf;
    let n = get_u32(b)?;
    let mut out = Vec::with_capacity((n as usize).min(1 << 16));
    for _ in 0..n {
        let class = ClassId(get_u32(b)?);
        if b.is_empty() {
            return Err(GemError::Corrupt("truncated method record".into()));
        }
        let class_side = b[0] != 0;
        *b = &b[1..];
        let source = get_str(b)?;
        out.push(MethodSource { class, source, class_side });
    }
    Ok(out)
}

// -------------------------------------------------------------- dir specs

/// A persisted directory specification: which committed collection is
/// indexed on which element path, and since when.
#[derive(Debug, Clone, PartialEq)]
pub struct DirSpecRecord {
    pub collection: u64,
    pub path: Vec<SymbolId>,
    pub created_at: u64,
}

pub fn put_dir_specs(specs: &[DirSpecRecord]) -> Vec<u8> {
    let mut buf = Vec::new();
    buf.extend_from_slice(&(specs.len() as u32).to_le_bytes());
    for s in specs {
        buf.extend_from_slice(&s.collection.to_le_bytes());
        buf.extend_from_slice(&s.created_at.to_le_bytes());
        buf.extend_from_slice(&(s.path.len() as u32).to_le_bytes());
        for p in &s.path {
            buf.extend_from_slice(&p.0.to_le_bytes());
        }
    }
    buf
}

pub fn get_dir_specs(mut buf: &[u8]) -> GemResult<Vec<DirSpecRecord>> {
    let b = &mut buf;
    let n = get_u32(b)?;
    let mut out = Vec::with_capacity((n as usize).min(1 << 16));
    for _ in 0..n {
        let collection = get_u64(b)?;
        let created_at = get_u64(b)?;
        let np = get_u32(b)?;
        let mut path = Vec::with_capacity((np as usize).min(1 << 8));
        for _ in 0..np {
            path.push(SymbolId(get_u32(b)?));
        }
        out.push(DirSpecRecord { collection, path, created_at });
    }
    Ok(out)
}

// -------------------------------------------------------- planner stats

/// Serialize the planner's statistics catalog. Sketch keys are f64s written
/// as raw bits, so the catalog a recovered database plans with is bit-for-bit
/// the one the last flushing commit maintained.
pub fn put_stats(stats: &StatsCatalog) -> Vec<u8> {
    let mut buf = Vec::new();
    buf.extend_from_slice(&(stats.sets.len() as u32).to_le_bytes());
    for (goop, set) in &stats.sets {
        buf.extend_from_slice(&goop.to_le_bytes());
        buf.extend_from_slice(&set.cardinality.to_le_bytes());
        buf.extend_from_slice(&set.updated_at.to_le_bytes());
        buf.extend_from_slice(&(set.sketches.len() as u32).to_le_bytes());
        for (path, sk) in &set.sketches {
            put_str(&mut buf, path);
            buf.extend_from_slice(&sk.total.to_le_bytes());
            buf.extend_from_slice(&sk.distinct.to_le_bytes());
            buf.extend_from_slice(&sk.fuzz.to_le_bytes());
            buf.extend_from_slice(&(sk.points.len() as u32).to_le_bytes());
            for (k, c) in &sk.points {
                buf.extend_from_slice(&k.to_bits().to_le_bytes());
                buf.extend_from_slice(&c.to_le_bytes());
            }
        }
        buf.extend_from_slice(&(set.predicates.len() as u32).to_le_bytes());
        for (key, obs) in &set.predicates {
            put_str(&mut buf, key);
            buf.extend_from_slice(&obs.rows_in.to_le_bytes());
            buf.extend_from_slice(&obs.rows_out.to_le_bytes());
        }
    }
    buf
}

pub fn get_stats(mut buf: &[u8]) -> GemResult<StatsCatalog> {
    let b = &mut buf;
    let n = get_u32(b)?;
    let mut out = StatsCatalog::default();
    for _ in 0..(n as usize).min(1 << 16) {
        let goop = get_u64(b)?;
        let set = out.entry(goop);
        set.cardinality = get_u64(b)?;
        set.updated_at = get_u64(b)?;
        let ns = get_u32(b)?;
        for _ in 0..(ns as usize).min(1 << 12) {
            let path = get_str(b)?;
            let total = get_u64(b)?;
            let distinct = get_u64(b)?;
            let fuzz = get_u64(b)?;
            let np = get_u32(b)?;
            let mut points = Vec::with_capacity((np as usize).min(1 << 10));
            for _ in 0..np {
                let k = f64::from_bits(get_u64(b)?);
                let c = get_u64(b)?;
                points.push((k, c));
            }
            set.sketches.insert(path, KeySketch { total, distinct, fuzz, points });
        }
        let npred = get_u32(b)?;
        for _ in 0..(npred as usize).min(1 << 12) {
            let key = get_str(b)?;
            let rows_in = get_u64(b)?;
            let rows_out = get_u64(b)?;
            set.predicates.insert(key, SelObs { rows_in, rows_out });
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gemstone_object::Goop;

    #[test]
    fn symbols_roundtrip() {
        let mut t = SymbolTable::new();
        for n in ["salary", "depts", "Acme Corp"] {
            t.intern(n);
        }
        let t2 = get_symbols(&put_symbols(&t)).unwrap();
        assert_eq!(t2.len(), 3);
        assert_eq!(t2.lookup("Acme Corp"), t.lookup("Acme Corp"));
    }

    #[test]
    fn classes_roundtrip_preserves_ids() {
        let mut s = SymbolTable::new();
        let (mut classes, k) = ClassTable::bootstrap(&mut s);
        let emp =
            classes.subclass(s.intern("Employee"), k.object, vec![s.intern("salary")]).unwrap();
        let back = get_classes(&put_classes(&classes)).unwrap();
        assert_eq!(back.len(), classes.len());
        assert_eq!(back.by_name(s.lookup("Employee").unwrap()), Some(emp));
        assert_eq!(back.get(emp).instvars, classes.get(emp).instvars);
        assert_eq!(back.get(k.string).format, BodyFormat::Bytes);
        assert!(back.get(emp).methods.is_empty(), "method dicts are rebuilt, not persisted");
    }

    #[test]
    fn globals_roundtrip() {
        let mut g = HashMap::new();
        g.insert(SymbolId(3), PRef::goop(Goop(42)));
        g.insert(SymbolId(9), PRef::int(-5));
        let back = get_globals(&put_globals(&g)).unwrap();
        assert_eq!(back, g);
    }

    #[test]
    fn method_sources_roundtrip() {
        let ms = vec![
            MethodSource { class: ClassId(21), source: "salary ^salary".into(), class_side: false },
            MethodSource { class: ClassId(21), source: "make ^self new".into(), class_side: true },
        ];
        assert_eq!(get_method_sources(&put_method_sources(&ms)).unwrap(), ms);
    }

    #[test]
    fn dir_specs_roundtrip() {
        let specs = vec![DirSpecRecord {
            collection: 77,
            path: vec![SymbolId(1), SymbolId(2)],
            created_at: 9,
        }];
        assert_eq!(get_dir_specs(&put_dir_specs(&specs)).unwrap(), specs);
    }

    #[test]
    fn stats_roundtrip_is_bit_exact() {
        let mut c = StatsCatalog::default();
        let set = c.entry(77);
        set.cardinality = 1000;
        set.updated_at = 42;
        set.sketches.insert(
            "s3".into(),
            KeySketch {
                total: 1000,
                distinct: 17,
                fuzz: 3,
                points: vec![(-2.5, 100), (0.1 + 0.2, 800), (1e18, 100)],
            },
        );
        set.predicates.insert("v0!s3>c100".into(), SelObs { rows_in: 500, rows_out: 25 });
        c.entry(99).cardinality = 5; // sketchless set
        let back = get_stats(&put_stats(&c)).unwrap();
        assert_eq!(back, c, "float keys survive via raw bits");
    }

    #[test]
    fn corrupt_metadata_is_detected() {
        assert!(get_symbols(&[1, 0, 0, 0]).is_err());
        assert!(get_classes(&[9]).is_err());
        let good = put_method_sources(&[MethodSource {
            class: ClassId(1),
            source: "x ^1".into(),
            class_side: false,
        }]);
        assert!(get_method_sources(&good[..good.len() - 2]).is_err());
        let mut c = StatsCatalog::default();
        c.entry(7).sketches.insert("s1".into(), KeySketch::from_keys(&[1.0, 2.0]));
        let blob = put_stats(&c);
        assert!(get_stats(&blob[..blob.len() - 3]).is_err());
    }
}
