//! LOOM — a faithful small model of the Large Object-Oriented Memory
//! [Kaehler & Krasner], the §7 comparison point.
//!
//! "LOOM maintains a two-level object space in main memory and on disk.
//! Objects are moved to main memory from disk as needed. LOOM does not meet
//! our needs for four reasons. First, it is intended for a single user
//! system. Second, while it allows many more objects than standard Smalltalk
//! implementations, it retains the same maximum size for objects. Third, it
//! uses the standard Smalltalk representation of objects … Fourth, LOOM
//! hasn't completely dealt with the problems of clustering and indexing in
//! secondary storage."
//!
//! This crate reproduces precisely those four properties:
//!
//! 1. single user — no transactions, no sessions;
//! 2. the 64KB object cap is **enforced** ([`LoomError::ObjectTooLarge`]);
//! 3. objects are contiguous blocks of OOP fields (no histories, no
//!    element names) — the "standard Smalltalk representation";
//! 4. objects are placed on disk individually, with no clustering and no
//!    indexes: every fault costs its own track I/O.
//!
//! Benchmark C7 runs the same object graphs through LOOM and through the
//! GemStone Object Manager and compares fault and track-read counts.

use gemstone_storage::{SimDisk, TrackId, TRACK_HEADER};
use std::collections::HashMap;
use std::fmt;

/// A LOOM object pointer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LoomOop(pub u32);

/// LOOM's per-object size cap: "the same maximum size for objects" as ST80.
pub const MAX_OBJECT_BYTES: usize = 64 * 1024;

/// Errors from the two-level memory.
#[derive(Debug, Clone, PartialEq)]
pub enum LoomError {
    ObjectTooLarge { bytes: usize },
    UnknownObject(LoomOop),
    FieldOutOfRange { index: usize, size: usize },
    Disk(String),
}

impl fmt::Display for LoomError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoomError::ObjectTooLarge { bytes } => {
                write!(f, "object of {bytes} bytes exceeds LOOM's 64KB limit")
            }
            LoomError::UnknownObject(o) => write!(f, "unknown object {o:?}"),
            LoomError::FieldOutOfRange { index, size } => {
                write!(f, "field {index} out of range for {size} fields")
            }
            LoomError::Disk(m) => write!(f, "disk error: {m}"),
        }
    }
}

impl std::error::Error for LoomError {}

/// A resident object: contiguous OOP fields (the standard representation).
#[derive(Debug, Clone, PartialEq)]
pub struct LoomObject {
    pub fields: Vec<u32>,
}

impl LoomObject {
    fn byte_size(&self) -> usize {
        4 + self.fields.len() * 4
    }

    fn serialize(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.byte_size());
        out.extend_from_slice(&(self.fields.len() as u32).to_le_bytes());
        for f in &self.fields {
            out.extend_from_slice(&f.to_le_bytes());
        }
        out
    }

    fn deserialize(data: &[u8]) -> LoomObject {
        let n = u32::from_le_bytes(data[..4].try_into().unwrap()) as usize;
        let mut fields = Vec::with_capacity(n);
        for i in 0..n {
            let off = 4 + i * 4;
            fields.push(u32::from_le_bytes(data[off..off + 4].try_into().unwrap()));
        }
        LoomObject { fields }
    }
}

#[derive(Debug, Clone, Copy)]
struct DiskSlot {
    first_track: u32,
    len: u32,
}

/// Access counters.
#[derive(Debug, Default, Clone, Copy)]
pub struct LoomStats {
    pub faults: u64,
    pub evictions: u64,
    pub hits: u64,
}

/// The two-level object memory.
pub struct LoomMemory {
    disk: SimDisk,
    resident: HashMap<LoomOop, (u64, bool, LoomObject)>, // (last_use, dirty, obj)
    on_disk: HashMap<LoomOop, DiskSlot>,
    capacity: usize,
    next_oop: u32,
    next_track: u32,
    tick: u64,
    stats: LoomStats,
}

impl LoomMemory {
    /// A memory that keeps at most `capacity` objects resident, over a disk
    /// with `track_size`-byte tracks.
    pub fn new(track_size: usize, capacity: usize) -> LoomMemory {
        LoomMemory {
            disk: SimDisk::new(track_size),
            resident: HashMap::new(),
            on_disk: HashMap::new(),
            capacity: capacity.max(1),
            next_oop: 1,
            next_track: 0,
            tick: 0,
            stats: LoomStats::default(),
        }
    }

    /// Create an object with the given fields. Enforces the 64KB cap.
    pub fn create(&mut self, fields: Vec<u32>) -> Result<LoomOop, LoomError> {
        let obj = LoomObject { fields };
        if obj.byte_size() > MAX_OBJECT_BYTES {
            return Err(LoomError::ObjectTooLarge { bytes: obj.byte_size() });
        }
        let oop = LoomOop(self.next_oop);
        self.next_oop += 1;
        self.make_room()?;
        self.tick += 1;
        self.resident.insert(oop, (self.tick, true, obj));
        Ok(oop)
    }

    /// Read a field, faulting the object in if necessary.
    pub fn read_field(&mut self, oop: LoomOop, index: usize) -> Result<u32, LoomError> {
        self.touch(oop)?;
        let (_, _, obj) = &self.resident[&oop];
        obj.fields
            .get(index)
            .copied()
            .ok_or(LoomError::FieldOutOfRange { index, size: obj.fields.len() })
    }

    /// Write a field, faulting the object in if necessary.
    pub fn write_field(&mut self, oop: LoomOop, index: usize, v: u32) -> Result<(), LoomError> {
        self.touch(oop)?;
        let entry = self.resident.get_mut(&oop).unwrap();
        entry.1 = true;
        let size = entry.2.fields.len();
        *entry.2.fields.get_mut(index).ok_or(LoomError::FieldOutOfRange { index, size })? = v;
        Ok(())
    }

    /// Number of fields of an object.
    pub fn field_count(&mut self, oop: LoomOop) -> Result<usize, LoomError> {
        self.touch(oop)?;
        Ok(self.resident[&oop].2.fields.len())
    }

    /// Ensure the object is resident (and refresh recency).
    fn touch(&mut self, oop: LoomOop) -> Result<(), LoomError> {
        self.tick += 1;
        if let Some(entry) = self.resident.get_mut(&oop) {
            entry.0 = self.tick;
            self.stats.hits += 1;
            return Ok(());
        }
        let slot = *self.on_disk.get(&oop).ok_or(LoomError::UnknownObject(oop))?;
        // Fault: read the object's own tracks (no clustering: nothing else
        // comes in with it).
        let payload = self.disk.track_size() - TRACK_HEADER;
        let mut data = Vec::with_capacity(slot.len as usize);
        let n_tracks = (slot.len as usize).div_ceil(payload);
        for i in 0..n_tracks {
            let raw = self
                .disk
                .read_track(TrackId(slot.first_track + i as u32))
                .map_err(|e| LoomError::Disk(e.to_string()))?;
            let take = payload.min(slot.len as usize - data.len());
            data.extend_from_slice(&raw[TRACK_HEADER..TRACK_HEADER + take]);
        }
        let obj = LoomObject::deserialize(&data);
        self.stats.faults += 1;
        self.make_room()?;
        let tick = self.tick;
        self.resident.insert(oop, (tick, false, obj));
        Ok(())
    }

    /// Evict LRU residents until below capacity, writing dirty ones back.
    fn make_room(&mut self) -> Result<(), LoomError> {
        while self.resident.len() >= self.capacity {
            let victim = *self
                .resident
                .iter()
                .min_by_key(|(_, (last, _, _))| *last)
                .map(|(oop, _)| oop)
                .expect("nonempty");
            let (_, dirty, obj) = self.resident.remove(&victim).unwrap();
            if dirty || !self.on_disk.contains_key(&victim) {
                self.write_out(victim, &obj)?;
            }
            self.stats.evictions += 1;
        }
        Ok(())
    }

    fn write_out(&mut self, oop: LoomOop, obj: &LoomObject) -> Result<(), LoomError> {
        let data = obj.serialize();
        let payload = self.disk.track_size() - TRACK_HEADER;
        let first = self.next_track;
        let n_tracks = data.len().div_ceil(payload).max(1);
        for (i, chunk) in data.chunks(payload).enumerate() {
            let mut framed = vec![0u8; TRACK_HEADER];
            framed.extend_from_slice(chunk);
            self.disk
                .write_track(TrackId(first + i as u32), &framed)
                .map_err(|e| LoomError::Disk(e.to_string()))?;
        }
        self.next_track += n_tracks as u32;
        self.on_disk.insert(oop, DiskSlot { first_track: first, len: data.len() as u32 });
        Ok(())
    }

    /// Flush every dirty resident to disk (checkpoint).
    pub fn flush(&mut self) -> Result<(), LoomError> {
        let dirty: Vec<LoomOop> =
            self.resident.iter().filter(|(_, (_, d, _))| *d).map(|(o, _)| *o).collect();
        for oop in dirty {
            let obj = self.resident[&oop].2.clone();
            self.write_out(oop, &obj)?;
            self.resident.get_mut(&oop).unwrap().1 = false;
        }
        Ok(())
    }

    /// Fault/hit/eviction counters.
    pub fn stats(&self) -> LoomStats {
        self.stats
    }

    /// Disk access counters.
    pub fn disk_stats(&self) -> gemstone_storage::DiskStats {
        self.disk.stats()
    }

    /// Reset counters between benchmark phases.
    pub fn reset_stats(&mut self) {
        self.stats = LoomStats::default();
        self.disk.reset_stats();
    }

    /// Number of currently resident objects.
    pub fn resident_count(&self) -> usize {
        self.resident.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_read_write() {
        let mut m = LoomMemory::new(512, 8);
        let a = m.create(vec![1, 2, 3]).unwrap();
        assert_eq!(m.read_field(a, 1).unwrap(), 2);
        m.write_field(a, 1, 99).unwrap();
        assert_eq!(m.read_field(a, 1).unwrap(), 99);
        assert_eq!(m.field_count(a).unwrap(), 3);
        assert!(matches!(m.read_field(a, 9), Err(LoomError::FieldOutOfRange { .. })));
    }

    #[test]
    fn the_64k_cap_is_real() {
        let mut m = LoomMemory::new(512, 8);
        let too_big = vec![0u32; (MAX_OBJECT_BYTES / 4) + 1];
        assert!(matches!(m.create(too_big), Err(LoomError::ObjectTooLarge { .. })));
        let just_fits = vec![0u32; (MAX_OBJECT_BYTES - 4) / 4];
        assert!(m.create(just_fits).is_ok());
    }

    #[test]
    fn eviction_and_fault_roundtrip() {
        let mut m = LoomMemory::new(512, 2);
        let oops: Vec<LoomOop> = (0..10).map(|i| m.create(vec![i, i * 2]).unwrap()).collect();
        assert!(m.resident_count() <= 2);
        // Every old object faults back with its data intact.
        for (i, &oop) in oops.iter().enumerate() {
            assert_eq!(m.read_field(oop, 1).unwrap(), i as u32 * 2);
        }
        assert!(m.stats().faults >= 8, "most reads faulted: {:?}", m.stats());
    }

    #[test]
    fn dirty_objects_survive_eviction() {
        let mut m = LoomMemory::new(512, 2);
        let a = m.create(vec![7]).unwrap();
        m.write_field(a, 0, 42).unwrap();
        // Push a out with newcomers.
        for i in 0..5 {
            m.create(vec![i]).unwrap();
        }
        assert_eq!(m.read_field(a, 0).unwrap(), 42);
    }

    #[test]
    fn no_clustering_means_fault_per_object() {
        // N small objects, working set >> capacity: each access is its own
        // track read (the §7 critique this model exists to exhibit).
        let mut m = LoomMemory::new(4096, 4);
        let oops: Vec<LoomOop> = (0..64).map(|i| m.create(vec![i]).unwrap()).collect();
        m.flush().unwrap();
        m.reset_stats();
        for &oop in &oops {
            m.read_field(oop, 0).unwrap();
        }
        let s = m.stats();
        let d = m.disk_stats();
        assert!(s.faults >= 60);
        assert!(d.track_reads >= s.faults, "every fault reads at least one track: {d:?} vs {s:?}");
    }

    #[test]
    fn unknown_object_is_an_error() {
        let mut m = LoomMemory::new(512, 2);
        assert!(matches!(m.read_field(LoomOop(99), 0), Err(LoomError::UnknownObject(_))));
    }

    #[test]
    fn flush_is_idempotent() {
        let mut m = LoomMemory::new(512, 4);
        let a = m.create(vec![1]).unwrap();
        m.flush().unwrap();
        let w1 = m.disk_stats().track_writes;
        m.flush().unwrap();
        assert_eq!(m.disk_stats().track_writes, w1, "clean objects are not rewritten");
        let _ = a;
    }
}
