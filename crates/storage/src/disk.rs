//! The simulated disk: whole-track access, accounting, failure injection.
//!
//! The paper's GemStone ran on special-purpose hardware with the database
//! controlling the disk directly; "disk access will always be by entire
//! tracks". [`SimDisk`] reproduces exactly that interface — `read_track` /
//! `write_track`, nothing smaller — and counts every access, because the
//! storage experiments (C5, C7, C9, C10 in DESIGN.md) are about access
//! *counts and atomicity*, not device physics.
//!
//! Crash injection: a disk carries a pluggable [`FaultPlan`]. The plan can
//! arm a crash after N more writes — the N+1st write *tears* at a chosen
//! byte-offset class ([`TearClass`]) or vanishes entirely (a clean crash
//! between writes) and every subsequent operation fails — and can inject
//! transient read errors (a window of failing reads that clears on its
//! own), modeling power loss mid-commit and media hiccups mid-recovery.
//! A plan can also record a trace of every successful write, which is how
//! the crash-matrix harness ([`crate::crashpoint`]) learns "commit k
//! performs w writes" before enumerating every crash point.

use gemstone_object::{GemError, GemResult};
use gemstone_telemetry::{Counter, Histogram, HistogramSnapshot, Journal, JournalEvent};

/// Index of a track on a disk.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TrackId(pub u32);

/// Bytes reserved at the start of every track by the Commit Manager:
/// a little-endian u32 payload length followed by a u64 FNV-1a checksum.
pub const TRACK_HEADER: usize = 12;

/// Disk access counters. Successful and failed operations are counted
/// separately: a torn or refused write never shows up in `track_writes`,
/// and a read served while the disk is down or inside a transient-error
/// window lands in `failed_reads` only.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct DiskStats {
    pub track_reads: u64,
    pub track_writes: u64,
    pub bytes_written: u64,
    /// Reads that returned an error (dead disk, transient fault, absent track).
    pub failed_reads: u64,
    /// Writes that returned an error (dead disk, torn write, oversized data).
    pub failed_writes: u64,
    /// Durability barriers issued ([`TrackDisk::sync`]): real
    /// `fdatasync` calls on the file backend, counted no-ops on the
    /// simulated disk. Group commit means ~2 per commit, not 2 per track.
    pub fsyncs: u64,
}

// DiskStats deliberately stays a `Copy` value struct, so the fsync
// latency histogram lives only on `DiskCounters::fsync_us` and in the
// registry as `storage.disk.fsync_us`.

/// The live telemetry counters behind [`DiskStats`].  Handles are shared
/// atomics so a [`gemstone_telemetry::MetricsRegistry`] can bind the very
/// cells the disk increments; `Clone` deliberately *detaches* (fresh cells
/// holding the current values) because cloning a [`SimDisk`] means taking
/// a checkpoint, and a checkpoint's counters must not keep ticking with
/// the original.
#[derive(Debug, Default)]
pub struct DiskCounters {
    pub track_reads: Counter,
    pub track_writes: Counter,
    pub bytes_written: Counter,
    pub failed_reads: Counter,
    pub failed_writes: Counter,
    pub fsyncs: Counter,
    /// Latency of each successful durability barrier, in microseconds
    /// (bound by the registry as `storage.disk.fsync_us`).
    pub fsync_us: Histogram,
}

impl Clone for DiskCounters {
    fn clone(&self) -> DiskCounters {
        DiskCounters {
            track_reads: self.track_reads.detached_copy(),
            track_writes: self.track_writes.detached_copy(),
            bytes_written: self.bytes_written.detached_copy(),
            failed_reads: self.failed_reads.detached_copy(),
            failed_writes: self.failed_writes.detached_copy(),
            fsyncs: self.fsyncs.detached_copy(),
            fsync_us: self.fsync_us.detached_copy(),
        }
    }
}

impl DiskCounters {
    /// Freeze into the legacy value struct.
    pub fn snapshot(&self) -> DiskStats {
        DiskStats {
            track_reads: self.track_reads.get(),
            track_writes: self.track_writes.get(),
            bytes_written: self.bytes_written.get(),
            failed_reads: self.failed_reads.get(),
            failed_writes: self.failed_writes.get(),
            fsyncs: self.fsyncs.get(),
        }
    }

    pub(crate) fn reset(&self) {
        self.track_reads.reset();
        self.track_writes.reset();
        self.bytes_written.reset();
        self.failed_reads.reset();
        self.failed_writes.reset();
        self.fsyncs.reset();
        self.fsync_us.reset();
    }

    /// Shared handles (non-detaching, for registry binding).
    pub fn share(&self) -> DiskCounters {
        DiskCounters {
            track_reads: self.track_reads.clone(),
            track_writes: self.track_writes.clone(),
            bytes_written: self.bytes_written.clone(),
            failed_reads: self.failed_reads.clone(),
            failed_writes: self.failed_writes.clone(),
            fsyncs: self.fsyncs.clone(),
            fsync_us: self.fsync_us.clone(),
        }
    }
}

/// Where, within the record being written, a crashing write tears. The
/// classes are chosen to hit every structurally distinct prefix of a
/// checksummed track: inside the header's length field, inside its checksum
/// field, exactly between header and payload, mid-payload, and all-but-one
/// byte — plus `Clean`, where the doomed write never reaches the platter at
/// all (power lost between writes).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TearClass {
    /// The crashing write does not land at all: a clean crash between writes.
    Clean,
    /// Tear inside the header's length field (2 of its 4 bytes land).
    HeaderLen,
    /// Tear inside the header's checksum field (length + 4 of 8 sum bytes).
    HeaderSum,
    /// The full header lands; none of the payload does.
    AfterHeader,
    /// Half the record lands (the legacy `fail_after_writes` behaviour).
    #[default]
    Half,
    /// Everything but the final byte lands.
    Tail,
}

impl TearClass {
    /// Every class, in enumeration order.
    pub const ALL: [TearClass; 6] = [
        TearClass::Clean,
        TearClass::HeaderLen,
        TearClass::HeaderSum,
        TearClass::AfterHeader,
        TearClass::Half,
        TearClass::Tail,
    ];

    /// How many bytes of an `n`-byte record reach the platter.
    pub fn prefix_len(self, n: usize) -> usize {
        match self {
            TearClass::Clean => 0,
            TearClass::HeaderLen => 2.min(n),
            TearClass::HeaderSum => 8.min(n),
            TearClass::AfterHeader => TRACK_HEADER.min(n),
            TearClass::Half => (n / 2).max(1).min(n),
            TearClass::Tail => n.saturating_sub(1),
        }
    }

    /// Compact token used inside a printable `CrashSchedule`.
    pub fn token(self) -> &'static str {
        match self {
            TearClass::Clean => "clean",
            TearClass::HeaderLen => "hlen",
            TearClass::HeaderSum => "hsum",
            TearClass::AfterHeader => "hdr",
            TearClass::Half => "half",
            TearClass::Tail => "tail",
        }
    }

    /// Parse a [`TearClass::token`].
    pub fn from_token(s: &str) -> Option<TearClass> {
        TearClass::ALL.into_iter().find(|t| t.token() == s)
    }
}

/// A window of transient read errors: `after_reads` reads succeed, then the
/// next `count` reads fail (without killing the disk), then reads succeed
/// again. Models media hiccups — including ones that interrupt recovery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadFault {
    pub after_reads: u64,
    pub count: u64,
}

/// One successful write, as recorded by a tracing [`FaultPlan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteRecord {
    pub track: TrackId,
    pub len: usize,
}

/// One physical I/O operation in order, as recorded by a tracing
/// [`FaultPlan`] — the evidence stream for fsync-ordering assertions
/// (no root-page write may precede its data tracks' sync barrier).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoRecord {
    /// A successful whole-track write.
    Write { track: TrackId, len: usize },
    /// A successful durability barrier ([`TrackDisk::sync`]).
    Sync,
}

/// The whole-track disk interface the storage stack is written against.
///
/// Extracted from [`SimDisk`]'s surface so the simulated disk and the
/// durable [`FileDisk`](crate::file_disk::FileDisk) (behind its
/// [`FaultFile`](crate::file_disk::FaultFile) fault-injection wrapper) are
/// interchangeable everywhere — the store, the Commit Manager, and the
/// crash-point matrix all drive `dyn TrackDisk` and cannot tell the
/// backends apart except through [`TrackDisk::backend_name`].
pub trait TrackDisk: Send + std::fmt::Debug {
    /// Stable backend identifier stamped into journal events
    /// (`"sim"` / `"file"`).
    fn backend_name(&self) -> &'static str;

    /// Track size in bytes (includes the [`TRACK_HEADER`]).
    fn track_size(&self) -> usize;

    /// Number of tracks ever written.
    fn tracks_in_use(&self) -> usize;

    /// Access counters so far.
    fn stats(&self) -> DiskStats;

    /// The live counter cells (for registry binding).
    fn counters(&self) -> DiskCounters;

    /// Reset counters (benchmark hygiene).
    fn reset_stats(&mut self);

    /// Attach the flight recorder; every counter move also emits a journal
    /// event, so replaying the journal reproduces the counters.
    fn attach_journal(&mut self, journal: Journal);

    /// Install a fault plan, reviving the disk if it was dead.
    fn set_fault_plan(&mut self, plan: FaultPlan);

    /// The write trace accumulated so far (with `record_trace` armed),
    /// clearing it.
    fn take_write_trace(&mut self) -> Vec<WriteRecord>;

    /// The ordered write/sync trace accumulated so far (with
    /// `record_trace` armed), clearing it.
    fn take_io_trace(&mut self) -> Vec<IoRecord>;

    /// Disarm all fault injection and revive the disk (power-up after a
    /// crash; any torn data remains).
    fn revive(&mut self);

    /// True once a crash has been triggered.
    fn is_dead(&self) -> bool;

    /// Write an entire track. `data` must fit in the track; short data is
    /// zero-padded (a track is always written whole).
    fn write_track(&mut self, id: TrackId, data: &[u8]) -> GemResult<()>;

    /// Read an entire track.
    fn read_track(&mut self, id: TrackId) -> GemResult<&[u8]>;

    /// Durability barrier: everything written so far must survive power
    /// loss before this returns. `fdatasync` on the file backend, a
    /// counted no-op on the simulated disk. Never consumes the fault
    /// plan's write budget — crash-point indices stay write-aligned.
    fn sync(&mut self) -> GemResult<()>;

    /// True if the track has ever been written.
    fn track_exists(&self, id: TrackId) -> bool;

    /// Number of written tracks at or past `frontier` — the orphans a
    /// recovered root does not reference (shadow writes of a torn commit).
    fn tracks_beyond(&self, frontier: u32) -> u32;

    /// Checkpoint: an independent copy of the platter. Counters detach and
    /// any journal is dropped — a checkpoint must not keep emitting.
    fn clone_disk(&self) -> Box<dyn TrackDisk>;

    /// Arm crash injection: `n` more writes succeed, the next one tears in
    /// half (shorthand for installing [`FaultPlan::crash_after`]).
    fn fail_after_writes(&mut self, n: u64) {
        self.set_fault_plan(FaultPlan::crash_after(n));
    }
}

/// The pluggable fault-injection plan carried by a [`SimDisk`]. The default
/// plan injects nothing.
#[derive(Debug, Default, Clone)]
pub struct FaultPlan {
    /// `Some(n)`: n more writes succeed; the next one crashes the disk,
    /// tearing per [`FaultPlan::tear`].
    pub crash_after_writes: Option<u64>,
    /// How the crashing write tears ([`TearClass::Clean`] = it never lands).
    pub tear: TearClass,
    /// Transient read-error window.
    pub read_fault: Option<ReadFault>,
    /// Record every successful write in the trace.
    pub record_trace: bool,
}

impl FaultPlan {
    /// The legacy arm-and-tear plan: `n` writes succeed, the next tears in
    /// half and the disk dies.
    pub fn crash_after(n: u64) -> FaultPlan {
        FaultPlan { crash_after_writes: Some(n), tear: TearClass::Half, ..FaultPlan::default() }
    }

    /// A tracing plan that injects no faults.
    pub fn trace() -> FaultPlan {
        FaultPlan { record_trace: true, ..FaultPlan::default() }
    }
}

/// A simulated disk of fixed-size tracks.
#[derive(Debug)]
pub struct SimDisk {
    track_size: usize,
    tracks: Vec<Option<Box<[u8]>>>,
    stats: DiskCounters,
    plan: FaultPlan,
    trace: Vec<WriteRecord>,
    io_trace: Vec<IoRecord>,
    dead: bool,
    /// Flight recorder, attached to the primary replica only (the one
    /// whose counters the registry binds).  Not derivable: cloning a disk
    /// takes a checkpoint, and a checkpoint must not keep emitting.
    journal: Option<Journal>,
}

impl Clone for SimDisk {
    fn clone(&self) -> SimDisk {
        SimDisk {
            track_size: self.track_size,
            tracks: self.tracks.clone(),
            stats: self.stats.clone(), // detaches, like the journal below
            plan: self.plan.clone(),
            trace: self.trace.clone(),
            io_trace: self.io_trace.clone(),
            dead: self.dead,
            journal: None,
        }
    }
}

impl SimDisk {
    /// A fresh disk. `track_size` includes the [`TRACK_HEADER`].
    pub fn new(track_size: usize) -> SimDisk {
        assert!(track_size > TRACK_HEADER * 2, "track size too small");
        SimDisk {
            track_size,
            tracks: Vec::new(),
            stats: DiskCounters::default(),
            plan: FaultPlan::default(),
            trace: Vec::new(),
            io_trace: Vec::new(),
            dead: false,
            journal: None,
        }
    }

    /// Attach the flight recorder; every counter move below also emits a
    /// journal event, so replaying the journal reproduces the counters.
    pub fn attach_journal(&mut self, journal: Journal) {
        self.journal = Some(journal);
    }

    #[inline]
    fn journal_on(&self) -> Option<&Journal> {
        match &self.journal {
            Some(j) if j.enabled() => Some(j),
            _ => None,
        }
    }

    /// Track size in bytes.
    pub fn track_size(&self) -> usize {
        self.track_size
    }

    /// Number of tracks ever written.
    pub fn tracks_in_use(&self) -> usize {
        self.tracks.iter().filter(|t| t.is_some()).count()
    }

    /// Access counters so far.
    pub fn stats(&self) -> DiskStats {
        self.stats.snapshot()
    }

    /// The live counter cells (for registry binding).
    pub fn counters(&self) -> DiskCounters {
        self.stats.share()
    }

    /// Reset counters (benchmark hygiene).
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    /// Arm crash injection: `n` more writes succeed, the next one tears in
    /// half (shorthand for installing [`FaultPlan::crash_after`]).
    pub fn fail_after_writes(&mut self, n: u64) {
        self.set_fault_plan(FaultPlan::crash_after(n));
    }

    /// Install a fault plan, reviving the disk if it was dead. The write
    /// trace is cleared when the new plan records one.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        if plan.record_trace {
            self.trace.clear();
            self.io_trace.clear();
        }
        self.plan = plan;
        self.dead = false;
    }

    /// The write trace accumulated so far (with `record_trace` armed),
    /// clearing it.
    pub fn take_write_trace(&mut self) -> Vec<WriteRecord> {
        std::mem::take(&mut self.trace)
    }

    /// The ordered write/sync trace accumulated so far (with
    /// `record_trace` armed), clearing it.
    pub fn take_io_trace(&mut self) -> Vec<IoRecord> {
        std::mem::take(&mut self.io_trace)
    }

    /// Durability barrier. The simulated platter is always "durable", so
    /// this only counts, traces, and journals — but it fails on a dead disk
    /// exactly like the file backend, so crash schedules agree.
    pub fn sync(&mut self) -> GemResult<()> {
        if self.dead {
            if let Some(j) = self.journal_on() {
                j.emit(&JournalEvent::DiskSync { ok: false, backend: "sim".into() });
            }
            return Err(GemError::DiskDead);
        }
        self.stats.fsyncs.inc();
        // The simulated platter syncs instantly; record the (near-zero)
        // barrier latency anyway so the `storage.disk.fsync_us` stream
        // exists on both backends and replay rules stay uniform.
        self.stats.fsync_us.record(0);
        if let Some(j) = self.journal_on() {
            j.emit(&JournalEvent::DiskSync { ok: true, backend: "sim".into() });
            j.emit(&JournalEvent::FsyncLatency { us: 0, backend: "sim".into() });
        }
        if self.plan.record_trace {
            self.io_trace.push(IoRecord::Sync);
        }
        Ok(())
    }

    /// Disarm all fault injection and revive the disk (simulates power-up
    /// after the crash; any torn data remains).
    pub fn revive(&mut self) {
        self.plan = FaultPlan::default();
        self.dead = false;
    }

    /// True once a crash has been triggered.
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    /// Write an entire track. `data` must fit in the track; short data is
    /// zero-padded (a track is always written whole).
    pub fn write_track(&mut self, id: TrackId, data: &[u8]) -> GemResult<()> {
        if self.dead {
            self.stats.failed_writes.inc();
            if let Some(j) = self.journal_on() {
                j.emit(&JournalEvent::TrackWrite {
                    track: id.0 as u64,
                    ok: false,
                    bytes: 0,
                    backend: "sim".into(),
                });
            }
            return Err(GemError::DiskDead);
        }
        if data.len() > self.track_size {
            self.stats.failed_writes.inc();
            if let Some(j) = self.journal_on() {
                j.emit(&JournalEvent::TrackWrite {
                    track: id.0 as u64,
                    ok: false,
                    bytes: 0,
                    backend: "sim".into(),
                });
            }
            return Err(GemError::DiskFailure(format!(
                "data ({} bytes) exceeds track size ({})",
                data.len(),
                self.track_size
            )));
        }
        let idx = id.0 as usize;
        if idx >= self.tracks.len() {
            self.tracks.resize_with(idx + 1, || None);
        }
        let mut buf = vec![0u8; self.track_size].into_boxed_slice();
        buf[..data.len()].copy_from_slice(data);

        if let Some(n) = self.plan.crash_after_writes {
            if n == 0 {
                // Crashing write: a prefix of the *record* reaches the
                // platter (a record smaller than the track still tears —
                // the head lost power mid-record, not mid-padding). A
                // `Clean` tear writes nothing: power died between writes.
                let prefix = self.plan.tear.prefix_len(data.len()).min(self.track_size);
                if prefix > 0 {
                    let old = self.tracks[idx].take();
                    let mut torn =
                        old.unwrap_or_else(|| vec![0u8; self.track_size].into_boxed_slice());
                    torn[..prefix].copy_from_slice(&buf[..prefix]);
                    self.tracks[idx] = Some(torn);
                }
                self.dead = true;
                self.stats.failed_writes.inc();
                if let Some(j) = self.journal_on() {
                    j.emit(&JournalEvent::TrackWrite {
                        track: id.0 as u64,
                        ok: false,
                        bytes: 0,
                        backend: "sim".into(),
                    });
                }
                return Err(GemError::DiskFailure("power lost mid-write (torn track)".into()));
            }
            self.plan.crash_after_writes = Some(n - 1);
        }

        self.stats.track_writes.inc();
        self.stats.bytes_written.add(self.track_size as u64);
        if let Some(j) = self.journal_on() {
            j.emit(&JournalEvent::TrackWrite {
                track: id.0 as u64,
                ok: true,
                bytes: self.track_size as u64,
                backend: "sim".into(),
            });
        }
        if self.plan.record_trace {
            self.trace.push(WriteRecord { track: id, len: data.len() });
            self.io_trace.push(IoRecord::Write { track: id, len: data.len() });
        }
        self.tracks[idx] = Some(buf);
        Ok(())
    }

    /// Read an entire track.
    pub fn read_track(&mut self, id: TrackId) -> GemResult<&[u8]> {
        if self.dead {
            self.stats.failed_reads.inc();
            if let Some(j) = self.journal_on() {
                j.emit(&JournalEvent::TrackRead {
                    track: id.0 as u64,
                    ok: false,
                    backend: "sim".into(),
                });
            }
            return Err(GemError::DiskDead);
        }
        if let Some(fault) = &mut self.plan.read_fault {
            if fault.after_reads > 0 {
                fault.after_reads -= 1;
            } else if fault.count > 0 {
                fault.count -= 1;
                self.stats.failed_reads.inc();
                if let Some(j) = self.journal_on() {
                    j.emit(&JournalEvent::TrackRead {
                        track: id.0 as u64,
                        ok: false,
                        backend: "sim".into(),
                    });
                }
                return Err(GemError::DiskFailure(format!("transient read error on {id:?}")));
            }
        }
        if self.tracks.get(id.0 as usize).and_then(|t| t.as_ref()).is_none() {
            self.stats.failed_reads.inc();
            if let Some(j) = self.journal_on() {
                j.emit(&JournalEvent::TrackRead {
                    track: id.0 as u64,
                    ok: false,
                    backend: "sim".into(),
                });
            }
            return Err(GemError::DiskFailure(format!("track {id:?} never written")));
        }
        self.stats.track_reads.inc();
        if let Some(j) = self.journal_on() {
            j.emit(&JournalEvent::TrackRead {
                track: id.0 as u64,
                ok: true,
                backend: "sim".into(),
            });
        }
        Ok(self.tracks[id.0 as usize].as_deref().expect("checked above"))
    }

    /// True if the track has ever been written.
    pub fn track_exists(&self, id: TrackId) -> bool {
        self.tracks.get(id.0 as usize).is_some_and(|t| t.is_some())
    }

    /// Number of written tracks at or past `frontier` — the orphans a
    /// recovered root does not reference (shadow writes of a torn commit).
    pub fn tracks_beyond(&self, frontier: u32) -> u32 {
        self.tracks.iter().skip(frontier as usize).filter(|t| t.is_some()).count() as u32
    }
}

impl TrackDisk for SimDisk {
    fn backend_name(&self) -> &'static str {
        "sim"
    }
    fn track_size(&self) -> usize {
        SimDisk::track_size(self)
    }
    fn tracks_in_use(&self) -> usize {
        SimDisk::tracks_in_use(self)
    }
    fn stats(&self) -> DiskStats {
        SimDisk::stats(self)
    }
    fn counters(&self) -> DiskCounters {
        SimDisk::counters(self)
    }
    fn reset_stats(&mut self) {
        SimDisk::reset_stats(self)
    }
    fn attach_journal(&mut self, journal: Journal) {
        SimDisk::attach_journal(self, journal)
    }
    fn set_fault_plan(&mut self, plan: FaultPlan) {
        SimDisk::set_fault_plan(self, plan)
    }
    fn take_write_trace(&mut self) -> Vec<WriteRecord> {
        SimDisk::take_write_trace(self)
    }
    fn take_io_trace(&mut self) -> Vec<IoRecord> {
        SimDisk::take_io_trace(self)
    }
    fn revive(&mut self) {
        SimDisk::revive(self)
    }
    fn is_dead(&self) -> bool {
        SimDisk::is_dead(self)
    }
    fn write_track(&mut self, id: TrackId, data: &[u8]) -> GemResult<()> {
        SimDisk::write_track(self, id, data)
    }
    fn read_track(&mut self, id: TrackId) -> GemResult<&[u8]> {
        SimDisk::read_track(self, id)
    }
    fn sync(&mut self) -> GemResult<()> {
        SimDisk::sync(self)
    }
    fn track_exists(&self, id: TrackId) -> bool {
        SimDisk::track_exists(self, id)
    }
    fn tracks_beyond(&self, frontier: u32) -> u32 {
        SimDisk::tracks_beyond(self, frontier)
    }
    fn clone_disk(&self) -> Box<dyn TrackDisk> {
        Box::new(self.clone())
    }
}

/// A replicated set of disks (§6: the Object Manager handles "requests for
/// replication of data"). Writes go to every live replica; reads are served
/// by the first replica that can deliver the track, so data survives the
/// loss of any proper subset of replicas. The replicas are [`TrackDisk`]
/// trait objects, so an array may be simulated, file-backed, or (in tests)
/// a mix.
#[derive(Debug)]
pub struct DiskArray {
    replicas: Vec<Box<dyn TrackDisk>>,
    /// Tracks per safe-write group (root write included), recorded by the
    /// Commit Manager via [`DiskArray::note_safe_write_group`].
    group_sizes: Histogram,
}

impl Clone for DiskArray {
    fn clone(&self) -> DiskArray {
        // A cloned array is a checkpoint: its histogram detaches, matching
        // `DiskCounters` semantics.
        DiskArray {
            replicas: self.replicas.iter().map(|d| d.clone_disk()).collect(),
            group_sizes: self.group_sizes.detached_copy(),
        }
    }
}

impl DiskArray {
    /// `n` mirrored simulated replicas of `track_size` tracks.
    pub fn new(track_size: usize, n: usize) -> DiskArray {
        assert!(n >= 1);
        DiskArray {
            replicas: (0..n)
                .map(|_| Box::new(SimDisk::new(track_size)) as Box<dyn TrackDisk>)
                .collect(),
            group_sizes: Histogram::new(),
        }
    }

    /// Wrap an existing disk as a single-replica array (recovery path).
    pub fn from_disk(disk: SimDisk) -> DiskArray {
        DiskArray::from_backend(Box::new(disk))
    }

    /// Wrap any [`TrackDisk`] backend as a single-replica array.
    pub fn from_backend(disk: Box<dyn TrackDisk>) -> DiskArray {
        DiskArray { replicas: vec![disk], group_sizes: Histogram::new() }
    }

    /// Wrap a set of [`TrackDisk`] backends as mirrored replicas.
    pub fn from_backends(replicas: Vec<Box<dyn TrackDisk>>) -> DiskArray {
        assert!(!replicas.is_empty());
        DiskArray { replicas, group_sizes: Histogram::new() }
    }

    /// The primary replica's backend identifier (`"sim"` / `"file"`).
    pub fn backend_name(&self) -> &'static str {
        self.replicas[0].backend_name()
    }

    /// Record that a safe-write group of `tracks` tracks (root included)
    /// committed against this array.
    pub fn note_safe_write_group(&self, tracks: u64) {
        self.group_sizes.record(tracks);
    }

    /// Distribution of tracks per committed safe-write group.
    pub fn write_group_sizes(&self) -> HistogramSnapshot {
        self.group_sizes.snapshot()
    }

    /// The live histogram cell (for registry binding).
    pub fn group_size_histogram(&self) -> Histogram {
        self.group_sizes.clone()
    }

    /// Track size.
    pub fn track_size(&self) -> usize {
        self.replicas[0].track_size()
    }

    /// Number of replicas.
    pub fn replica_count(&self) -> usize {
        self.replicas.len()
    }

    /// Access a replica (crash injection in tests).
    pub fn replica_mut(&mut self, i: usize) -> &mut dyn TrackDisk {
        &mut *self.replicas[i]
    }

    /// Write to all live replicas. Succeeds if *any* replica took the write;
    /// the caller learns of degraded redundancy via [`Self::live_replicas`].
    pub fn write_track(&mut self, id: TrackId, data: &[u8]) -> GemResult<()> {
        let mut wrote = 0;
        let mut last_err = None;
        for d in &mut self.replicas {
            match d.write_track(id, data) {
                Ok(()) => wrote += 1,
                Err(e) => last_err = Some(e),
            }
        }
        if wrote > 0 {
            Ok(())
        } else {
            Err(last_err.unwrap_or_else(|| GemError::DiskFailure("no replicas".into())))
        }
    }

    /// Durability barrier across the array. Mirrors the write semantics:
    /// the commit survives if *any* replica made it durable.
    pub fn sync(&mut self) -> GemResult<()> {
        let mut synced = 0;
        let mut last_err = None;
        for d in &mut self.replicas {
            match d.sync() {
                Ok(()) => synced += 1,
                Err(e) => last_err = Some(e),
            }
        }
        if synced > 0 {
            Ok(())
        } else {
            Err(last_err.unwrap_or_else(|| GemError::DiskFailure("no replicas".into())))
        }
    }

    /// Read from the first replica able to serve the track. Exactly one
    /// replica performs (and counts) one read per logical call: the serving
    /// replica is chosen by side-effect-free probes first, so no replica's
    /// counters double-count and dead replicas aren't touched.
    pub fn read_track(&mut self, id: TrackId) -> GemResult<&[u8]> {
        match (0..self.replicas.len())
            .find(|&i| !self.replicas[i].is_dead() && self.replicas[i].track_exists(id))
        {
            Some(i) => self.replicas[i].read_track(id),
            None if self.live_replicas() == 0 => Err(GemError::DiskDead),
            None => Err(GemError::DiskFailure(format!("track {id:?} never written"))),
        }
    }

    /// True if any replica (live or dead) holds the track.
    pub fn track_exists(&self, id: TrackId) -> bool {
        self.replicas.iter().any(|d| d.track_exists(id))
    }

    /// Orphan tracks at or past `frontier` on the primary replica.
    pub fn tracks_beyond(&self, frontier: u32) -> u32 {
        self.replicas[0].tracks_beyond(frontier)
    }

    /// How many replicas are currently serving I/O.
    pub fn live_replicas(&self) -> usize {
        self.replicas.iter().filter(|d| !d.is_dead()).count()
    }

    /// Combined stats of replica 0 (the primary), for benchmarks.
    pub fn stats(&self) -> DiskStats {
        self.replicas[0].stats()
    }

    /// The primary replica's live counter cells (for registry binding).
    pub fn counters(&self) -> DiskCounters {
        self.replicas[0].counters()
    }

    /// Attach the flight recorder to the primary replica — the one whose
    /// counters the registry binds, so journal events stay 1:1 with
    /// registry moves even when a mirror serves reads.
    pub fn attach_journal(&mut self, journal: Journal) {
        self.replicas[0].attach_journal(journal);
    }

    /// Reset all replica counters and the group-size histogram.
    pub fn reset_stats(&mut self) {
        for d in &mut self.replicas {
            d.reset_stats();
        }
        self.group_sizes.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_roundtrip() {
        let mut d = SimDisk::new(256);
        d.write_track(TrackId(3), b"hello tracks").unwrap();
        let back = d.read_track(TrackId(3)).unwrap();
        assert_eq!(&back[..12], b"hello tracks");
        assert_eq!(back.len(), 256, "tracks are read whole");
        assert!(back[12..].iter().all(|&b| b == 0), "zero padded");
    }

    #[test]
    fn stats_count_accesses() {
        let mut d = SimDisk::new(256);
        d.write_track(TrackId(0), b"x").unwrap();
        d.write_track(TrackId(1), b"y").unwrap();
        let _ = d.read_track(TrackId(0)).unwrap();
        let s = d.stats();
        assert_eq!(s.track_writes, 2);
        assert_eq!(s.track_reads, 1);
        assert_eq!(s.bytes_written, 512);
    }

    #[test]
    fn oversized_write_rejected() {
        let mut d = SimDisk::new(64);
        assert!(d.write_track(TrackId(0), &[0u8; 65]).is_err());
        assert!(d.write_track(TrackId(0), &[0u8; 64]).is_ok());
    }

    #[test]
    fn unwritten_track_read_fails() {
        let mut d = SimDisk::new(256);
        assert!(d.read_track(TrackId(9)).is_err());
        assert!(!d.track_exists(TrackId(9)));
    }

    #[test]
    fn crash_injection_tears_and_kills() {
        let mut d = SimDisk::new(64);
        d.write_track(TrackId(0), &[0xAA; 64]).unwrap();
        d.fail_after_writes(1);
        d.write_track(TrackId(1), &[0xBB; 64]).unwrap(); // the 1 allowed write
        let err = d.write_track(TrackId(0), &[0xCC; 64]); // tears
        assert!(err.is_err());
        assert!(d.is_dead());
        assert!(matches!(d.read_track(TrackId(0)), Err(GemError::DiskDead)), "disk down");
        d.revive();
        let t0 = d.read_track(TrackId(0)).unwrap().to_vec();
        assert_eq!(&t0[..32], &[0xCC; 32], "first half of torn write landed");
        assert_eq!(&t0[32..], &[0xAA; 32], "second half is the old data");
    }

    #[test]
    fn failed_ops_counted_separately() {
        let mut d = SimDisk::new(64);
        d.write_track(TrackId(0), &[0xAA; 64]).unwrap();
        d.fail_after_writes(0);
        assert!(d.write_track(TrackId(0), &[0xCC; 64]).is_err()); // torn
        assert!(d.write_track(TrackId(1), b"x").is_err()); // dead
        assert!(d.read_track(TrackId(0)).is_err()); // dead
        let s = d.stats();
        assert_eq!(s.track_writes, 1, "only the successful write counts");
        assert_eq!(s.failed_writes, 2, "torn + dead write");
        assert_eq!(s.track_reads, 0);
        assert_eq!(s.failed_reads, 1);
        assert_eq!(s.bytes_written, 64);
    }

    #[test]
    fn tear_class_prefixes() {
        // A 40-byte record on a 64-byte track, torn at each class.
        for (tear, want_new) in [
            (TearClass::Clean, 0usize),
            (TearClass::HeaderLen, 2),
            (TearClass::HeaderSum, 8),
            (TearClass::AfterHeader, 12),
            (TearClass::Half, 20),
            (TearClass::Tail, 39),
        ] {
            let mut d = SimDisk::new(64);
            d.write_track(TrackId(0), &[0xAA; 64]).unwrap();
            d.set_fault_plan(FaultPlan {
                crash_after_writes: Some(0),
                tear,
                ..FaultPlan::default()
            });
            assert!(d.write_track(TrackId(0), &[0xCC; 40]).is_err());
            assert!(d.is_dead());
            d.revive();
            let t = d.read_track(TrackId(0)).unwrap();
            assert!(t[..want_new].iter().all(|&b| b == 0xCC), "{tear:?}: new prefix");
            assert!(t[want_new..40].iter().all(|&b| b == 0xAA), "{tear:?}: old suffix");
        }
    }

    #[test]
    fn transient_read_fault_window() {
        let mut d = SimDisk::new(64);
        d.write_track(TrackId(0), b"data").unwrap();
        d.set_fault_plan(FaultPlan {
            read_fault: Some(ReadFault { after_reads: 1, count: 2 }),
            ..FaultPlan::default()
        });
        assert!(d.read_track(TrackId(0)).is_ok(), "first read succeeds");
        assert!(d.read_track(TrackId(0)).is_err(), "window open");
        assert!(d.read_track(TrackId(0)).is_err(), "window open");
        assert!(d.read_track(TrackId(0)).is_ok(), "window closed");
        assert!(!d.is_dead(), "transient faults never kill the disk");
        let s = d.stats();
        assert_eq!((s.track_reads, s.failed_reads), (2, 2));
    }

    #[test]
    fn write_trace_records_successful_writes() {
        let mut d = SimDisk::new(64);
        d.set_fault_plan(FaultPlan { crash_after_writes: Some(2), ..FaultPlan::trace() });
        d.write_track(TrackId(3), &[1; 10]).unwrap();
        d.write_track(TrackId(4), &[2; 20]).unwrap();
        assert!(d.write_track(TrackId(5), &[3; 30]).is_err(), "crash: not traced");
        let trace = d.take_write_trace();
        assert_eq!(
            trace,
            vec![
                WriteRecord { track: TrackId(3), len: 10 },
                WriteRecord { track: TrackId(4), len: 20 },
            ]
        );
        assert!(d.take_write_trace().is_empty(), "trace drained");
    }

    #[test]
    fn tracks_beyond_counts_orphans() {
        let mut d = SimDisk::new(64);
        d.write_track(TrackId(0), b"a").unwrap();
        d.write_track(TrackId(4), b"b").unwrap();
        d.write_track(TrackId(7), b"c").unwrap();
        assert_eq!(d.tracks_beyond(0), 3);
        assert_eq!(d.tracks_beyond(4), 2);
        assert_eq!(d.tracks_beyond(5), 1);
        assert_eq!(d.tracks_beyond(8), 0);
    }

    #[test]
    fn disk_array_survives_replica_loss() {
        let mut a = DiskArray::new(128, 2);
        a.write_track(TrackId(5), b"replicated").unwrap();
        // Primary dies.
        a.replica_mut(0).fail_after_writes(0);
        let _ = a.replica_mut(0).write_track(TrackId(6), b"boom");
        assert_eq!(a.live_replicas(), 1);
        let back = a.read_track(TrackId(5)).unwrap();
        assert_eq!(&back[..10], b"replicated", "mirror serves the read");
    }

    #[test]
    fn array_read_counts_exactly_one_replica_read() {
        // One logical read = one physical read on the serving replica; the
        // mirror is untouched (an earlier probe-then-reborrow version read
        // — and counted — the same track twice).
        let mut a = DiskArray::new(128, 2);
        a.write_track(TrackId(0), b"counted once").unwrap();
        a.reset_stats();
        for _ in 0..5 {
            a.read_track(TrackId(0)).unwrap();
        }
        assert_eq!(a.stats().track_reads, 5, "primary serves and counts each read once");
        assert_eq!(a.replica_mut(1).stats().track_reads, 0, "mirror untouched");

        // Failed lookups (missing track) charge no replica either.
        assert!(a.read_track(TrackId(7)).is_err());
        assert_eq!(a.stats().track_reads, 5);
        assert_eq!(a.replica_mut(1).stats().track_reads, 0);

        // After the primary dies, the mirror serves — again one read each.
        a.replica_mut(0).fail_after_writes(0);
        let _ = a.replica_mut(0).write_track(TrackId(1), b"boom");
        a.read_track(TrackId(0)).unwrap();
        assert_eq!(a.replica_mut(1).stats().track_reads, 1);
    }

    #[test]
    fn disk_array_write_degrades_but_succeeds() {
        let mut a = DiskArray::new(128, 2);
        a.replica_mut(1).fail_after_writes(0);
        let _ = a.replica_mut(1).write_track(TrackId(0), b"kill");
        assert!(a.write_track(TrackId(1), b"still ok").is_ok());
        assert_eq!(a.live_replicas(), 1);
    }
}
