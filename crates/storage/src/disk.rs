//! The simulated disk: whole-track access, accounting, failure injection.
//!
//! The paper's GemStone ran on special-purpose hardware with the database
//! controlling the disk directly; "disk access will always be by entire
//! tracks". [`SimDisk`] reproduces exactly that interface — `read_track` /
//! `write_track`, nothing smaller — and counts every access, because the
//! storage experiments (C5, C7, C9, C10 in DESIGN.md) are about access
//! *counts and atomicity*, not device physics.
//!
//! Crash injection: a disk can be armed to fail after N more writes. The
//! N+1st write is *torn* (first half written, rest old/garbage) and every
//! subsequent operation fails — modeling power loss mid-commit. Recovery
//! code must detect the tear via checksums.

use gemstone_object::{GemError, GemResult};

/// Index of a track on a disk.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TrackId(pub u32);

/// Bytes reserved at the start of every track by the Commit Manager:
/// a little-endian u32 payload length followed by a u64 FNV-1a checksum.
pub const TRACK_HEADER: usize = 12;

/// Disk access counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct DiskStats {
    pub track_reads: u64,
    pub track_writes: u64,
    pub bytes_written: u64,
}

/// A simulated disk of fixed-size tracks.
#[derive(Debug)]
pub struct SimDisk {
    track_size: usize,
    tracks: Vec<Option<Box<[u8]>>>,
    stats: DiskStats,
    /// `Some(n)`: n more writes succeed; the next tears and the disk dies.
    fail_after_writes: Option<u64>,
    dead: bool,
}

impl SimDisk {
    /// A fresh disk. `track_size` includes the [`TRACK_HEADER`].
    pub fn new(track_size: usize) -> SimDisk {
        assert!(track_size > TRACK_HEADER * 2, "track size too small");
        SimDisk {
            track_size,
            tracks: Vec::new(),
            stats: DiskStats::default(),
            fail_after_writes: None,
            dead: false,
        }
    }

    /// Track size in bytes.
    pub fn track_size(&self) -> usize {
        self.track_size
    }

    /// Number of tracks ever written.
    pub fn tracks_in_use(&self) -> usize {
        self.tracks.iter().filter(|t| t.is_some()).count()
    }

    /// Access counters so far.
    pub fn stats(&self) -> DiskStats {
        self.stats
    }

    /// Reset counters (benchmark hygiene).
    pub fn reset_stats(&mut self) {
        self.stats = DiskStats::default();
    }

    /// Arm crash injection: `n` more writes succeed, the next one tears.
    pub fn fail_after_writes(&mut self, n: u64) {
        self.fail_after_writes = Some(n);
        self.dead = false;
    }

    /// Disarm crash injection and revive the disk (simulates power-up after
    /// the crash; the torn data remains).
    pub fn revive(&mut self) {
        self.fail_after_writes = None;
        self.dead = false;
    }

    /// True once a crash has been triggered.
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    /// Write an entire track. `data` must fit in the track; short data is
    /// zero-padded (a track is always written whole).
    pub fn write_track(&mut self, id: TrackId, data: &[u8]) -> GemResult<()> {
        if self.dead {
            return Err(GemError::DiskFailure("disk is down".into()));
        }
        if data.len() > self.track_size {
            return Err(GemError::DiskFailure(format!(
                "data ({} bytes) exceeds track size ({})",
                data.len(),
                self.track_size
            )));
        }
        let idx = id.0 as usize;
        if idx >= self.tracks.len() {
            self.tracks.resize_with(idx + 1, || None);
        }
        let mut buf = vec![0u8; self.track_size].into_boxed_slice();
        buf[..data.len()].copy_from_slice(data);

        if let Some(n) = self.fail_after_writes {
            if n == 0 {
                // Torn write: only the first half of the *record* reaches the
                // platter (a record smaller than the track still tears — the
                // head lost power mid-record, not mid-padding).
                let half = (data.len() / 2).max(1).min(self.track_size);
                let old = self.tracks[idx].take();
                let mut torn = old.unwrap_or_else(|| vec![0u8; self.track_size].into_boxed_slice());
                torn[..half].copy_from_slice(&buf[..half]);
                self.tracks[idx] = Some(torn);
                self.dead = true;
                self.stats.track_writes += 1;
                return Err(GemError::DiskFailure("power lost mid-write (torn track)".into()));
            }
            self.fail_after_writes = Some(n - 1);
        }

        self.stats.track_writes += 1;
        self.stats.bytes_written += self.track_size as u64;
        self.tracks[idx] = Some(buf);
        Ok(())
    }

    /// Read an entire track.
    pub fn read_track(&mut self, id: TrackId) -> GemResult<&[u8]> {
        if self.dead {
            return Err(GemError::DiskFailure("disk is down".into()));
        }
        self.stats.track_reads += 1;
        self.tracks
            .get(id.0 as usize)
            .and_then(|t| t.as_deref())
            .ok_or_else(|| GemError::DiskFailure(format!("track {id:?} never written")))
    }

    /// True if the track has ever been written.
    pub fn track_exists(&self, id: TrackId) -> bool {
        self.tracks.get(id.0 as usize).is_some_and(|t| t.is_some())
    }
}

/// A replicated set of disks (§6: the Object Manager handles "requests for
/// replication of data"). Writes go to every live replica; reads are served
/// by the first replica that can deliver the track, so data survives the
/// loss of any proper subset of replicas.
#[derive(Debug)]
pub struct DiskArray {
    replicas: Vec<SimDisk>,
}

impl DiskArray {
    /// `n` mirrored replicas of `track_size` tracks.
    pub fn new(track_size: usize, n: usize) -> DiskArray {
        assert!(n >= 1);
        DiskArray { replicas: (0..n).map(|_| SimDisk::new(track_size)).collect() }
    }

    /// Wrap an existing disk as a single-replica array (recovery path).
    pub fn from_disk(disk: SimDisk) -> DiskArray {
        DiskArray { replicas: vec![disk] }
    }

    /// Track size.
    pub fn track_size(&self) -> usize {
        self.replicas[0].track_size()
    }

    /// Number of replicas.
    pub fn replica_count(&self) -> usize {
        self.replicas.len()
    }

    /// Access a replica (crash injection in tests).
    pub fn replica_mut(&mut self, i: usize) -> &mut SimDisk {
        &mut self.replicas[i]
    }

    /// Write to all live replicas. Succeeds if *any* replica took the write;
    /// the caller learns of degraded redundancy via [`Self::live_replicas`].
    pub fn write_track(&mut self, id: TrackId, data: &[u8]) -> GemResult<()> {
        let mut wrote = 0;
        let mut last_err = None;
        for d in &mut self.replicas {
            match d.write_track(id, data) {
                Ok(()) => wrote += 1,
                Err(e) => last_err = Some(e),
            }
        }
        if wrote > 0 {
            Ok(())
        } else {
            Err(last_err.unwrap_or_else(|| GemError::DiskFailure("no replicas".into())))
        }
    }

    /// Read from the first replica able to serve the track. Exactly one
    /// replica performs (and counts) one read per logical call: the serving
    /// replica is chosen by side-effect-free probes first, so no replica's
    /// counters double-count and dead replicas aren't touched.
    pub fn read_track(&mut self, id: TrackId) -> GemResult<&[u8]> {
        match (0..self.replicas.len())
            .find(|&i| !self.replicas[i].is_dead() && self.replicas[i].track_exists(id))
        {
            Some(i) => self.replicas[i].read_track(id),
            None if self.live_replicas() == 0 => Err(GemError::DiskFailure("disk is down".into())),
            None => Err(GemError::DiskFailure(format!("track {id:?} never written"))),
        }
    }

    /// How many replicas are currently serving I/O.
    pub fn live_replicas(&self) -> usize {
        self.replicas.iter().filter(|d| !d.is_dead()).count()
    }

    /// Combined stats of replica 0 (the primary), for benchmarks.
    pub fn stats(&self) -> DiskStats {
        self.replicas[0].stats()
    }

    /// Reset all replica counters.
    pub fn reset_stats(&mut self) {
        for d in &mut self.replicas {
            d.reset_stats();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_roundtrip() {
        let mut d = SimDisk::new(256);
        d.write_track(TrackId(3), b"hello tracks").unwrap();
        let back = d.read_track(TrackId(3)).unwrap();
        assert_eq!(&back[..12], b"hello tracks");
        assert_eq!(back.len(), 256, "tracks are read whole");
        assert!(back[12..].iter().all(|&b| b == 0), "zero padded");
    }

    #[test]
    fn stats_count_accesses() {
        let mut d = SimDisk::new(256);
        d.write_track(TrackId(0), b"x").unwrap();
        d.write_track(TrackId(1), b"y").unwrap();
        let _ = d.read_track(TrackId(0)).unwrap();
        let s = d.stats();
        assert_eq!(s.track_writes, 2);
        assert_eq!(s.track_reads, 1);
        assert_eq!(s.bytes_written, 512);
    }

    #[test]
    fn oversized_write_rejected() {
        let mut d = SimDisk::new(64);
        assert!(d.write_track(TrackId(0), &[0u8; 65]).is_err());
        assert!(d.write_track(TrackId(0), &[0u8; 64]).is_ok());
    }

    #[test]
    fn unwritten_track_read_fails() {
        let mut d = SimDisk::new(256);
        assert!(d.read_track(TrackId(9)).is_err());
        assert!(!d.track_exists(TrackId(9)));
    }

    #[test]
    fn crash_injection_tears_and_kills() {
        let mut d = SimDisk::new(64);
        d.write_track(TrackId(0), &[0xAA; 64]).unwrap();
        d.fail_after_writes(1);
        d.write_track(TrackId(1), &[0xBB; 64]).unwrap(); // the 1 allowed write
        let err = d.write_track(TrackId(0), &[0xCC; 64]); // tears
        assert!(err.is_err());
        assert!(d.is_dead());
        assert!(d.read_track(TrackId(0)).is_err(), "disk down");
        d.revive();
        let t0 = d.read_track(TrackId(0)).unwrap().to_vec();
        assert_eq!(&t0[..32], &[0xCC; 32], "first half of torn write landed");
        assert_eq!(&t0[32..], &[0xAA; 32], "second half is the old data");
    }

    #[test]
    fn disk_array_survives_replica_loss() {
        let mut a = DiskArray::new(128, 2);
        a.write_track(TrackId(5), b"replicated").unwrap();
        // Primary dies.
        a.replica_mut(0).fail_after_writes(0);
        let _ = a.replica_mut(0).write_track(TrackId(6), b"boom");
        assert_eq!(a.live_replicas(), 1);
        let back = a.read_track(TrackId(5)).unwrap();
        assert_eq!(&back[..10], b"replicated", "mirror serves the read");
    }

    #[test]
    fn array_read_counts_exactly_one_replica_read() {
        // One logical read = one physical read on the serving replica; the
        // mirror is untouched (an earlier probe-then-reborrow version read
        // — and counted — the same track twice).
        let mut a = DiskArray::new(128, 2);
        a.write_track(TrackId(0), b"counted once").unwrap();
        a.reset_stats();
        for _ in 0..5 {
            a.read_track(TrackId(0)).unwrap();
        }
        assert_eq!(a.stats().track_reads, 5, "primary serves and counts each read once");
        assert_eq!(a.replica_mut(1).stats().track_reads, 0, "mirror untouched");

        // Failed lookups (missing track) charge no replica either.
        assert!(a.read_track(TrackId(7)).is_err());
        assert_eq!(a.stats().track_reads, 5);
        assert_eq!(a.replica_mut(1).stats().track_reads, 0);

        // After the primary dies, the mirror serves — again one read each.
        a.replica_mut(0).fail_after_writes(0);
        let _ = a.replica_mut(0).write_track(TrackId(1), b"boom");
        a.read_track(TrackId(0)).unwrap();
        assert_eq!(a.replica_mut(1).stats().track_reads, 1);
    }

    #[test]
    fn disk_array_write_degrades_but_succeeds() {
        let mut a = DiskArray::new(128, 2);
        a.replica_mut(1).fail_after_writes(0);
        let _ = a.replica_mut(1).write_track(TrackId(0), b"kill");
        assert!(a.write_track(TrackId(1), b"still ok").is_ok());
        assert_eq!(a.live_replicas(), 1);
    }
}
