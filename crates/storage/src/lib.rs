//! Secondary storage management: the GemStone Object Manager's disk side
//! (§6 of Copeland & Maier, SIGMOD 1984).
//!
//! "We expect to obtain efficiency by having the database system control
//! secondary storage directly, without an intervening operating system. …
//! Disk access will always be by entire tracks, as a track is the natural
//! unit of physical access for a disk."
//!
//! The paper's implementation ran on special-purpose hardware; here the disk
//! is simulated ([`SimDisk`]) with whole-track I/O, read/write accounting,
//! crash injection and torn-write corruption — the quantities the paper's
//! storage claims are about. On top of it:
//!
//! * [`PersistentObject`] — the on-disk object representation: "objects are
//!   broken into elements and associations" with full histories;
//! * the **Boxer** ("whose job it is to fit objects into tracks") — see
//!   [`boxer`];
//! * the **Commit Manager** ("provides safe writing for groups of tracks.
//!   Safe writing guarantees that all the tracks in the group get written,
//!   or none get written") — shadow allocation plus an atomic root flip,
//!   see [`commit`];
//! * the **Track Manager** (scheduling/caching of track reads) — see
//!   [`TrackCache`];
//! * the **GOOP table** and catalog, persisted page-wise;
//! * the **Directory Manager**'s history-aware index structure
//!   ([`Directory`]) — "directories use standard techniques modified to
//!   handle object histories";
//! * [`PermanentStore`] — the facade that plays the Linker: it "incorporates
//!   updates made by a transaction in the permanent database at commit
//!   time".
//!
//! Tracks are never reclaimed: shadow pages simply supersede old ones. This
//! is deliberate and thematic — "database objects in the past never go away
//! … no garbage collection need be done on database objects" (§6).

pub mod boxer;
mod cache;
pub mod commit;
pub mod crashpoint;
mod directory;
mod disk;
mod file_disk;
mod format;
mod pobj;
mod store;

pub use cache::{
    CacheCounters, CacheStats, FillSource, ShardStats, ShardedTrackCache, TrackCache, CACHE_SHARDS,
};
pub use commit::RecoveryReport;
pub use crashpoint::{CrashSchedule, MatrixBackend, MatrixReport, Workload};
pub use directory::{DirKey, Directory, DirectorySpec};
pub use disk::{
    DiskArray, DiskCounters, DiskStats, FaultPlan, IoRecord, ReadFault, SimDisk, TearClass,
    TrackDisk, TrackId, WriteRecord, TRACK_HEADER,
};
pub use file_disk::{FaultFile, FileDisk};
pub use pobj::{ObjectDelta, PersistentObject};
pub use store::OBJ_SHARDS;
pub use store::{CommitPhases, PermanentStore, StoreConfig, StoreCounters, StoreStats};
