//! The Boxer: "whose job it is to fit objects into tracks after database
//! changes" (§6).
//!
//! Every commit batch is packed into one *extent*: the serialized images are
//! concatenated and split across a run of consecutive fresh tracks. Objects
//! committed together therefore share tracks — commit-time clustering, the
//! basis of the "physical access paths parallel logical access" claim
//! measured by experiment C7. An object larger than a track simply spans
//! several (the §4.3 requirement that only secondary storage bounds object
//! size).

use crate::disk::TrackId;
use crate::format::Location;

/// Pack `blobs` into an extent starting at `first_track`, with
/// `track_payload` usable bytes per track. Returns the per-blob locations
/// and the `(track, payload)` writes to hand to the Commit Manager.
pub fn pack(
    blobs: &[Vec<u8>],
    first_track: u32,
    track_payload: usize,
) -> (Vec<Location>, Vec<(TrackId, Vec<u8>)>) {
    assert!(track_payload > 0);
    let total: usize = blobs.iter().map(Vec::len).sum();
    let n_tracks = total.div_ceil(track_payload).max(1) as u32;

    let mut locations = Vec::with_capacity(blobs.len());
    let mut offset = 0usize;
    for blob in blobs {
        locations.push(Location {
            extent_first: TrackId(first_track),
            extent_len: n_tracks,
            offset: offset as u32,
            len: blob.len() as u32,
        });
        offset += blob.len();
    }

    let mut stream = Vec::with_capacity(total);
    for blob in blobs {
        stream.extend_from_slice(blob);
    }
    let mut writes = Vec::with_capacity(n_tracks as usize);
    for (i, chunk) in stream.chunks(track_payload).enumerate() {
        writes.push((TrackId(first_track + i as u32), chunk.to_vec()));
    }
    if writes.is_empty() {
        // An empty batch still materializes one (empty) track so the extent
        // exists and the allocator advances deterministically.
        writes.push((TrackId(first_track), Vec::new()));
    }
    (locations, writes)
}

/// The tracks of an extent that cover a blob at `loc`, with the byte range
/// each contributes: `(track, skip_within_track, take)`.
pub fn covering_tracks(loc: &Location, track_payload: usize) -> Vec<(TrackId, usize, usize)> {
    let mut out = Vec::new();
    let mut remaining = loc.len as usize;
    let mut pos = loc.offset as usize;
    while remaining > 0 {
        let track_index = pos / track_payload;
        debug_assert!((track_index as u32) < loc.extent_len, "blob escapes its extent");
        let within = pos % track_payload;
        let take = remaining.min(track_payload - within);
        out.push((TrackId(loc.extent_first.0 + track_index as u32), within, take));
        pos += take;
        remaining -= take;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_blobs_share_one_track() {
        let blobs = vec![vec![1u8; 10], vec![2u8; 20], vec![3u8; 5]];
        let (locs, writes) = pack(&blobs, 100, 64);
        assert_eq!(writes.len(), 1, "35 bytes fit one 64-byte track");
        assert_eq!(writes[0].0, TrackId(100));
        assert_eq!(locs[0].offset, 0);
        assert_eq!(locs[1].offset, 10);
        assert_eq!(locs[2].offset, 30);
        assert!(locs.iter().all(|l| l.extent_first == TrackId(100) && l.extent_len == 1));
    }

    #[test]
    fn large_blob_spans_tracks() {
        let blobs = vec![vec![7u8; 150]];
        let (locs, writes) = pack(&blobs, 5, 64);
        assert_eq!(writes.len(), 3, "150 bytes need 3×64-byte tracks");
        assert_eq!(locs[0].extent_len, 3);
        let cover = covering_tracks(&locs[0], 64);
        assert_eq!(cover, vec![(TrackId(5), 0, 64), (TrackId(6), 0, 64), (TrackId(7), 0, 22)]);
    }

    #[test]
    fn blob_straddling_a_boundary() {
        let blobs = vec![vec![1u8; 50], vec![2u8; 30]];
        let (locs, _) = pack(&blobs, 0, 64);
        let cover = covering_tracks(&locs[1], 64);
        // Second blob starts at offset 50: 14 bytes on track 0, 16 on track 1.
        assert_eq!(cover, vec![(TrackId(0), 50, 14), (TrackId(1), 0, 16)]);
    }

    #[test]
    fn reassembly_matches_original() {
        let blobs: Vec<Vec<u8>> = (0..5).map(|i| vec![i as u8; 37 * (i + 1)]).collect();
        let payload = 64;
        let (locs, writes) = pack(&blobs, 10, payload);
        // Simulate the disk: track -> data.
        let disk: std::collections::HashMap<TrackId, Vec<u8>> = writes.into_iter().collect();
        for (i, loc) in locs.iter().enumerate() {
            let mut got = Vec::new();
            for (track, skip, take) in covering_tracks(loc, payload) {
                got.extend_from_slice(&disk[&track][skip..skip + take]);
            }
            assert_eq!(got, blobs[i], "blob {i}");
        }
    }

    #[test]
    fn empty_batch_still_makes_an_extent() {
        let (locs, writes) = pack(&[], 3, 64);
        assert!(locs.is_empty());
        assert_eq!(writes.len(), 1);
    }

    #[test]
    fn zero_length_blob_has_empty_cover() {
        let blobs = vec![Vec::new(), vec![1u8; 4]];
        let (locs, _) = pack(&blobs, 0, 64);
        assert!(covering_tracks(&locs[0], 64).is_empty());
        assert_eq!(covering_tracks(&locs[1], 64).len(), 1);
    }
}
