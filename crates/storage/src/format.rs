//! The on-disk serialization format.
//!
//! Everything the store persists — object images ("elements and
//! associations", §6), the GOOP table pages, the catalog, and the root
//! record — round-trips through the functions here. The format is little
//! endian and versioned by a magic word in the root.

use crate::disk::TrackId;
use crate::pobj::PersistentObject;
use bytes::{Buf, BufMut};
use gemstone_object::{ClassId, ElemName, GemError, GemResult, Goop, PRef, SegmentId, SymbolId};
use gemstone_temporal::{History, TxnTime};
use std::collections::BTreeMap;

/// Root magic: identifies a formatted GemStone volume.
pub const ROOT_MAGIC: u32 = 0x4753_1984; // "GS" 1984

/// Where a serialized blob lives: a byte range within an *extent* — the run
/// of consecutive fresh tracks a commit batch was boxed into.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Location {
    pub extent_first: TrackId,
    pub extent_len: u32,
    pub offset: u32,
    pub len: u32,
}

/// The root record, written last in every safe-write group. Two root tracks
/// alternate; the one with the highest valid epoch wins at recovery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Root {
    pub epoch: u64,
    pub commit_time: TxnTime,
    pub next_goop: u64,
    pub next_track: u32,
    pub catalog: Location,
}

/// The catalog: locations of every GOOP-table page and metadata blob
/// (symbol table, class table, globals — serialized by the core crate).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Catalog {
    pub goop_pages: BTreeMap<u32, Location>,
    pub metas: BTreeMap<u8, Location>,
}

/// Number of GOOPs covered by one GOOP-table page.
pub const GOOP_PAGE_SPAN: u64 = 512;

/// A GOOP-table page: goop → object image location.
pub type GoopPage = BTreeMap<u64, Location>;

// ---------------------------------------------------------------- helpers

fn need(buf: &[u8], n: usize) -> GemResult<()> {
    if buf.remaining() < n {
        Err(GemError::Corrupt(format!("truncated record: need {n}, have {}", buf.remaining())))
    } else {
        Ok(())
    }
}

pub fn put_location(buf: &mut Vec<u8>, loc: &Location) {
    buf.put_u32_le(loc.extent_first.0);
    buf.put_u32_le(loc.extent_len);
    buf.put_u32_le(loc.offset);
    buf.put_u32_le(loc.len);
}

pub fn get_location(buf: &mut &[u8]) -> GemResult<Location> {
    need(buf, 16)?;
    Ok(Location {
        extent_first: TrackId(buf.get_u32_le()),
        extent_len: buf.get_u32_le(),
        offset: buf.get_u32_le(),
        len: buf.get_u32_le(),
    })
}

// ------------------------------------------------------------------ root

pub fn put_root(root: &Root) -> Vec<u8> {
    let mut buf = Vec::with_capacity(64);
    buf.put_u32_le(ROOT_MAGIC);
    buf.put_u64_le(root.epoch);
    buf.put_u64_le(root.commit_time.ticks());
    buf.put_u64_le(root.next_goop);
    buf.put_u32_le(root.next_track);
    put_location(&mut buf, &root.catalog);
    buf
}

pub fn get_root(mut buf: &[u8]) -> GemResult<Root> {
    let b = &mut buf;
    need(b, 4)?;
    if b.get_u32_le() != ROOT_MAGIC {
        return Err(GemError::Corrupt("bad root magic".into()));
    }
    need(b, 28)?;
    Ok(Root {
        epoch: b.get_u64_le(),
        commit_time: TxnTime::from_ticks(b.get_u64_le()),
        next_goop: b.get_u64_le(),
        next_track: b.get_u32_le(),
        catalog: get_location(b)?,
    })
}

// --------------------------------------------------------------- catalog

pub fn put_catalog(cat: &Catalog) -> Vec<u8> {
    let mut buf = Vec::new();
    buf.put_u32_le(cat.goop_pages.len() as u32);
    for (page, loc) in &cat.goop_pages {
        buf.put_u32_le(*page);
        put_location(&mut buf, loc);
    }
    buf.put_u32_le(cat.metas.len() as u32);
    for (key, loc) in &cat.metas {
        buf.put_u8(*key);
        put_location(&mut buf, loc);
    }
    buf
}

pub fn get_catalog(mut buf: &[u8]) -> GemResult<Catalog> {
    let b = &mut buf;
    let mut cat = Catalog::default();
    need(b, 4)?;
    let n = b.get_u32_le();
    for _ in 0..n {
        need(b, 4)?;
        let page = b.get_u32_le();
        cat.goop_pages.insert(page, get_location(b)?);
    }
    need(b, 4)?;
    let m = b.get_u32_le();
    for _ in 0..m {
        need(b, 1)?;
        let key = b.get_u8();
        cat.metas.insert(key, get_location(b)?);
    }
    Ok(cat)
}

// -------------------------------------------------------------- goop page

pub fn put_goop_page(page: &GoopPage) -> Vec<u8> {
    let mut buf = Vec::with_capacity(4 + page.len() * 24);
    buf.put_u32_le(page.len() as u32);
    for (goop, loc) in page {
        buf.put_u64_le(*goop);
        put_location(&mut buf, loc);
    }
    buf
}

pub fn get_goop_page(mut buf: &[u8]) -> GemResult<GoopPage> {
    let b = &mut buf;
    need(b, 4)?;
    let n = b.get_u32_le();
    let mut page = GoopPage::new();
    for _ in 0..n {
        need(b, 8)?;
        let goop = b.get_u64_le();
        page.insert(goop, get_location(b)?);
    }
    Ok(page)
}

// ----------------------------------------------------------- element name

const NAME_INT: u8 = 0;
const NAME_SYM: u8 = 1;
const NAME_ALIAS: u8 = 2;

pub fn put_elem_name(buf: &mut Vec<u8>, name: ElemName) {
    match name {
        ElemName::Int(i) => {
            buf.put_u8(NAME_INT);
            buf.put_i64_le(i);
        }
        ElemName::Sym(s) => {
            buf.put_u8(NAME_SYM);
            buf.put_u64_le(s.0 as u64);
        }
        ElemName::Alias(a) => {
            buf.put_u8(NAME_ALIAS);
            buf.put_u64_le(a);
        }
    }
}

pub fn get_elem_name(buf: &mut &[u8]) -> GemResult<ElemName> {
    need(buf, 9)?;
    let tag = buf.get_u8();
    let payload = buf.get_u64_le();
    match tag {
        NAME_INT => Ok(ElemName::Int(payload as i64)),
        NAME_SYM => Ok(ElemName::Sym(SymbolId(payload as u32))),
        NAME_ALIAS => Ok(ElemName::Alias(payload)),
        t => Err(GemError::Corrupt(format!("bad element-name tag {t}"))),
    }
}

// ----------------------------------------------------------------- object

const FLAG_HAS_BYTES: u8 = 1;

/// Serialize a persistent object: header, then per element its name and
/// association table, then the byte-body history.
pub fn put_object(obj: &PersistentObject) -> Vec<u8> {
    let mut buf = Vec::with_capacity(64 + obj.elements.len() * 32);
    buf.put_u64_le(obj.goop.0);
    buf.put_u32_le(obj.class.0);
    buf.put_u16_le(obj.segment.0);
    buf.put_u8(if obj.bytes.is_some() { FLAG_HAS_BYTES } else { 0 });
    buf.put_u64_le(obj.alias_next);
    buf.put_u32_le(obj.elements.len() as u32);
    for (name, hist) in &obj.elements {
        put_elem_name(&mut buf, *name);
        buf.put_u32_le(hist.committed_len() as u32);
        for e in hist.entries().iter().take(hist.committed_len()) {
            buf.put_u64_le(e.time.ticks());
            buf.put_u64_le(e.value.bits());
        }
    }
    if let Some(bh) = &obj.bytes {
        buf.put_u32_le(bh.committed_len() as u32);
        for e in bh.entries().iter().take(bh.committed_len()) {
            buf.put_u64_le(e.time.ticks());
            buf.put_u32_le(e.value.len() as u32);
            buf.put_slice(&e.value);
        }
    }
    buf
}

/// Deserialize an object image.
pub fn get_object(mut buf: &[u8]) -> GemResult<PersistentObject> {
    let b = &mut buf;
    need(b, 8 + 4 + 2 + 1 + 8 + 4)?;
    let goop = Goop(b.get_u64_le());
    let class = ClassId(b.get_u32_le());
    let segment = SegmentId(b.get_u16_le());
    let flags = b.get_u8();
    let alias_next = b.get_u64_le();
    let n_elems = b.get_u32_le();
    let mut obj = PersistentObject::new(goop, class, segment);
    obj.alias_next = alias_next;
    for _ in 0..n_elems {
        let name = get_elem_name(b)?;
        need(b, 4)?;
        let n_assoc = b.get_u32_le();
        let mut hist = History::new();
        for _ in 0..n_assoc {
            need(b, 16)?;
            let time = TxnTime::from_ticks(b.get_u64_le());
            let value = PRef::from_bits(b.get_u64_le());
            hist.write_committed(time, value);
        }
        obj.elements.insert(name, hist);
    }
    if flags & FLAG_HAS_BYTES != 0 {
        need(b, 4)?;
        let n_assoc = b.get_u32_le();
        let mut hist: History<Box<[u8]>> = History::new();
        for _ in 0..n_assoc {
            need(b, 12)?;
            let time = TxnTime::from_ticks(b.get_u64_le());
            let len = b.get_u32_le() as usize;
            need(b, len)?;
            let mut data = vec![0u8; len];
            b.copy_to_slice(&mut data);
            hist.write_committed(time, data.into_boxed_slice());
        }
        obj.bytes = Some(hist);
    }
    Ok(obj)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pobj::ObjectDelta;

    fn t(n: u64) -> TxnTime {
        TxnTime::from_ticks(n)
    }

    fn loc(a: u32, b: u32, c: u32, d: u32) -> Location {
        Location { extent_first: TrackId(a), extent_len: b, offset: c, len: d }
    }

    #[test]
    fn root_roundtrip() {
        let root = Root {
            epoch: 42,
            commit_time: t(99),
            next_goop: 1000,
            next_track: 77,
            catalog: loc(3, 2, 100, 500),
        };
        assert_eq!(get_root(&put_root(&root)).unwrap(), root);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = put_root(&Root {
            epoch: 1,
            commit_time: t(1),
            next_goop: 1,
            next_track: 1,
            catalog: loc(0, 0, 0, 0),
        });
        bytes[0] ^= 0xFF;
        assert!(matches!(get_root(&bytes), Err(GemError::Corrupt(_))));
    }

    #[test]
    fn catalog_roundtrip() {
        let mut cat = Catalog::default();
        cat.goop_pages.insert(0, loc(5, 1, 0, 100));
        cat.goop_pages.insert(3, loc(9, 2, 50, 200));
        cat.metas.insert(1, loc(11, 1, 0, 64));
        assert_eq!(get_catalog(&put_catalog(&cat)).unwrap(), cat);
        assert_eq!(get_catalog(&put_catalog(&Catalog::default())).unwrap(), Catalog::default());
    }

    #[test]
    fn goop_page_roundtrip() {
        let mut page = GoopPage::new();
        page.insert(7, loc(1, 1, 0, 10));
        page.insert(519, loc(2, 1, 10, 20));
        assert_eq!(get_goop_page(&put_goop_page(&page)).unwrap(), page);
    }

    #[test]
    fn elem_names_roundtrip() {
        for name in [
            ElemName::Int(-5),
            ElemName::Int(i64::MAX),
            ElemName::Sym(SymbolId(12)),
            ElemName::Alias(u64::MAX / 2),
        ] {
            let mut buf = Vec::new();
            put_elem_name(&mut buf, name);
            assert_eq!(get_elem_name(&mut &buf[..]).unwrap(), name);
        }
    }

    #[test]
    fn object_roundtrip_with_histories() {
        let mut obj = PersistentObject::new(Goop(9), ClassId(3), SegmentId(2));
        obj.apply_delta(
            &ObjectDelta {
                goop: Goop(9),
                class: ClassId(3),
                segment: SegmentId(2),
                alias_next: 4,
                elem_writes: vec![
                    (ElemName::Sym(SymbolId(1)), PRef::int(24_650)),
                    (ElemName::Alias(0), PRef::goop(Goop(55))),
                ],
                bytes_write: None,
                is_new: true,
            },
            t(2),
        );
        obj.apply_delta(
            &ObjectDelta {
                goop: Goop(9),
                class: ClassId(3),
                segment: SegmentId(2),
                alias_next: 4,
                elem_writes: vec![(ElemName::Sym(SymbolId(1)), PRef::int(30_000))],
                bytes_write: None,
                is_new: false,
            },
            t(8),
        );
        let back = get_object(&put_object(&obj)).unwrap();
        assert_eq!(back, obj);
        assert_eq!(back.elem_at(ElemName::Sym(SymbolId(1)), t(5)), Some(PRef::int(24_650)));
    }

    #[test]
    fn byte_object_roundtrip() {
        let mut obj = PersistentObject::new(Goop(2), ClassId(11), SegmentId(0));
        let mut hist: History<Box<[u8]>> = History::new();
        hist.write_committed(t(3), b"Seattle".to_vec().into_boxed_slice());
        hist.write_committed(t(8), b"Portland".to_vec().into_boxed_slice());
        obj.bytes = Some(hist);
        let back = get_object(&put_object(&obj)).unwrap();
        assert_eq!(back, obj);
        assert_eq!(back.bytes_at(t(4)), Some(&b"Seattle"[..]));
    }

    #[test]
    fn pending_writes_are_not_persisted() {
        let mut obj = PersistentObject::new(Goop(2), ClassId(1), SegmentId(0));
        let mut hist = History::with_initial(t(1), PRef::int(1));
        hist.write_pending(PRef::int(99));
        obj.elements.insert(ElemName::Int(0), hist);
        let back = get_object(&put_object(&obj)).unwrap();
        assert_eq!(back.elem_current(ElemName::Int(0)), Some(PRef::int(1)));
    }

    #[test]
    fn truncated_object_is_detected() {
        let mut obj = PersistentObject::new(Goop(9), ClassId(3), SegmentId(2));
        obj.elements.insert(ElemName::Int(1), History::with_initial(t(1), PRef::int(5)));
        let bytes = put_object(&obj);
        for cut in [0, 10, bytes.len() - 1] {
            assert!(get_object(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn arbitrary_bytes_never_panic_the_readers() {
        // Corrupt tracks must surface as GemError::Corrupt, not panics or
        // giant allocations.
        let mut rng_state = 0x12345678u64;
        let mut next = move || {
            rng_state = rng_state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (rng_state >> 33) as u8
        };
        for len in [0usize, 1, 8, 33, 257] {
            for _ in 0..50 {
                let junk: Vec<u8> = (0..len).map(|_| next()).collect();
                let _ = get_object(&junk);
                let _ = get_root(&junk);
                let _ = get_catalog(&junk);
                let _ = get_goop_page(&junk);
            }
        }
    }

    #[test]
    fn large_object_roundtrip() {
        // §4.3: objects beyond ST80's 64KB cap.
        let mut obj = PersistentObject::new(Goop(3), ClassId(11), SegmentId(0));
        let big = vec![0x5Au8; 300_000];
        let mut hist: History<Box<[u8]>> = History::new();
        hist.write_committed(t(1), big.clone().into_boxed_slice());
        obj.bytes = Some(hist);
        let img = put_object(&obj);
        assert!(img.len() > 300_000);
        let back = get_object(&img).unwrap();
        assert_eq!(back.bytes_current().unwrap(), &big[..]);
    }
}
