//! The Directory Manager's index structure.
//!
//! §6: "The Directory Manager creates and maintains directories. Directories
//! use standard techniques modified to handle object histories. … Another
//! problem is using a nested element as a discriminator. Since that element
//! may be different in different states of the database, its object may need
//! to appear along two branches of the directory."
//!
//! A [`Directory`] maps key values to entries carrying **validity
//! intervals** `[from, to)`. When an indexed object's discriminator changes
//! at time `t`, its entry under the old key closes at `t` and a new entry
//! opens under the new key — the object then genuinely appears "along two
//! branches", each valid in disjoint states. Lookups can be current or
//! as-of any past time.

use gemstone_object::{ClassId, ElemName, Goop};
use gemstone_temporal::TxnTime;
use std::collections::{BTreeMap, HashMap};
use std::ops::Bound;

/// An orderable, hashable index key.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DirKey {
    /// Numbers under a total-order transform of their f64 bits.
    Num(u64),
    /// Strings/symbols by content.
    Text(Vec<u8>),
    /// References, by identity.
    Ref(u64),
}

impl DirKey {
    /// Key for a number (the transform makes u64 ordering match f64
    /// ordering, including negatives).
    pub fn num(x: f64) -> DirKey {
        let bits = x.to_bits();
        DirKey::Num(if bits >> 63 == 1 { !bits } else { bits | (1 << 63) })
    }

    /// Key for text.
    pub fn text(s: &str) -> DirKey {
        DirKey::Text(s.as_bytes().to_vec())
    }
}

/// What a directory indexes: instances of a class, discriminated by an
/// element (possibly nested — the *path* of elements to follow).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirectorySpec {
    pub class: ClassId,
    /// The discriminator path: usually one element; nested discriminators
    /// list the elements to traverse (§6's "nested element" case).
    pub path: Vec<ElemName>,
}

/// One directory entry: `goop` had this key from `from` until `to`
/// (`TxnTime::PENDING` = still current).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DirEntry {
    pub goop: Goop,
    pub from: TxnTime,
    pub to: TxnTime,
}

impl DirEntry {
    fn valid_at(&self, t: TxnTime) -> bool {
        self.from <= t && t < self.to
    }

    fn is_open(&self) -> bool {
        self.to == TxnTime::PENDING
    }
}

/// A history-aware secondary index.
#[derive(Debug, Clone)]
pub struct Directory {
    spec: DirectorySpec,
    tree: BTreeMap<DirKey, Vec<DirEntry>>,
    current_key: HashMap<Goop, DirKey>,
}

impl Directory {
    /// An empty directory for `spec`.
    pub fn new(spec: DirectorySpec) -> Directory {
        Directory { spec, tree: BTreeMap::new(), current_key: HashMap::new() }
    }

    /// The spec this directory serves.
    pub fn spec(&self) -> &DirectorySpec {
        &self.spec
    }

    /// Record that `goop`'s discriminator became `new_key` at time `t`
    /// (`None` = the object left the index: element went nil). Idempotent
    /// for unchanged keys.
    pub fn update(&mut self, goop: Goop, new_key: Option<DirKey>, t: TxnTime) {
        if self.current_key.get(&goop) == new_key.as_ref() {
            return;
        }
        if let Some(old) = self.current_key.remove(&goop) {
            if let Some(entries) = self.tree.get_mut(&old) {
                for e in entries.iter_mut() {
                    if e.goop == goop && e.is_open() {
                        e.to = t;
                    }
                }
            }
        }
        if let Some(key) = new_key {
            self.tree.entry(key.clone()).or_default().push(DirEntry {
                goop,
                from: t,
                to: TxnTime::PENDING,
            });
            self.current_key.insert(goop, key);
        }
    }

    /// Objects whose discriminator currently equals `key`.
    pub fn lookup_current(&self, key: &DirKey) -> Vec<Goop> {
        self.tree
            .get(key)
            .map(|es| es.iter().filter(|e| e.is_open()).map(|e| e.goop).collect())
            .unwrap_or_default()
    }

    /// Objects whose discriminator equalled `key` in the state at `t`.
    pub fn lookup_as_of(&self, key: &DirKey, t: TxnTime) -> Vec<Goop> {
        self.tree
            .get(key)
            .map(|es| es.iter().filter(|e| e.valid_at(t)).map(|e| e.goop).collect())
            .unwrap_or_default()
    }

    /// Range scan over current entries: keys in `[lo, hi)`.
    pub fn range_current(&self, lo: Bound<&DirKey>, hi: Bound<&DirKey>) -> Vec<Goop> {
        self.tree
            .range((lo, hi))
            .flat_map(|(_, es)| es.iter().filter(|e| e.is_open()).map(|e| e.goop))
            .collect()
    }

    /// Range scan in the state at `t`.
    pub fn range_as_of(&self, lo: Bound<&DirKey>, hi: Bound<&DirKey>, t: TxnTime) -> Vec<Goop> {
        self.tree
            .range((lo, hi))
            .flat_map(|(_, es)| es.iter().filter(move |e| e.valid_at(t)).map(|e| e.goop))
            .collect()
    }

    /// Number of distinct keys.
    pub fn key_count(&self) -> usize {
        self.tree.len()
    }

    /// Number of entries (including closed historical ones).
    pub fn entry_count(&self) -> usize {
        self.tree.values().map(Vec::len).sum()
    }

    /// The current numeric-key multiset: every [`DirKey::Num`] key, once per
    /// open entry — the raw material for the planner's key-distribution
    /// sketches. Non-numeric keys are skipped (sketches summarize numeric
    /// distributions only).
    pub fn current_num_keys(&self) -> Vec<f64> {
        let mut out = Vec::new();
        for (key, entries) in &self.tree {
            if let DirKey::Num(stored) = key {
                // Invert DirKey::num's total-order transform.
                let bits = if stored >> 63 == 1 { stored & !(1u64 << 63) } else { !stored };
                let x = f64::from_bits(bits);
                for e in entries {
                    if e.is_open() {
                        out.push(x);
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(n: u64) -> TxnTime {
        TxnTime::from_ticks(n)
    }

    fn dir() -> Directory {
        Directory::new(DirectorySpec {
            class: ClassId(7),
            path: vec![ElemName::Sym(gemstone_object::SymbolId(1))],
        })
    }

    #[test]
    fn num_key_ordering_matches_f64() {
        let xs = [-1e9, -2.5, -0.0, 0.0, 1.0, 2.5, 1e9];
        for w in xs.windows(2) {
            assert!(DirKey::num(w[0]) <= DirKey::num(w[1]), "{} vs {}", w[0], w[1]);
        }
        assert_eq!(DirKey::num(0.0), DirKey::num(0.0));
    }

    #[test]
    fn current_lookup() {
        let mut d = dir();
        d.update(Goop(1), Some(DirKey::text("Sales")), t(1));
        d.update(Goop(2), Some(DirKey::text("Sales")), t(2));
        d.update(Goop(3), Some(DirKey::text("Research")), t(2));
        let mut sales = d.lookup_current(&DirKey::text("Sales"));
        sales.sort();
        assert_eq!(sales, vec![Goop(1), Goop(2)]);
        assert!(d.lookup_current(&DirKey::text("Planning")).is_empty());
    }

    #[test]
    fn key_change_appears_on_two_branches() {
        let mut d = dir();
        d.update(Goop(1), Some(DirKey::text("Seattle")), t(3));
        d.update(Goop(1), Some(DirKey::text("Portland")), t(8));
        // Current: Portland only.
        assert_eq!(d.lookup_current(&DirKey::text("Portland")), vec![Goop(1)]);
        assert!(d.lookup_current(&DirKey::text("Seattle")).is_empty());
        // As of t5: Seattle.
        assert_eq!(d.lookup_as_of(&DirKey::text("Seattle"), t(5)), vec![Goop(1)]);
        assert!(d.lookup_as_of(&DirKey::text("Portland"), t(5)).is_empty());
        // Boundary semantics: the change is visible *at* its commit time.
        assert_eq!(d.lookup_as_of(&DirKey::text("Portland"), t(8)), vec![Goop(1)]);
        assert!(d.lookup_as_of(&DirKey::text("Seattle"), t(8)).is_empty());
        // Both branches exist physically.
        assert_eq!(d.key_count(), 2);
        assert_eq!(d.entry_count(), 2);
    }

    #[test]
    fn leaving_the_index() {
        let mut d = dir();
        d.update(Goop(1), Some(DirKey::num(24_000.0)), t(2));
        d.update(Goop(1), None, t(8)); // element went nil
        assert!(d.lookup_current(&DirKey::num(24_000.0)).is_empty());
        assert_eq!(d.lookup_as_of(&DirKey::num(24_000.0), t(7)), vec![Goop(1)]);
    }

    #[test]
    fn unchanged_key_is_idempotent() {
        let mut d = dir();
        d.update(Goop(1), Some(DirKey::num(5.0)), t(1));
        d.update(Goop(1), Some(DirKey::num(5.0)), t(9));
        assert_eq!(d.entry_count(), 1, "no churn on unchanged keys");
        assert_eq!(d.lookup_as_of(&DirKey::num(5.0), t(4)), vec![Goop(1)]);
    }

    #[test]
    fn current_num_keys_inverts_the_transform() {
        let mut d = dir();
        d.update(Goop(1), Some(DirKey::num(-2.5)), t(1));
        d.update(Goop(2), Some(DirKey::num(0.0)), t(1));
        d.update(Goop(3), Some(DirKey::num(7.0)), t(1));
        d.update(Goop(4), Some(DirKey::num(7.0)), t(1));
        d.update(Goop(5), Some(DirKey::text("not a number")), t(1));
        d.update(Goop(3), None, t(5)); // closed entries don't count
        let keys = d.current_num_keys();
        assert_eq!(keys, vec![-2.5, 0.0, 7.0], "sorted, open, numeric only");
    }

    #[test]
    fn range_scans_current_and_past() {
        let mut d = dir();
        d.update(Goop(1), Some(DirKey::num(10.0)), t(1));
        d.update(Goop(2), Some(DirKey::num(20.0)), t(1));
        d.update(Goop(3), Some(DirKey::num(30.0)), t(1));
        d.update(Goop(2), Some(DirKey::num(35.0)), t(5));
        let lo = DirKey::num(15.0);
        let hi = DirKey::num(32.0);
        let mut cur = d.range_current(Bound::Included(&lo), Bound::Excluded(&hi));
        cur.sort();
        assert_eq!(cur, vec![Goop(3)], "g2 moved out of range at t5");
        let mut past = d.range_as_of(Bound::Included(&lo), Bound::Excluded(&hi), t(3));
        past.sort();
        assert_eq!(past, vec![Goop(2), Goop(3)]);
    }
}
