//! The Commit Manager: checksummed tracks and atomic group writes.
//!
//! §6: "The Commit Manager provides safe writing for groups of tracks. Safe
//! writing guarantees that all the tracks in the group get written, or none
//! get written, and that the tracks in the group replace their old versions
//! atomically."
//!
//! The mechanism is shadow writing: every group is written to *fresh*
//! tracks (the allocator is monotonic, so live tracks are never touched),
//! and the group becomes visible only when a new root record — carrying an
//! incremented epoch and a checksum — lands on one of the two alternating
//! root tracks. A crash anywhere before the root write leaves the old root
//! (and therefore the old state) intact; a crash *during* the root write
//! tears the new root, whose checksum then fails, and recovery falls back
//! to the other root. Either way the commit is all-or-nothing.

use crate::disk::{DiskArray, TrackId, TRACK_HEADER};
use crate::format::{self, Root};
use gemstone_object::{GemError, GemResult};

/// The two alternating root tracks.
pub const ROOT_TRACKS: [TrackId; 2] = [TrackId(0), TrackId(1)];

/// First track available to data (after the roots).
pub const FIRST_DATA_TRACK: u32 = 2;

/// FNV-1a 64-bit, the track checksum.
pub fn checksum(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Write `payload` to `id` with a checksum header. The payload must fit in
/// `track_size - TRACK_HEADER` bytes.
pub fn write_checked(disk: &mut DiskArray, id: TrackId, payload: &[u8]) -> GemResult<()> {
    let cap = disk.track_size() - TRACK_HEADER;
    if payload.len() > cap {
        return Err(GemError::DiskFailure(format!(
            "payload {} exceeds track capacity {cap}",
            payload.len()
        )));
    }
    let mut framed = Vec::with_capacity(TRACK_HEADER + payload.len());
    framed.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    framed.extend_from_slice(&checksum(payload).to_le_bytes());
    framed.extend_from_slice(payload);
    disk.write_track(id, &framed)
}

/// Read a track and verify its checksum, returning the payload with the
/// zero padding stripped (the header records the true payload length).
pub fn read_checked(disk: &mut DiskArray, id: TrackId) -> GemResult<Vec<u8>> {
    let raw = disk.read_track(id)?;
    if raw.len() < TRACK_HEADER {
        return Err(GemError::Corrupt(format!("track {id:?} shorter than header")));
    }
    let len = u32::from_le_bytes(raw[..4].try_into().unwrap()) as usize;
    let stored = u64::from_le_bytes(raw[4..12].try_into().unwrap());
    if TRACK_HEADER + len > raw.len() {
        return Err(GemError::Corrupt(format!("track {id:?} claims impossible length {len}")));
    }
    let payload = &raw[TRACK_HEADER..TRACK_HEADER + len];
    if checksum(payload) != stored {
        return Err(GemError::Corrupt(format!("checksum mismatch on track {id:?}")));
    }
    Ok(payload.to_vec())
}

/// How many durability barriers one committed safe-write group costs: the
/// data barrier plus the ack barrier. Group commit — the count is per
/// *group*, never per track.
pub const FSYNCS_PER_GROUP: u64 = 2;

/// Commit a group: write every data track, then flip the root. Returns the
/// root track used. Data tracks MUST be fresh (shadow) tracks; the caller's
/// allocator guarantees that.
///
/// Durability is batched (group commit): one barrier after the data tracks
/// — the root must never be visible before the data it points at — and one
/// after the root write, so the commit is on the platter before the caller
/// acknowledges it. [`FSYNCS_PER_GROUP`] barriers per group, regardless of
/// group size. Barriers never consume a fault plan's write budget, so a
/// crash schedule's write index means the same thing on every backend.
pub fn safe_write_group(
    disk: &mut DiskArray,
    data: &[(TrackId, Vec<u8>)],
    root: &Root,
) -> GemResult<TrackId> {
    for (id, payload) in data {
        debug_assert!(id.0 >= FIRST_DATA_TRACK, "data must not touch root tracks");
        write_checked(disk, *id, payload)?;
    }
    disk.sync()?;
    let root_track = ROOT_TRACKS[(root.epoch % 2) as usize];
    write_checked(disk, root_track, &format::put_root(root))?;
    disk.sync()?;
    Ok(root_track)
}

/// What recovery saw and decided: which root slots were probed, how many
/// were valid or torn, the epoch that won, and — once
/// [`PermanentStore::open`](crate::PermanentStore::open) finishes — how many
/// tracks were salvaged (read and checksum-verified) versus discarded
/// (orphan shadow tracks of a torn commit), and how many physical reads the
/// reopening cost. Surfaced through `Db`/`Session` so recovery behaviour is
/// observable and assertable.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Root slots probed (always the two alternating root tracks).
    pub roots_considered: u32,
    /// Root slots holding a valid checksummed root record.
    pub roots_valid: u32,
    /// Root slots holding data that failed the checksum or magic (torn).
    pub roots_torn: u32,
    /// The epoch of the root that won.
    pub recovered_epoch: u64,
    /// Tracks read and checksum-verified while loading catalog + GOOP table.
    pub tracks_salvaged: u32,
    /// Orphan tracks past the recovered root's allocation frontier —
    /// shadow writes of a commit that never became visible.
    pub tracks_discarded: u32,
    /// Physical track reads performed by the reopening.
    pub reopen_reads: u64,
}

/// Recovery: read both root tracks, keep the valid one with the highest
/// epoch. A database must have at least one valid root (written at format
/// time), otherwise the volume is corrupt.
///
/// Error discipline matters here. A root slot that was **never written**
/// (track absent) or that holds a **torn** record (checksum/magic failure)
/// is skipped — that is exactly the crash the alternating-root scheme
/// defends against. But a slot that exists and fails to **read** (transient
/// I/O error, dead disk) aborts recovery with the error: falling back to
/// the other root there would silently resurrect an older epoch and
/// un-commit acknowledged transactions. The caller retries once the device
/// recovers — recovery itself is read-only, hence re-crashable.
pub fn recover_root(disk: &mut DiskArray) -> GemResult<Root> {
    recover_root_report(disk).map(|(root, _)| root)
}

/// [`recover_root`], also returning the partially-filled [`RecoveryReport`]
/// (root-slot accounting; the store fills the track/read counters).
pub fn recover_root_report(disk: &mut DiskArray) -> GemResult<(Root, RecoveryReport)> {
    let mut best: Option<Root> = None;
    let mut report = RecoveryReport::default();
    for id in ROOT_TRACKS {
        report.roots_considered += 1;
        if !disk.track_exists(id) {
            continue; // slot never written (young volume) — not a tear
        }
        match read_checked(disk, id) {
            Ok(payload) => match format::get_root(&payload) {
                Ok(root) => {
                    report.roots_valid += 1;
                    if best.is_none_or(|b| root.epoch > b.epoch) {
                        best = Some(root);
                    }
                }
                Err(_) => report.roots_torn += 1,
            },
            // Checksum/framing failure: the root write tore. Skip the slot.
            Err(GemError::Corrupt(_)) => report.roots_torn += 1,
            // I/O failure: cannot tell which root is newest. Abort, retry.
            Err(e) => return Err(e),
        }
    }
    match best {
        Some(root) => {
            report.recovered_epoch = root.epoch;
            Ok((root, report))
        }
        None => Err(GemError::Corrupt("no valid root record".into())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::Location;
    use gemstone_temporal::TxnTime;

    fn root(epoch: u64) -> Root {
        Root {
            epoch,
            commit_time: TxnTime::from_ticks(epoch),
            next_goop: 1,
            next_track: FIRST_DATA_TRACK + epoch as u32 * 4,
            catalog: Location {
                extent_first: TrackId(FIRST_DATA_TRACK),
                extent_len: 1,
                offset: 0,
                len: 0,
            },
        }
    }

    #[test]
    fn checked_roundtrip_and_corruption_detection() {
        let mut d = DiskArray::new(256, 1);
        write_checked(&mut d, TrackId(5), b"payload").unwrap();
        assert_eq!(read_checked(&mut d, TrackId(5)).unwrap()[..7], b"payload"[..]);
        // Corrupt a byte by rewriting raw.
        let mut raw = d.replica_mut(0).read_track(TrackId(5)).unwrap().to_vec();
        raw[TRACK_HEADER + 2] ^= 0x01;
        d.replica_mut(0).write_track(TrackId(5), &raw).unwrap();
        assert!(matches!(read_checked(&mut d, TrackId(5)), Err(GemError::Corrupt(_))));
    }

    #[test]
    fn roots_alternate_and_latest_wins() {
        let mut d = DiskArray::new(256, 1);
        let t1 = safe_write_group(&mut d, &[], &root(1)).unwrap();
        let t2 = safe_write_group(&mut d, &[], &root(2)).unwrap();
        assert_ne!(t1, t2, "alternating root slots");
        assert_eq!(recover_root(&mut d).unwrap().epoch, 2);
        safe_write_group(&mut d, &[], &root(3)).unwrap();
        assert_eq!(recover_root(&mut d).unwrap().epoch, 3);
    }

    #[test]
    fn crash_before_root_preserves_old_state() {
        let mut d = DiskArray::new(256, 1);
        safe_write_group(&mut d, &[(TrackId(2), b"v1".to_vec())], &root(1)).unwrap();
        // Crash after 1 data write of the next group — root never lands.
        d.replica_mut(0).fail_after_writes(1);
        let data = vec![(TrackId(3), b"v2a".to_vec()), (TrackId(4), b"v2b".to_vec())];
        assert!(safe_write_group(&mut d, &data, &root(2)).is_err());
        d.replica_mut(0).revive();
        let r = recover_root(&mut d).unwrap();
        assert_eq!(r.epoch, 1, "old root still rules");
    }

    #[test]
    fn crash_during_root_write_falls_back() {
        let mut d = DiskArray::new(256, 1);
        safe_write_group(&mut d, &[], &root(1)).unwrap();
        // Next group: 1 data write succeeds, the root write tears.
        d.replica_mut(0).fail_after_writes(1);
        assert!(safe_write_group(&mut d, &[(TrackId(2), b"x".to_vec())], &root(2)).is_err());
        d.replica_mut(0).revive();
        let r = recover_root(&mut d).unwrap();
        assert_eq!(r.epoch, 1, "torn root fails checksum; epoch 1 survives");
    }

    #[test]
    fn empty_disk_has_no_root() {
        let mut d = DiskArray::new(256, 1);
        assert!(recover_root(&mut d).is_err());
    }

    #[test]
    fn recovery_report_counts_roots() {
        let mut d = DiskArray::new(256, 1);
        safe_write_group(&mut d, &[], &root(1)).unwrap();
        let (r, report) = recover_root_report(&mut d).unwrap();
        assert_eq!(r.epoch, 1);
        assert_eq!(report.roots_considered, 2);
        assert_eq!(report.roots_valid, 1, "slot 0 never written at epoch 1");
        assert_eq!(report.roots_torn, 0);
        assert_eq!(report.recovered_epoch, 1);

        // Tear the next root mid-write: one valid root + one torn root.
        d.replica_mut(0).set_fault_plan(crate::disk::FaultPlan {
            crash_after_writes: Some(0),
            tear: crate::disk::TearClass::Half,
            ..Default::default()
        });
        assert!(safe_write_group(&mut d, &[], &root(2)).is_err());
        d.replica_mut(0).revive();
        let (r, report) = recover_root_report(&mut d).unwrap();
        assert_eq!(r.epoch, 1, "torn epoch-2 root loses");
        assert_eq!((report.roots_valid, report.roots_torn), (1, 1));
    }

    #[test]
    fn transient_read_error_aborts_recovery_instead_of_losing_commits() {
        // Both roots valid (epochs 2 and 3). A transient read error on the
        // newest root's track must NOT silently fall back to epoch 2 — that
        // would un-commit an acknowledged transaction. Recovery aborts with
        // the error and succeeds on retry.
        let mut d = DiskArray::new(256, 1);
        safe_write_group(&mut d, &[], &root(2)).unwrap();
        safe_write_group(&mut d, &[], &root(3)).unwrap();
        d.replica_mut(0).set_fault_plan(crate::disk::FaultPlan {
            read_fault: Some(crate::disk::ReadFault { after_reads: 1, count: 1 }),
            ..Default::default()
        });
        assert!(recover_root(&mut d).is_err(), "I/O error must abort recovery");
        assert_eq!(recover_root(&mut d).unwrap().epoch, 3, "retry sees the newest root");
    }

    #[test]
    fn payload_capacity_respects_header() {
        let mut d = DiskArray::new(64, 1);
        assert!(write_checked(&mut d, TrackId(2), &[0u8; 52]).is_ok());
        assert!(write_checked(&mut d, TrackId(2), &[0u8; 53]).is_err());
    }

    /// The fsync-ordering contract, checked against the physical I/O trace:
    /// the root-page write must never be issued before the barrier covering
    /// its data tracks, and the ack barrier must be the last operation —
    /// which makes a torn write *after* acknowledgement impossible by
    /// construction (there is nothing left to write once the caller hears
    /// "committed").
    fn assert_group_commit_ordering(mut d: DiskArray) {
        use crate::disk::{FaultPlan, IoRecord};
        d.replica_mut(0).set_fault_plan(FaultPlan::trace());
        let data = vec![(TrackId(2), b"a".to_vec()), (TrackId(3), b"b".to_vec())];
        let root_track = safe_write_group(&mut d, &data, &root(1)).unwrap();
        let trace = d.replica_mut(0).take_io_trace();

        let is_root =
            |r: &IoRecord| matches!(r, IoRecord::Write { track, .. } if *track == root_track);
        let first_sync = trace.iter().position(|r| *r == IoRecord::Sync).expect("a data barrier");
        let root_write = trace.iter().position(is_root).expect("a root write");
        assert!(first_sync < root_write, "root write before the data barrier: {trace:?}");
        assert!(
            trace[..first_sync]
                .iter()
                .all(|r| matches!(r, IoRecord::Write { track, .. } if track.0 >= FIRST_DATA_TRACK)),
            "everything before the data barrier is a data-track write: {trace:?}"
        );
        assert_eq!(trace.last(), Some(&IoRecord::Sync), "ack barrier is the final operation");
        let syncs = trace.iter().filter(|r| **r == IoRecord::Sync).count() as u64;
        assert_eq!(syncs, FSYNCS_PER_GROUP, "group commit: 2 barriers for a 3-track group");
    }

    #[test]
    fn group_commit_fsync_ordering_sim() {
        assert_group_commit_ordering(DiskArray::new(256, 1));
    }

    #[test]
    fn group_commit_fsync_ordering_file() {
        let dir =
            std::env::temp_dir().join(format!("gemstone-commit-fsync-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mut f = crate::file_disk::FaultFile::create(dir.join("db.gem"), 256).unwrap();
        f.set_ephemeral(true);
        assert_group_commit_ordering(DiskArray::from_backend(Box::new(f)));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
