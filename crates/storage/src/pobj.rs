//! The permanent representation of an object.
//!
//! §6: "Since GemStone objects retain history, they grow with time, and a
//! fixed block of memory is not a feasible representation. In the GemStone
//! Object Manager, the implementation of objects is based upon associations.
//! An element is represented as an element name and a table of associations."

use gemstone_object::{ClassId, ElemName, Goop, PRef, SegmentId};
use gemstone_temporal::{History, TxnTime};
use std::collections::BTreeMap;

/// A committed object with full element histories.
#[derive(Debug, Clone, PartialEq)]
pub struct PersistentObject {
    pub goop: Goop,
    pub class: ClassId,
    pub segment: SegmentId,
    /// Alias counter, persisted so aliases remain unique forever.
    pub alias_next: u64,
    /// Element name → association table.
    pub elements: BTreeMap<ElemName, History<PRef>>,
    /// Byte bodies carry whole-value histories (strings are small; large
    /// byte objects are re-versioned per commit, measured by bench C9).
    pub bytes: Option<History<Box<[u8]>>>,
}

impl PersistentObject {
    /// A new, empty persistent object.
    pub fn new(goop: Goop, class: ClassId, segment: SegmentId) -> PersistentObject {
        PersistentObject {
            goop,
            class,
            segment,
            alias_next: 0,
            elements: BTreeMap::new(),
            bytes: None,
        }
    }

    /// Current value of an element (nil-tombstones filtered).
    pub fn elem_current(&self, name: ElemName) -> Option<PRef> {
        self.elements.get(&name).and_then(|h| h.current()).copied().filter(|v| !v.is_nil())
    }

    /// Element value in the state at `t`.
    pub fn elem_at(&self, name: ElemName, t: TxnTime) -> Option<PRef> {
        self.elements.get(&name).and_then(|h| h.as_of(t)).copied().filter(|v| !v.is_nil())
    }

    /// All elements present in the current state.
    pub fn current_elements(&self) -> impl Iterator<Item = (ElemName, PRef)> + '_ {
        self.elements
            .iter()
            .filter_map(|(n, h)| h.current().copied().filter(|v| !v.is_nil()).map(|v| (*n, v)))
    }

    /// All elements present in the state at `t`.
    pub fn elements_at(&self, t: TxnTime) -> impl Iterator<Item = (ElemName, PRef)> + '_ {
        self.elements
            .iter()
            .filter_map(move |(n, h)| h.as_of(t).copied().filter(|v| !v.is_nil()).map(|v| (*n, v)))
    }

    /// Current byte body.
    pub fn bytes_current(&self) -> Option<&[u8]> {
        self.bytes.as_ref().and_then(|h| h.current()).map(|b| &**b)
    }

    /// Byte body at `t`.
    pub fn bytes_at(&self, t: TxnTime) -> Option<&[u8]> {
        self.bytes.as_ref().and_then(|h| h.as_of(t)).map(|b| &**b)
    }

    /// Apply a validated transaction's writes at commit time `time` — the
    /// Linker's job ("incorporates updates made by a transaction in the
    /// permanent database at commit time").
    pub fn apply_delta(&mut self, delta: &ObjectDelta, time: TxnTime) {
        debug_assert_eq!(delta.goop, self.goop);
        self.alias_next = self.alias_next.max(delta.alias_next);
        self.segment = delta.segment;
        for (name, value) in &delta.elem_writes {
            self.elements.entry(*name).or_default().write_committed(time, *value);
        }
        if let Some(b) = &delta.bytes_write {
            self.bytes
                .get_or_insert_with(History::new)
                .write_committed(time, b.clone().into_boxed_slice());
        }
    }

    /// Total committed associations across all elements (history growth,
    /// bench C9).
    pub fn association_count(&self) -> usize {
        self.elements.values().map(|h| h.committed_len()).sum::<usize>()
            + self.bytes.as_ref().map_or(0, |h| h.committed_len())
    }

    /// Every transaction time at which this object changed, ascending and
    /// deduplicated. The crash matrix walks these to spot-check temporal `@`
    /// reads against recovered history.
    pub fn commit_times(&self) -> Vec<TxnTime> {
        let mut times: Vec<TxnTime> = self
            .elements
            .values()
            .flat_map(|h| h.entries().iter().map(|e| e.time))
            .chain(self.bytes.iter().flat_map(|h| h.entries().iter().map(|e| e.time)))
            .filter(|t| !t.is_pending())
            .collect();
        times.sort();
        times.dedup();
        times
    }
}

/// One object's writes from a committing transaction.
#[derive(Debug, Clone, PartialEq)]
pub struct ObjectDelta {
    pub goop: Goop,
    pub class: ClassId,
    pub segment: SegmentId,
    pub alias_next: u64,
    /// Element writes, nil meaning removal-with-history.
    pub elem_writes: Vec<(ElemName, PRef)>,
    /// Whole-value byte body write, if any.
    pub bytes_write: Option<Vec<u8>>,
    /// True if this commit creates the object.
    pub is_new: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(n: u64) -> TxnTime {
        TxnTime::from_ticks(n)
    }

    fn sample() -> PersistentObject {
        PersistentObject::new(Goop(1), ClassId(5), SegmentId(0))
    }

    #[test]
    fn apply_delta_builds_history() {
        let mut o = sample();
        let name = ElemName::Int(1821);
        o.apply_delta(
            &ObjectDelta {
                goop: Goop(1),
                class: ClassId(5),
                segment: SegmentId(0),
                alias_next: 0,
                elem_writes: vec![(name, PRef::int(10))],
                bytes_write: None,
                is_new: true,
            },
            t(2),
        );
        o.apply_delta(
            &ObjectDelta {
                goop: Goop(1),
                class: ClassId(5),
                segment: SegmentId(0),
                alias_next: 0,
                elem_writes: vec![(name, PRef::NIL)],
                bytes_write: None,
                is_new: false,
            },
            t(8),
        );
        assert_eq!(o.elem_current(name), None, "tombstoned");
        assert_eq!(o.elem_at(name, t(7)), Some(PRef::int(10)));
        assert_eq!(o.association_count(), 2);
    }

    #[test]
    fn element_iterators_respect_time() {
        let mut o = sample();
        let a = ElemName::Alias(0);
        let b = ElemName::Alias(1);
        o.elements.insert(a, History::with_initial(t(1), PRef::int(1)));
        o.elements.insert(b, History::with_initial(t(5), PRef::int(2)));
        assert_eq!(o.current_elements().count(), 2);
        assert_eq!(o.elements_at(t(3)).count(), 1);
        assert_eq!(o.elements_at(t(0)).count(), 0);
    }

    #[test]
    fn byte_history() {
        let mut o = sample();
        o.apply_delta(
            &ObjectDelta {
                goop: Goop(1),
                class: ClassId(5),
                segment: SegmentId(0),
                alias_next: 0,
                elem_writes: vec![],
                bytes_write: Some(b"Seattle".to_vec()),
                is_new: true,
            },
            t(3),
        );
        o.apply_delta(
            &ObjectDelta {
                goop: Goop(1),
                class: ClassId(5),
                segment: SegmentId(0),
                alias_next: 0,
                elem_writes: vec![],
                bytes_write: Some(b"Portland".to_vec()),
                is_new: false,
            },
            t(8),
        );
        assert_eq!(o.bytes_current(), Some(&b"Portland"[..]));
        assert_eq!(o.bytes_at(t(5)), Some(&b"Seattle"[..]));
        assert_eq!(o.bytes_at(t(2)), None);
    }

    #[test]
    fn commit_times_collects_all_histories() {
        let mut o = sample();
        let name = ElemName::Int(1);
        o.apply_delta(
            &ObjectDelta {
                goop: Goop(1),
                class: ClassId(5),
                segment: SegmentId(0),
                alias_next: 0,
                elem_writes: vec![(name, PRef::int(10))],
                bytes_write: Some(b"x".to_vec()),
                is_new: true,
            },
            t(2),
        );
        o.apply_delta(
            &ObjectDelta {
                goop: Goop(1),
                class: ClassId(5),
                segment: SegmentId(0),
                alias_next: 0,
                elem_writes: vec![(name, PRef::int(20))],
                bytes_write: None,
                is_new: false,
            },
            t(7),
        );
        assert_eq!(o.commit_times(), vec![t(2), t(7)], "sorted, deduplicated");
    }

    #[test]
    fn alias_counter_only_advances() {
        let mut o = sample();
        let d = |an| ObjectDelta {
            goop: Goop(1),
            class: ClassId(5),
            segment: SegmentId(0),
            alias_next: an,
            elem_writes: vec![],
            bytes_write: None,
            is_new: false,
        };
        o.apply_delta(&d(5), t(1));
        o.apply_delta(&d(3), t(2));
        assert_eq!(o.alias_next, 5);
    }
}
