//! The durable file-backed track store: [`FileDisk`] + [`FaultFile`].
//!
//! Everything in the paper's §4 storage story — shadow tracks, safe-writes,
//! two root pages — exists to survive power loss, which a memory-only
//! [`SimDisk`](crate::SimDisk) cannot demonstrate. [`FileDisk`] maps the
//! same whole-track interface onto a preallocated, track-aligned file:
//!
//! ```text
//! offset 0 ──────────────┐ header slot (one track-sized slot)
//!   magic "GEMFILE1"     │   8 bytes
//!   format version (u32) │   4 bytes LE
//!   track size     (u32) │   4 bytes LE
//! offset 1·S ────────────┤ track 0   — the Commit Manager's root page A
//! offset 2·S ────────────┤ track 1   — root page B
//! offset 3·S ────────────┤ track 2   — first data track
//!   ...                  │ track i at offset (i+1)·S
//! ```
//!
//! Every track access is one whole-slot `pread`/`pwrite` (never smaller —
//! the paper's "disk access will always be by entire tracks"), and
//! durability is explicit: [`FileDisk::sync`] issues `fdatasync`, and the
//! Commit Manager batches it per safe-write group (group commit — two
//! barriers per commit, not one per track; see `commit::safe_write_group`).
//!
//! [`FaultFile`] wraps a [`FileDisk`] with the identical fault-injection
//! surface as the simulated disk — the six [`TearClass`] byte-offset tears
//! land as raw short `pwrite`s at the same offsets within the track slot,
//! and transient read faults open the same windows — so the crash-point
//! matrix ([`crate::crashpoint`]) runs unchanged against real files. All
//! production paths go through `FaultFile` with the default (no-fault)
//! plan; `FileDisk` alone is the raw counted layer.
//!
//! Track-existence semantics: the simulated disk remembers which tracks
//! were ever written; a file can only remember bytes. On open, a track
//! *exists* iff its slot contains any nonzero byte. This is sound for the
//! crash matrix because every record the Commit Manager writes is framed
//! (nonzero little-endian length field first), and every tear class with a
//! nonzero prefix lands at least part of that length field — while a
//! `Clean` tear lands nothing, exactly matching "never written".

use std::fs::{File, OpenOptions};
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use gemstone_object::{GemError, GemResult};
use gemstone_telemetry::{Journal, JournalEvent};

use crate::disk::{
    DiskCounters, DiskStats, FaultPlan, IoRecord, TrackDisk, TrackId, WriteRecord, TRACK_HEADER,
};

/// File magic: identifies a GemStone track file, format 1.
const MAGIC: &[u8; 8] = b"GEMFILE1";

/// On-disk format version (bumped on incompatible layout changes).
const FORMAT_VERSION: u32 = 1;

/// Preallocation granularity: growing the file extends it by this many
/// track slots at once, so steady-state appends never change file length
/// (length changes are metadata updates that `fdatasync` may skip).
const PREALLOC_TRACKS: usize = 64;

/// Monotonic suffix for checkpoint copies ([`FaultFile::clone_disk`]).
static CLONE_SEQ: AtomicU64 = AtomicU64::new(0);

fn io_err(what: &str, path: &Path, e: std::io::Error) -> GemError {
    GemError::DiskFailure(format!("{what} {}: {e}", path.display()))
}

/// The raw durable layer: a preallocated, track-aligned file with
/// whole-track `pread`/`pwrite`, explicit `fdatasync`, and access counters.
/// No fault logic lives here — wrap it in a [`FaultFile`] (production
/// always does, with the default passthrough plan).
#[derive(Debug)]
pub struct FileDisk {
    path: PathBuf,
    file: File,
    track_size: usize,
    /// Capacity in track slots (excludes the header slot).
    cap_tracks: usize,
    /// Which tracks have ever been written (rebuilt on open by scanning
    /// slots for any nonzero byte).
    exists: Vec<bool>,
    stats: DiskCounters,
    journal: Option<Journal>,
    /// Scratch buffer returned by [`FileDisk::read_slot`].
    read_buf: Vec<u8>,
    /// Remove the file on drop (checkpoint copies are ephemeral).
    ephemeral: bool,
}

impl FileDisk {
    /// Create a fresh track file at `path` (must not exist), writing the
    /// header slot and preallocating the first slot batch.
    pub fn create(path: impl Into<PathBuf>, track_size: usize) -> GemResult<FileDisk> {
        assert!(track_size > TRACK_HEADER * 2, "track size too small");
        assert!(track_size >= 16, "track too small for the file header");
        let path = path.into();
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create_new(true)
            .open(&path)
            .map_err(|e| io_err("create", &path, e))?;
        let mut header = vec![0u8; track_size];
        header[..8].copy_from_slice(MAGIC);
        header[8..12].copy_from_slice(&FORMAT_VERSION.to_le_bytes());
        header[12..16].copy_from_slice(&(track_size as u32).to_le_bytes());
        file.write_at(&header, 0).map_err(|e| io_err("write header of", &path, e))?;
        let cap_tracks = PREALLOC_TRACKS;
        file.set_len(((cap_tracks + 1) * track_size) as u64)
            .map_err(|e| io_err("preallocate", &path, e))?;
        // The header (and the file's very existence) must survive power
        // loss before any commit is acknowledged against it.
        file.sync_all().map_err(|e| io_err("sync", &path, e))?;
        Ok(FileDisk {
            path,
            file,
            track_size,
            cap_tracks,
            exists: vec![false; cap_tracks],
            stats: DiskCounters::default(),
            journal: None,
            read_buf: vec![0u8; track_size],
            ephemeral: false,
        })
    }

    /// Open an existing track file, validating the header and rebuilding
    /// the track-existence map (any nonzero byte in a slot = written).
    pub fn open(path: impl Into<PathBuf>) -> GemResult<FileDisk> {
        let path = path.into();
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(&path)
            .map_err(|e| io_err("open", &path, e))?;
        let mut head = [0u8; 16];
        file.read_exact_at(&mut head, 0).map_err(|e| io_err("read header of", &path, e))?;
        if &head[..8] != MAGIC {
            return Err(GemError::DiskFailure(format!(
                "{}: not a GemStone track file (bad magic)",
                path.display()
            )));
        }
        let version = u32::from_le_bytes(head[8..12].try_into().expect("4 bytes"));
        if version != FORMAT_VERSION {
            return Err(GemError::DiskFailure(format!(
                "{}: unsupported track-file format v{version} (expected v{FORMAT_VERSION})",
                path.display()
            )));
        }
        let track_size = u32::from_le_bytes(head[12..16].try_into().expect("4 bytes")) as usize;
        if track_size <= TRACK_HEADER * 2 {
            return Err(GemError::DiskFailure(format!(
                "{}: corrupt header (track size {track_size})",
                path.display()
            )));
        }
        let len = file.metadata().map_err(|e| io_err("stat", &path, e))?.len() as usize;
        let cap_tracks = (len / track_size).saturating_sub(1);
        let mut exists = vec![false; cap_tracks];
        let mut buf = vec![0u8; track_size];
        for (i, slot) in exists.iter_mut().enumerate() {
            let off = ((i + 1) * track_size) as u64;
            file.read_exact_at(&mut buf, off).map_err(|e| io_err("scan", &path, e))?;
            *slot = buf.iter().any(|&b| b != 0);
        }
        Ok(FileDisk {
            path,
            file,
            track_size,
            cap_tracks,
            exists,
            stats: DiskCounters::default(),
            journal: None,
            read_buf: vec![0u8; track_size],
            ephemeral: false,
        })
    }

    /// The file's location on disk.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Track size in bytes (from the header on open).
    pub fn track_size(&self) -> usize {
        self.track_size
    }

    /// Number of tracks ever written.
    pub fn tracks_in_use(&self) -> usize {
        self.exists.iter().filter(|&&e| e).count()
    }

    /// Access counters so far.
    pub fn stats(&self) -> DiskStats {
        self.stats.snapshot()
    }

    /// The live counter cells (for registry binding).
    pub fn counters(&self) -> DiskCounters {
        self.stats.share()
    }

    /// Reset counters (benchmark hygiene).
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    /// Attach the flight recorder.
    pub fn attach_journal(&mut self, journal: Journal) {
        self.journal = Some(journal);
    }

    #[inline]
    fn journal_on(&self) -> Option<&Journal> {
        match &self.journal {
            Some(j) if j.enabled() => Some(j),
            _ => None,
        }
    }

    #[inline]
    fn offset(&self, id: TrackId) -> u64 {
        (id.0 as u64 + 1) * self.track_size as u64
    }

    /// Extend preallocation so slot `idx` is addressable.
    fn ensure_capacity(&mut self, idx: usize) -> GemResult<()> {
        if idx < self.cap_tracks {
            return Ok(());
        }
        let new_cap = (idx / PREALLOC_TRACKS + 1) * PREALLOC_TRACKS;
        self.file
            .set_len(((new_cap + 1) * self.track_size) as u64)
            .map_err(|e| io_err("preallocate", &self.path, e))?;
        self.exists.resize(new_cap, false);
        self.cap_tracks = new_cap;
        Ok(())
    }

    fn note_failed_write(&self, id: TrackId) {
        self.stats.failed_writes.inc();
        if let Some(j) = self.journal_on() {
            j.emit(&JournalEvent::TrackWrite {
                track: id.0 as u64,
                ok: false,
                bytes: 0,
                backend: "file".into(),
            });
        }
    }

    fn note_failed_read(&self, id: TrackId) {
        self.stats.failed_reads.inc();
        if let Some(j) = self.journal_on() {
            j.emit(&JournalEvent::TrackRead {
                track: id.0 as u64,
                ok: false,
                backend: "file".into(),
            });
        }
    }

    /// One successful whole-track write: zero-pad to the slot, `pwrite`,
    /// count, journal.
    fn write_padded(&mut self, id: TrackId, data: &[u8]) -> GemResult<()> {
        self.ensure_capacity(id.0 as usize)?;
        let mut buf = vec![0u8; self.track_size];
        buf[..data.len()].copy_from_slice(data);
        let off = self.offset(id);
        self.file.write_at(&buf, off).map_err(|e| io_err("write", &self.path, e))?;
        self.exists[id.0 as usize] = true;
        self.stats.track_writes.inc();
        self.stats.bytes_written.add(self.track_size as u64);
        if let Some(j) = self.journal_on() {
            j.emit(&JournalEvent::TrackWrite {
                track: id.0 as u64,
                ok: true,
                bytes: self.track_size as u64,
                backend: "file".into(),
            });
        }
        Ok(())
    }

    /// A raw *partial* write into a slot — the torn prefix of a crashing
    /// write. Uncounted (the logical write failed); bytes past the prefix
    /// keep whatever the slot held.
    fn write_torn_prefix(&mut self, id: TrackId, prefix: &[u8]) -> GemResult<()> {
        self.ensure_capacity(id.0 as usize)?;
        let off = self.offset(id);
        self.file.write_at(prefix, off).map_err(|e| io_err("torn write", &self.path, e))?;
        // A landed prefix is physically on the platter: the track now
        // exists, exactly as the simulated disk records it.
        self.exists[id.0 as usize] = true;
        Ok(())
    }

    /// One successful whole-track read into the scratch buffer.
    fn read_slot(&mut self, id: TrackId) -> GemResult<&[u8]> {
        let off = self.offset(id);
        self.file
            .read_exact_at(&mut self.read_buf, off)
            .map_err(|e| io_err("read", &self.path, e))?;
        self.stats.track_reads.inc();
        if let Some(j) = self.journal_on() {
            j.emit(&JournalEvent::TrackRead {
                track: id.0 as u64,
                ok: true,
                backend: "file".into(),
            });
        }
        Ok(&self.read_buf)
    }

    /// Durability barrier: `fdatasync` the file, count it, time it,
    /// journal it.
    pub fn sync(&mut self) -> GemResult<()> {
        let start = std::time::Instant::now();
        self.file.sync_data().map_err(|e| io_err("fdatasync", &self.path, e))?;
        let us = start.elapsed().as_micros() as u64;
        self.stats.fsyncs.inc();
        self.stats.fsync_us.record(us);
        if let Some(j) = self.journal_on() {
            j.emit(&JournalEvent::DiskSync { ok: true, backend: "file".into() });
            j.emit(&JournalEvent::FsyncLatency { us, backend: "file".into() });
        }
        Ok(())
    }

    /// True if the track has ever been written.
    pub fn track_exists(&self, id: TrackId) -> bool {
        self.exists.get(id.0 as usize).copied().unwrap_or(false)
    }

    /// Written tracks at or past `frontier` (orphan scan).
    pub fn tracks_beyond(&self, frontier: u32) -> u32 {
        self.exists.iter().skip(frontier as usize).filter(|&&e| e).count() as u32
    }
}

impl Drop for FileDisk {
    fn drop(&mut self) {
        if self.ephemeral {
            let _ = std::fs::remove_file(&self.path);
        }
    }
}

/// The fault-injection wrapper over a [`FileDisk`] — the file backend's
/// [`TrackDisk`] implementation. Carries the same [`FaultPlan`] as the
/// simulated disk and tears crashing writes at the same [`TearClass`]
/// byte offsets, but the tears land as real short `pwrite`s, so a torn
/// root page is torn *in the file* and recovery must read past it.
///
/// [`TearClass`]: crate::TearClass
#[derive(Debug)]
pub struct FaultFile {
    inner: FileDisk,
    plan: FaultPlan,
    dead: bool,
    trace: Vec<WriteRecord>,
    io_trace: Vec<IoRecord>,
}

impl FaultFile {
    /// Create a fresh file-backed disk (no faults armed).
    pub fn create(path: impl Into<PathBuf>, track_size: usize) -> GemResult<FaultFile> {
        Ok(FaultFile::wrap(FileDisk::create(path, track_size)?))
    }

    /// Open an existing file-backed disk (no faults armed).
    pub fn open(path: impl Into<PathBuf>) -> GemResult<FaultFile> {
        Ok(FaultFile::wrap(FileDisk::open(path)?))
    }

    /// Wrap a raw [`FileDisk`] with the default (passthrough) plan.
    pub fn wrap(inner: FileDisk) -> FaultFile {
        FaultFile {
            inner,
            plan: FaultPlan::default(),
            dead: false,
            trace: Vec::new(),
            io_trace: Vec::new(),
        }
    }

    /// Mark the underlying file ephemeral: it is deleted when this disk
    /// (and every checkpoint copy of it) is dropped.
    pub fn set_ephemeral(&mut self, ephemeral: bool) {
        self.inner.ephemeral = ephemeral;
    }

    /// The file's location on disk.
    pub fn path(&self) -> &Path {
        self.inner.path()
    }
}

impl TrackDisk for FaultFile {
    fn backend_name(&self) -> &'static str {
        "file"
    }

    fn track_size(&self) -> usize {
        self.inner.track_size()
    }

    fn tracks_in_use(&self) -> usize {
        self.inner.tracks_in_use()
    }

    fn stats(&self) -> DiskStats {
        self.inner.stats()
    }

    fn counters(&self) -> DiskCounters {
        self.inner.counters()
    }

    fn reset_stats(&mut self) {
        self.inner.reset_stats();
    }

    fn attach_journal(&mut self, journal: Journal) {
        self.inner.attach_journal(journal);
    }

    fn set_fault_plan(&mut self, plan: FaultPlan) {
        if plan.record_trace {
            self.trace.clear();
            self.io_trace.clear();
        }
        self.plan = plan;
        self.dead = false;
    }

    fn take_write_trace(&mut self) -> Vec<WriteRecord> {
        std::mem::take(&mut self.trace)
    }

    fn take_io_trace(&mut self) -> Vec<IoRecord> {
        std::mem::take(&mut self.io_trace)
    }

    fn revive(&mut self) {
        self.plan = FaultPlan::default();
        self.dead = false;
    }

    fn is_dead(&self) -> bool {
        self.dead
    }

    fn write_track(&mut self, id: TrackId, data: &[u8]) -> GemResult<()> {
        if self.dead {
            self.inner.note_failed_write(id);
            return Err(GemError::DiskDead);
        }
        if data.len() > self.inner.track_size() {
            self.inner.note_failed_write(id);
            return Err(GemError::DiskFailure(format!(
                "data ({} bytes) exceeds track size ({})",
                data.len(),
                self.inner.track_size()
            )));
        }
        if let Some(n) = self.plan.crash_after_writes {
            if n == 0 {
                // Crashing write: a prefix of the record reaches the file
                // (same byte offsets as the simulated tear — the classes
                // index into the record, the record starts the slot).
                let prefix = self.plan.tear.prefix_len(data.len()).min(self.inner.track_size());
                if prefix > 0 {
                    self.inner.write_torn_prefix(id, &data[..prefix])?;
                }
                self.dead = true;
                self.inner.note_failed_write(id);
                return Err(GemError::DiskFailure("power lost mid-write (torn track)".into()));
            }
            self.plan.crash_after_writes = Some(n - 1);
        }
        self.inner.write_padded(id, data)?;
        if self.plan.record_trace {
            self.trace.push(WriteRecord { track: id, len: data.len() });
            self.io_trace.push(IoRecord::Write { track: id, len: data.len() });
        }
        Ok(())
    }

    fn read_track(&mut self, id: TrackId) -> GemResult<&[u8]> {
        if self.dead {
            self.inner.note_failed_read(id);
            return Err(GemError::DiskDead);
        }
        if let Some(fault) = &mut self.plan.read_fault {
            if fault.after_reads > 0 {
                fault.after_reads -= 1;
            } else if fault.count > 0 {
                fault.count -= 1;
                self.inner.note_failed_read(id);
                return Err(GemError::DiskFailure(format!("transient read error on {id:?}")));
            }
        }
        if !self.inner.track_exists(id) {
            self.inner.note_failed_read(id);
            return Err(GemError::DiskFailure(format!("track {id:?} never written")));
        }
        self.inner.read_slot(id)
    }

    fn sync(&mut self) -> GemResult<()> {
        if self.dead {
            if let Some(j) = self.inner.journal_on() {
                j.emit(&JournalEvent::DiskSync { ok: false, backend: "file".into() });
            }
            return Err(GemError::DiskDead);
        }
        self.inner.sync()?;
        if self.plan.record_trace {
            self.io_trace.push(IoRecord::Sync);
        }
        Ok(())
    }

    fn track_exists(&self, id: TrackId) -> bool {
        self.inner.track_exists(id)
    }

    fn tracks_beyond(&self, frontier: u32) -> u32 {
        self.inner.tracks_beyond(frontier)
    }

    /// Checkpoint: copy the file to a fresh `.ck{N}` sibling and open it.
    /// The copy is ephemeral (deleted when the checkpoint drops), counters
    /// detach, and any journal is dropped — matching `SimDisk::clone`.
    fn clone_disk(&self) -> Box<dyn TrackDisk> {
        let n = CLONE_SEQ.fetch_add(1, Ordering::Relaxed);
        let copy_path = PathBuf::from(format!("{}.ck{n}", self.inner.path.display()));
        // pwrite goes through the page cache, so a same-process copy sees
        // every byte written so far without an intervening fsync.
        std::fs::copy(&self.inner.path, &copy_path).unwrap_or_else(|e| {
            panic!("checkpoint copy {} -> {}: {e}", self.inner.path.display(), copy_path.display())
        });
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(&copy_path)
            .unwrap_or_else(|e| panic!("open checkpoint {}: {e}", copy_path.display()));
        let inner = FileDisk {
            path: copy_path,
            file,
            track_size: self.inner.track_size,
            cap_tracks: self.inner.cap_tracks,
            exists: self.inner.exists.clone(),
            stats: self.inner.stats.clone(), // detaches, like the journal below
            journal: None,
            read_buf: vec![0u8; self.inner.track_size],
            ephemeral: true,
        };
        Box::new(FaultFile {
            inner,
            plan: self.plan.clone(),
            dead: self.dead,
            trace: self.trace.clone(),
            io_trace: self.io_trace.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::TearClass;
    use std::sync::atomic::AtomicU32;

    static DIR_SEQ: AtomicU32 = AtomicU32::new(0);

    /// A unique scratch dir under the target dir, removed on drop.
    struct Scratch(PathBuf);

    impl Scratch {
        fn new(tag: &str) -> Scratch {
            let n = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
            let dir = std::env::temp_dir()
                .join(format!("gemstone-filedisk-{tag}-{}-{n}", std::process::id()));
            std::fs::create_dir_all(&dir).unwrap();
            Scratch(dir)
        }

        fn file(&self, name: &str) -> PathBuf {
            self.0.join(name)
        }
    }

    impl Drop for Scratch {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    #[test]
    fn write_read_roundtrip_and_padding() {
        let s = Scratch::new("roundtrip");
        let mut d = FaultFile::create(s.file("db.gem"), 256).unwrap();
        d.write_track(TrackId(3), b"hello tracks").unwrap();
        let back = d.read_track(TrackId(3)).unwrap();
        assert_eq!(&back[..12], b"hello tracks");
        assert_eq!(back.len(), 256, "tracks are read whole");
        assert!(back[12..].iter().all(|&b| b == 0), "zero padded");
    }

    #[test]
    fn reopen_preserves_tracks_and_existence() {
        let s = Scratch::new("reopen");
        let path = s.file("db.gem");
        {
            let mut d = FaultFile::create(&path, 128).unwrap();
            d.write_track(TrackId(0), b"\x01root").unwrap();
            d.write_track(TrackId(7), b"\x02data").unwrap();
            d.sync().unwrap();
        }
        let mut d = FaultFile::open(&path).unwrap();
        assert_eq!(d.track_size(), 128, "track size from the header");
        assert!(d.track_exists(TrackId(0)));
        assert!(d.track_exists(TrackId(7)));
        assert!(!d.track_exists(TrackId(3)), "gap slot scanned as unwritten");
        assert_eq!(d.tracks_in_use(), 2);
        assert_eq!(d.tracks_beyond(1), 1);
        assert_eq!(&d.read_track(TrackId(7)).unwrap()[..5], b"\x02data");
        assert!(d.read_track(TrackId(3)).is_err(), "unwritten slot refuses reads");
    }

    #[test]
    fn open_rejects_foreign_files() {
        let s = Scratch::new("magic");
        let path = s.file("notdb");
        std::fs::write(&path, b"definitely not a track file, padded out to header size").unwrap();
        let err = FaultFile::open(&path).unwrap_err();
        assert!(format!("{err:?}").contains("bad magic"), "{err:?}");
    }

    #[test]
    fn tear_classes_land_at_file_offsets() {
        // Mirror of the SimDisk tear test: a 40-byte record on a 64-byte
        // track, torn at each class — but the torn bytes are in a real file
        // and must still be there after a reopen.
        for (tear, want_new) in [
            (TearClass::Clean, 0usize),
            (TearClass::HeaderLen, 2),
            (TearClass::HeaderSum, 8),
            (TearClass::AfterHeader, 12),
            (TearClass::Half, 20),
            (TearClass::Tail, 39),
        ] {
            let s = Scratch::new("tear");
            let path = s.file("db.gem");
            let mut d = FaultFile::create(&path, 64).unwrap();
            d.write_track(TrackId(0), &[0xAA; 64]).unwrap();
            d.set_fault_plan(FaultPlan {
                crash_after_writes: Some(0),
                tear,
                ..FaultPlan::default()
            });
            assert!(d.write_track(TrackId(0), &[0xCC; 40]).is_err());
            assert!(d.is_dead());
            drop(d); // the process is gone; only the file remains
            let mut d = FaultFile::open(&path).unwrap();
            let t = d.read_track(TrackId(0)).unwrap();
            assert!(t[..want_new].iter().all(|&b| b == 0xCC), "{tear:?}: new prefix");
            assert!(t[want_new..40].iter().all(|&b| b == 0xAA), "{tear:?}: old suffix");
        }
    }

    #[test]
    fn clean_tear_on_fresh_track_leaves_it_unwritten() {
        let s = Scratch::new("clean");
        let path = s.file("db.gem");
        let mut d = FaultFile::create(&path, 64).unwrap();
        d.write_track(TrackId(0), &[0x01; 10]).unwrap();
        let mut plan = FaultPlan::crash_after(0);
        plan.tear = TearClass::Clean;
        d.set_fault_plan(plan);
        assert!(d.write_track(TrackId(5), &[0x02; 10]).is_err());
        drop(d);
        let d = FaultFile::open(&path).unwrap();
        assert!(!d.track_exists(TrackId(5)), "clean tear never reached the file");
        assert!(d.track_exists(TrackId(0)));
    }

    #[test]
    fn fsyncs_counted_and_dead_disk_refuses_sync() {
        let s = Scratch::new("sync");
        let mut d = FaultFile::create(s.file("db.gem"), 64).unwrap();
        d.write_track(TrackId(0), b"\x01x").unwrap();
        d.sync().unwrap();
        d.sync().unwrap();
        assert_eq!(d.stats().fsyncs, 2);
        d.set_fault_plan(FaultPlan::crash_after(0));
        assert!(d.write_track(TrackId(1), b"\x01y").is_err());
        assert!(matches!(d.sync(), Err(GemError::DiskDead)));
        assert_eq!(d.stats().fsyncs, 2, "a dead disk's sync moves no counter");
    }

    #[test]
    fn transient_read_fault_window_matches_sim() {
        let s = Scratch::new("readfault");
        let mut d = FaultFile::create(s.file("db.gem"), 64).unwrap();
        d.write_track(TrackId(0), b"\x01data").unwrap();
        d.set_fault_plan(FaultPlan {
            read_fault: Some(crate::disk::ReadFault { after_reads: 1, count: 2 }),
            ..FaultPlan::default()
        });
        assert!(d.read_track(TrackId(0)).is_ok(), "first read succeeds");
        assert!(d.read_track(TrackId(0)).is_err(), "window open");
        assert!(d.read_track(TrackId(0)).is_err(), "window open");
        assert!(d.read_track(TrackId(0)).is_ok(), "window closed");
        assert!(!d.is_dead());
        let st = d.stats();
        assert_eq!((st.track_reads, st.failed_reads), (2, 2));
    }

    #[test]
    fn checkpoint_clone_is_independent_and_ephemeral() {
        let s = Scratch::new("clone");
        let mut d = FaultFile::create(s.file("db.gem"), 64).unwrap();
        d.write_track(TrackId(2), b"\x01before").unwrap();
        let mut ck = d.clone_disk();
        let ck_path = PathBuf::from(format!("{}", s.0.join("db.gem").display()));
        // Diverge: the original moves on, the checkpoint must not see it.
        d.write_track(TrackId(3), b"\x01after").unwrap();
        assert!(ck.track_exists(TrackId(2)));
        assert!(!ck.track_exists(TrackId(3)), "checkpoint froze before the write");
        assert_eq!(ck.read_track(TrackId(2)).unwrap()[..7], b"\x01before"[..]);
        // The copy lives next to the original and vanishes on drop.
        let copies = || {
            std::fs::read_dir(&s.0)
                .unwrap()
                .filter(|e| e.as_ref().unwrap().file_name().to_string_lossy().contains(".ck"))
                .count()
        };
        assert_eq!(copies(), 1, "one checkpoint file next to {}", ck_path.display());
        drop(ck);
        assert_eq!(copies(), 0, "ephemeral checkpoint removed on drop");
    }

    #[test]
    fn io_trace_orders_writes_and_syncs() {
        let s = Scratch::new("iotrace");
        let mut d = FaultFile::create(s.file("db.gem"), 64).unwrap();
        d.set_fault_plan(FaultPlan::trace());
        d.write_track(TrackId(2), &[1; 10]).unwrap();
        d.write_track(TrackId(3), &[2; 20]).unwrap();
        d.sync().unwrap();
        d.write_track(TrackId(0), &[3; 30]).unwrap();
        d.sync().unwrap();
        assert_eq!(
            d.take_io_trace(),
            vec![
                IoRecord::Write { track: TrackId(2), len: 10 },
                IoRecord::Write { track: TrackId(3), len: 20 },
                IoRecord::Sync,
                IoRecord::Write { track: TrackId(0), len: 30 },
                IoRecord::Sync,
            ]
        );
        assert!(d.take_io_trace().is_empty(), "trace drained");
    }

    #[test]
    fn preallocation_grows_in_batches() {
        let s = Scratch::new("prealloc");
        let path = s.file("db.gem");
        let mut d = FaultFile::create(&path, 64).unwrap();
        let len = || std::fs::metadata(&path).unwrap().len();
        assert_eq!(len(), 65 * 64, "header slot + first batch");
        d.write_track(TrackId(63), b"\x01edge").unwrap();
        assert_eq!(len(), 65 * 64, "inside the batch: no growth");
        d.write_track(TrackId(64), b"\x01next").unwrap();
        assert_eq!(len(), 129 * 64, "second batch allocated whole");
    }
}
