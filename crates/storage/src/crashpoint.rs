//! Crash-point enumeration: an exhaustive recovery harness for the safe-
//! write commit protocol.
//!
//! §7's storage claim is absolute: group safe writes make every commit
//! atomic *no matter when power dies*. Spot checks (tear write 3 of commit
//! 2, see what happens) build confidence but not coverage. This module
//! closes the gap: given a scripted [`Workload`] of commits, it first
//! *profiles* one clean run (a tracing [`FaultPlan`] records that commit k
//! performs w_k writes), then replays the run once per (commit,
//! write-index, tear-class) triple — every write of every commit torn at
//! every structurally distinct byte offset, plus a clean crash before each
//! write, plus transient read faults injected at every read of the
//! recovery pass itself. After each induced crash the volume is reopened
//! through the ordinary [`PermanentStore::open`] path and checked against
//! state images captured from the clean run:
//!
//! * **all-or-nothing** — the recovered state is byte-identical to the
//!   pre-commit image, or (only when the torn write was the root write
//!   itself, which a tear can coincidentally complete) to the post-commit
//!   image; never anything in between;
//! * **history integrity** — every previously committed object, including
//!   its full association tables (temporal `@` reads), survives bit-exact;
//! * **newest root wins** — the recovered epoch is the newest checksummed
//!   root on the platter, as reported by [`RecoveryReport`];
//! * **re-crashable recovery** — recovery is read-only, so an interrupted
//!   reopening fails cleanly and an identical retry succeeds;
//! * **usability** — the recovered store accepts the retried commit and
//!   lands exactly the post-commit image.
//!
//! Every crash point is a printable [`CrashSchedule`] token (`c3.w2.hsum`,
//! `c7.w5.half.r2`) so a matrix failure is a one-line deterministic repro
//! via [`run_schedule`].
//!
//! [`RecoveryReport`]: crate::commit::RecoveryReport

use crate::disk::{DiskArray, FaultPlan, ReadFault, TearClass};
use crate::format;
use crate::pobj::ObjectDelta;
use crate::store::{PermanentStore, StoreConfig};
use gemstone_object::{ClassId, ElemName, GemError, GemResult, Goop, PRef, SegmentId};
use gemstone_temporal::TxnTime;
use std::collections::BTreeMap;
use std::fmt;
use std::str::FromStr;

/// One crash point, printable as a compact token for one-line repro.
///
/// `c{commit}.w{write}.{tear}` — while applying commit `commit` (0-based),
/// `write` writes succeed and the next one tears per `tear`
/// ([`TearClass::Clean`] = it never lands; power died between writes).
/// An optional `.r{n}` suffix additionally fails the `n`+1st track read of
/// the recovery pass that follows (a crash *during* recovery).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashSchedule {
    /// Which commit of the workload crashes (0-based).
    pub commit: u32,
    /// How many of its writes succeed before the tear.
    pub write: u32,
    /// How the crashing write tears.
    pub tear: TearClass,
    /// `Some(n)`: the recovery pass is itself interrupted at its `n`+1st
    /// track read, then retried.
    pub recovery_read: Option<u32>,
}

impl fmt::Display for CrashSchedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}.w{}.{}", self.commit, self.write, self.tear.token())?;
        if let Some(r) = self.recovery_read {
            write!(f, ".r{r}")?;
        }
        Ok(())
    }
}

impl FromStr for CrashSchedule {
    type Err = String;

    fn from_str(s: &str) -> Result<CrashSchedule, String> {
        let mut parts = s.split('.');
        let commit = parts
            .next()
            .and_then(|p| p.strip_prefix('c'))
            .and_then(|p| p.parse().ok())
            .ok_or_else(|| format!("bad commit field in {s:?}"))?;
        let write = parts
            .next()
            .and_then(|p| p.strip_prefix('w'))
            .and_then(|p| p.parse().ok())
            .ok_or_else(|| format!("bad write field in {s:?}"))?;
        let tear = parts
            .next()
            .and_then(TearClass::from_token)
            .ok_or_else(|| format!("bad tear class in {s:?}"))?;
        let recovery_read = match parts.next() {
            None => None,
            Some(p) => Some(
                p.strip_prefix('r')
                    .and_then(|p| p.parse().ok())
                    .ok_or_else(|| format!("bad recovery-read field in {s:?}"))?,
            ),
        };
        if parts.next().is_some() {
            return Err(format!("trailing garbage in {s:?}"));
        }
        Ok(CrashSchedule { commit, write, tear, recovery_read })
    }
}

/// One scripted commit: metadata blobs staged first, then a delta batch.
#[derive(Debug, Clone)]
pub struct Step {
    /// `set_meta` calls issued before the commit.
    pub metas: Vec<(u8, Vec<u8>)>,
    /// The transaction's object writes.
    pub deltas: Vec<ObjectDelta>,
}

/// A scripted workload: a store configuration and a commit sequence.
/// Everything is fixed up front — no clocks, no randomness — so a replay
/// produces a byte-identical write stream and write index k means the same
/// write on every run.
#[derive(Debug, Clone)]
pub struct Workload {
    pub cfg: StoreConfig,
    pub steps: Vec<Step>,
}

impl Workload {
    /// The standard matrix workload: `commits` commits cycling through the
    /// shapes that stress distinct commit-group layouts — object creation,
    /// element updates, tombstones plus staged metadata, multi-object
    /// groups with cross-references, and byte bodies long enough to span
    /// several tracks. Deterministic by construction.
    pub fn standard(commits: usize) -> Workload {
        let cfg = StoreConfig { track_size: 256, cache_tracks: 16, replicas: 1 };
        let class = ClassId(3);
        let seg = SegmentId(0);
        let update = |goop, writes, bytes: Option<Vec<u8>>| ObjectDelta {
            goop,
            class,
            segment: seg,
            alias_next: 0,
            elem_writes: writes,
            bytes_write: bytes,
            is_new: false,
        };
        let mut created: Vec<Goop> = Vec::new();
        let mut next_goop = 1u64;
        let mut steps = Vec::new();
        for k in 0..commits {
            let ki = k as i64;
            let mut metas = Vec::new();
            let mut deltas = Vec::new();
            match k % 5 {
                0 => {
                    // A fresh object with two elements.
                    let g = Goop(next_goop);
                    next_goop += 1;
                    created.push(g);
                    deltas.push(ObjectDelta {
                        elem_writes: vec![
                            (ElemName::Int(1), PRef::int(ki)),
                            (ElemName::Int(2), PRef::int(2 * ki)),
                        ],
                        is_new: true,
                        ..update(g, vec![], None)
                    });
                }
                1 => {
                    // Update the oldest object and give it a byte body.
                    let g = created[0];
                    deltas.push(update(
                        g,
                        vec![(ElemName::Int(1), PRef::int(100 + ki))],
                        Some(vec![k as u8; 40 + k % 7]),
                    ));
                }
                2 => {
                    // Tombstone an element; stage a metadata blob.
                    let g = *created.last().expect("k%5==0 ran first");
                    deltas.push(update(g, vec![(ElemName::Int(2), PRef::NIL)], None));
                    metas.push((1u8, format!("meta-as-of-commit-{k}").into_bytes()));
                }
                3 => {
                    // Multi-object group: create one, cross-reference it.
                    let g = Goop(next_goop);
                    next_goop += 1;
                    created.push(g);
                    let older = created[k % (created.len() - 1)];
                    deltas.push(ObjectDelta {
                        elem_writes: vec![(ElemName::Int(1), PRef::goop(older))],
                        is_new: true,
                        ..update(g, vec![], None)
                    });
                    deltas.push(update(older, vec![(ElemName::Int(3), PRef::goop(g))], None));
                }
                _ => {
                    // Byte body spanning multiple tracks (244-byte payloads).
                    let g = created[k % created.len()];
                    let blob: Vec<u8> = (0..300).map(|i| ((i + k) % 251) as u8).collect();
                    deltas.push(update(g, vec![], Some(blob)));
                }
            }
            steps.push(Step { metas, deltas });
        }
        Workload { cfg, steps }
    }

    /// Commit time of step `k` (fixed, so replays agree).
    fn time(k: usize) -> TxnTime {
        TxnTime::from_ticks(k as u64 + 1)
    }

    /// Every metadata key any step stages.
    fn meta_keys(&self) -> Vec<u8> {
        let mut keys: Vec<u8> =
            self.steps.iter().flat_map(|s| s.metas.iter().map(|(k, _)| *k)).collect();
        keys.sort_unstable();
        keys.dedup();
        keys
    }

    /// Run step `k` against a store: stage metas, commit the batch.
    fn apply(&self, store: &mut PermanentStore, k: usize) -> GemResult<()> {
        for (key, bytes) in &self.steps[k].metas {
            store.set_meta(*key, bytes.clone());
        }
        store.commit_batch(Workload::time(k), &self.steps[k].deltas)
    }
}

/// A logical state image: the canonical serialized form of every committed
/// object (which embeds its complete association tables, i.e. all temporal
/// history), the committed metadata blobs, and the ruling root's identity.
/// Two stores with equal images answer every current and `@`-qualified
/// read identically.
#[derive(Debug, Clone, PartialEq, Eq)]
struct StateImage {
    root_epoch: u64,
    commit_time: TxnTime,
    objects: BTreeMap<u64, Vec<u8>>,
    metas: BTreeMap<u8, Vec<u8>>,
}

impl StateImage {
    fn capture(store: &mut PermanentStore, meta_keys: &[u8]) -> Result<StateImage, String> {
        let root = store.root();
        let mut objects = BTreeMap::new();
        for g in store.all_goops() {
            let obj = store.get(g).map_err(|e| format!("image: get {g:?}: {e}"))?;
            objects.insert(g.0, format::put_object(&obj));
        }
        let mut metas = BTreeMap::new();
        for &key in meta_keys {
            if let Some(b) = store.get_meta(key).map_err(|e| format!("image: meta {key}: {e}"))? {
                metas.insert(key, b);
            }
        }
        Ok(StateImage { root_epoch: root.epoch, commit_time: root.commit_time, objects, metas })
    }

    /// First difference against another image, if any.
    fn diff(&self, other: &StateImage) -> Option<String> {
        if self.root_epoch != other.root_epoch {
            return Some(format!("root epoch {} vs {}", self.root_epoch, other.root_epoch));
        }
        if self.commit_time != other.commit_time {
            return Some(format!("commit time {:?} vs {:?}", self.commit_time, other.commit_time));
        }
        for (g, bytes) in &self.objects {
            match other.objects.get(g) {
                None => return Some(format!("object {g} missing")),
                Some(b) if b != bytes => return Some(format!("object {g} bytes differ")),
                _ => {}
            }
        }
        if let Some(g) = other.objects.keys().find(|g| !self.objects.contains_key(g)) {
            return Some(format!("unexpected object {g}"));
        }
        if self.metas != other.metas {
            return Some("metadata blobs differ".into());
        }
        None
    }
}

/// What one full enumeration saw.
#[derive(Debug, Default, Clone)]
pub struct MatrixReport {
    /// Commits in the workload.
    pub commits: u32,
    /// Total disk writes across all commits (from the profiling run).
    pub total_writes: u64,
    /// (commit, write, tear) crash points exercised.
    pub commit_crash_points: u64,
    /// Crash-during-recovery points exercised.
    pub recovery_crash_points: u64,
    /// Times a volume was reopened through the recovery path.
    pub reopenings: u64,
    /// Invariant violations: (schedule token, what failed). Empty = the
    /// protocol held at every enumerated crash point.
    pub violations: Vec<(String, String)>,
}

impl MatrixReport {
    /// True when no enumerated crash point violated an invariant.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Which storage backend a matrix run drives. The enumeration itself is
/// backend-blind — checkpoints, fault arming, and recovery all go through
/// the [`TrackDisk`](crate::TrackDisk) trait — so the only difference is
/// where the initial volume comes from: a [`SimDisk`](crate::SimDisk) in
/// memory, or a real file (plus its checkpoint copies) under `dir`,
/// torn by [`FaultFile`](crate::FaultFile) at actual file offsets.
#[derive(Debug, Clone)]
pub enum MatrixBackend {
    /// The in-memory simulated disk (the default).
    Sim,
    /// Real files under `dir` (created if absent). Every file the run
    /// creates — volumes and checkpoint copies — is ephemeral: it is
    /// deleted when its disk handle drops.
    File { dir: std::path::PathBuf },
}

/// Distinguishes concurrently running matrix volumes within one process.
static FILE_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

impl MatrixBackend {
    /// Create a fresh volume for a matrix run.
    fn create_store(&self, cfg: StoreConfig, tag: &str) -> GemResult<PermanentStore> {
        match self {
            MatrixBackend::Sim => PermanentStore::create(cfg),
            MatrixBackend::File { dir } => {
                std::fs::create_dir_all(dir)
                    .map_err(|e| GemError::DiskFailure(format!("create {}: {e}", dir.display())))?;
                let n = FILE_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                let path = dir.join(format!("{tag}-{}-{n}.gem", std::process::id()));
                let mut f = crate::file_disk::FaultFile::create(&path, cfg.track_size)?;
                f.set_ephemeral(true);
                PermanentStore::create_on(DiskArray::from_backend(Box::new(f)), cfg.cache_tracks)
            }
        }
    }
}

/// The clean-run profile: per-commit write counts, a disk checkpoint
/// *before* each commit, and state images around every commit.
struct Profile {
    write_counts: Vec<u32>,
    /// `checkpoints[k]` = the platter after commits `0..k`.
    checkpoints: Vec<DiskArray>,
    /// `images[k]` = the logical state after commits `0..k` (len n+1).
    images: Vec<StateImage>,
}

fn profile(w: &Workload, backend: &MatrixBackend) -> Result<Profile, String> {
    let keys = w.meta_keys();
    let mut store =
        backend.create_store(w.cfg, "matrix-profile").map_err(|e| format!("create: {e}"))?;
    store.disk_mut().replica_mut(0).set_fault_plan(FaultPlan::trace());
    let mut p = Profile {
        write_counts: Vec::new(),
        checkpoints: Vec::new(),
        images: vec![StateImage::capture(&mut store, &keys)?],
    };
    for k in 0..w.steps.len() {
        p.checkpoints.push(store.disk_mut().clone());
        w.apply(&mut store, k).map_err(|e| format!("profile commit {k}: {e}"))?;
        let trace = store.disk_mut().replica_mut(0).take_write_trace();
        p.write_counts.push(trace.len() as u32);
        p.images.push(StateImage::capture(&mut store, &keys)?);
    }
    Ok(p)
}

/// Execute one crash schedule against a checkpointed platter and check
/// every invariant. `base` must be the disk after `s.commit` commits;
/// `pre`/`post` the images around that commit. Returns the number of
/// track reads the successful recovery performed (used to enumerate
/// crash-during-recovery points), or a violation description.
fn check_schedule(
    w: &Workload,
    s: &CrashSchedule,
    base: &DiskArray,
    pre: &StateImage,
    post: &StateImage,
    write_count: u32,
    reopenings: &mut u64,
) -> Result<u64, String> {
    let k = s.commit as usize;
    let keys = w.meta_keys();

    // 1. Reopen the checkpoint and run commit k into the armed fault plan.
    let mut disk = base.clone();
    disk.replica_mut(0).revive();
    let mut store = PermanentStore::open(disk, w.cfg.cache_tracks)
        .map_err(|e| format!("checkpoint open: {e}"))?;
    *reopenings += 1;
    store.disk_mut().replica_mut(0).set_fault_plan(FaultPlan {
        crash_after_writes: Some(s.write as u64),
        tear: s.tear,
        ..FaultPlan::default()
    });
    if w.apply(&mut store, k).is_ok() {
        return Err(format!(
            "commit {k} succeeded despite a crash armed at write {} (profile says {} writes)",
            s.write, write_count
        ));
    }

    // 2. Power-up. Optionally interrupt the recovery pass itself: the
    //    interrupted reopening must fail cleanly, and — because recovery
    //    never writes — a retry over the identical platter must succeed.
    let mut crashed = store.into_disk();
    crashed.replica_mut(0).revive();
    if let Some(r) = s.recovery_read {
        let mut faulted = crashed.clone();
        faulted.replica_mut(0).set_fault_plan(FaultPlan {
            read_fault: Some(ReadFault { after_reads: r as u64, count: 1 }),
            ..FaultPlan::default()
        });
        *reopenings += 1;
        if PermanentStore::open(faulted, w.cfg.cache_tracks).is_ok() {
            return Err(format!("recovery survived a read fault at read {r}"));
        }
    }
    let reads_before = crashed.stats().track_reads;
    let mut recovered = PermanentStore::open(crashed, w.cfg.cache_tracks)
        .map_err(|e| format!("recovery failed: {e}"))?;
    *reopenings += 1;
    let reopen_reads_measured = recovered.disk_stats().track_reads - reads_before;

    // 3. All-or-nothing, byte-identical history. A tear of the root write
    //    itself may coincidentally complete it (e.g. all-but-one-byte with
    //    a matching final byte), so for that write — and only that write —
    //    either side of the commit is legal.
    let img = StateImage::capture(&mut recovered, &keys)?;
    let root_write_torn = s.write == write_count - 1 && s.tear != TearClass::Clean;
    let committed = if img == *pre {
        false
    } else if root_write_torn && img == *post {
        true
    } else {
        let vs = img.diff(pre).unwrap_or_else(|| "?".into());
        return Err(format!("recovered state is neither pre- nor post-commit: {vs}"));
    };

    // 4. The recovery report must agree with ground truth: both root slots
    //    probed, the winner's epoch is the image's, and the discarded
    //    orphans are exactly the shadow writes the torn commit landed.
    let rep = recovered.recovery_report();
    if rep.roots_considered != 2 || rep.roots_valid == 0 {
        return Err(format!("implausible recovery report: {rep:?}"));
    }
    if rep.recovered_epoch != img.root_epoch {
        return Err(format!(
            "report epoch {} but recovered root epoch {}",
            rep.recovered_epoch, img.root_epoch
        ));
    }
    if !committed {
        let data_writes = write_count - 1;
        let mut orphans = s.write.min(data_writes);
        if s.write < data_writes && s.tear != TearClass::Clean {
            orphans += 1; // the torn data track itself reached the platter
        }
        if rep.tracks_discarded != orphans {
            return Err(format!(
                "report discards {} tracks, torn commit left {orphans}",
                rep.tracks_discarded
            ));
        }
    }
    if rep.reopen_reads != reopen_reads_measured {
        return Err("report read count disagrees with disk counters".into());
    }

    // 5. Temporal spot-check on the oldest object: every `@`-qualified
    //    read over its commit times must match the expected image (the
    //    byte comparison above implies this; reading back through the
    //    History API proves the *query path* sees the same associations).
    let expect = if committed { post } else { pre };
    if let Some((&g, bytes)) = expect.objects.iter().next() {
        let want = format::get_object(bytes).map_err(|e| format!("image parse: {e}"))?;
        let got = recovered.get(Goop(g)).map_err(|e| format!("probe get: {e}"))?;
        for t in want.commit_times() {
            let w_elems: Vec<_> = want.elements_at(t).collect();
            let g_elems: Vec<_> = got.elements_at(t).collect();
            if w_elems != g_elems || want.bytes_at(t) != got.bytes_at(t) {
                return Err(format!("temporal read at {t:?} diverges on object {g}"));
            }
        }
    }

    // 6. The recovered store is live: retrying the interrupted commit must
    //    land exactly the post-commit image (skipped when the tear already
    //    completed the commit).
    if !committed {
        w.apply(&mut recovered, k).map_err(|e| format!("retry of commit {k} failed: {e}"))?;
        let after = StateImage::capture(&mut recovered, &keys)?;
        if let Some(vs) = after.diff(post) {
            return Err(format!("retried commit diverged from clean run: {vs}"));
        }
    }
    Ok(rep.reopen_reads)
}

/// Enumerate the full crash matrix for a workload: every write of every
/// commit torn at every class in `tears`, plus — per commit — a crash at
/// every read of the recovery pass that follows a mid-root tear. Also
/// replays each commit once with the crash armed exactly one write too
/// late, proving the replayed write count matches the profile (the
/// determinism the whole enumeration rests on). Invariant violations are
/// collected (not panicked) so a CI run can print every failing token.
pub fn enumerate_matrix(w: &Workload, tears: &[TearClass]) -> GemResult<MatrixReport> {
    enumerate_matrix_on(w, tears, &MatrixBackend::Sim)
}

/// [`enumerate_matrix`] against an explicit storage backend. The matrix
/// invariants are backend-independent; a clean run on
/// [`MatrixBackend::File`] proves the §7 atomicity claim against real
/// `pwrite`/`fdatasync` I/O, torn at real file offsets.
pub fn enumerate_matrix_on(
    w: &Workload,
    tears: &[TearClass],
    backend: &MatrixBackend,
) -> GemResult<MatrixReport> {
    assert!(!tears.is_empty(), "need at least one tear class");
    let p = profile(w, backend).map_err(GemError::RuntimeError)?;
    let keys = w.meta_keys();
    let mut report = MatrixReport {
        commits: w.steps.len() as u32,
        total_writes: p.write_counts.iter().map(|&c| c as u64).sum(),
        ..MatrixReport::default()
    };
    for k in 0..w.steps.len() {
        let wc = p.write_counts[k];
        let (base, pre, post) = (&p.checkpoints[k], &p.images[k], &p.images[k + 1]);

        // Determinism probe: armed one write past the end, the commit must
        // succeed and match the clean run — so write index i means the
        // same write here as it did in the profile.
        let mut disk = base.clone();
        disk.replica_mut(0).revive();
        let mut store = PermanentStore::open(disk, w.cfg.cache_tracks)
            .map_err(|e| GemError::RuntimeError(format!("checkpoint {k}: {e}")))?;
        report.reopenings += 1;
        store.disk_mut().replica_mut(0).set_fault_plan(FaultPlan::crash_after(wc as u64));
        if let Err(e) = w.apply(&mut store, k) {
            report
                .violations
                .push((format!("c{k}.w{wc}.none"), format!("replay nondeterministic: {e}")));
            continue;
        }
        match StateImage::capture(&mut store, &keys) {
            Err(e) => report.violations.push((format!("c{k}.w{wc}.none"), e)),
            Ok(img) => {
                if let Some(vs) = img.diff(post) {
                    report.violations.push((
                        format!("c{k}.w{wc}.none"),
                        format!("replay diverged from clean run: {vs}"),
                    ));
                }
            }
        }

        // The (write, tear) matrix for this commit.
        let mut recovery_reads = 0;
        for write in 0..wc {
            for &tear in tears {
                let s = CrashSchedule { commit: k as u32, write, tear, recovery_read: None };
                report.commit_crash_points += 1;
                match check_schedule(w, &s, base, pre, post, wc, &mut report.reopenings) {
                    Ok(reads) => {
                        if write == wc - 1 && tear == TearClass::Half {
                            recovery_reads = reads;
                        }
                    }
                    Err(v) => report.violations.push((s.to_string(), v)),
                }
            }
        }

        // Crash-during-recovery points: interrupt the recovery that
        // follows a mid-root tear at each of its reads.
        for r in 0..recovery_reads {
            let s = CrashSchedule {
                commit: k as u32,
                write: wc - 1,
                tear: TearClass::Half,
                recovery_read: Some(r as u32),
            };
            report.recovery_crash_points += 1;
            if let Err(v) = check_schedule(w, &s, base, pre, post, wc, &mut report.reopenings) {
                report.violations.push((s.to_string(), v));
            }
        }
    }
    Ok(report)
}

/// Replay a single schedule from scratch — the one-line repro for a token
/// printed by a failing matrix run. Returns the violation, if any.
pub fn run_schedule(w: &Workload, s: &CrashSchedule) -> Result<(), String> {
    run_schedule_on(w, s, &MatrixBackend::Sim)
}

/// [`run_schedule`] against an explicit storage backend.
pub fn run_schedule_on(
    w: &Workload,
    s: &CrashSchedule,
    backend: &MatrixBackend,
) -> Result<(), String> {
    let k = s.commit as usize;
    if k >= w.steps.len() {
        return Err(format!("workload has {} commits, token names c{k}", w.steps.len()));
    }
    let keys = w.meta_keys();
    let mut store =
        backend.create_store(w.cfg, "matrix-repro").map_err(|e| format!("create: {e}"))?;
    store.disk_mut().replica_mut(0).set_fault_plan(FaultPlan::trace());
    for j in 0..k {
        w.apply(&mut store, j).map_err(|e| format!("prefix commit {j}: {e}"))?;
    }
    let pre = StateImage::capture(&mut store, &keys)?;
    let base = store.disk_mut().clone();
    store.disk_mut().replica_mut(0).take_write_trace();
    w.apply(&mut store, k).map_err(|e| format!("clean commit {k}: {e}"))?;
    let write_count = store.disk_mut().replica_mut(0).take_write_trace().len() as u32;
    let post = StateImage::capture(&mut store, &keys)?;
    let mut reopenings = 0;
    check_schedule(w, s, &base, &pre, &post, write_count, &mut reopenings).map(|_| ())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_token_roundtrip() {
        for s in [
            CrashSchedule { commit: 0, write: 0, tear: TearClass::Clean, recovery_read: None },
            CrashSchedule { commit: 3, write: 2, tear: TearClass::HeaderSum, recovery_read: None },
            CrashSchedule { commit: 17, write: 6, tear: TearClass::Tail, recovery_read: Some(4) },
        ] {
            let token = s.to_string();
            assert_eq!(token.parse::<CrashSchedule>().unwrap(), s, "{token}");
        }
        assert_eq!(
            CrashSchedule { commit: 3, write: 2, tear: TearClass::HeaderSum, recovery_read: None }
                .to_string(),
            "c3.w2.hsum"
        );
        assert!("x3.w2.hsum".parse::<CrashSchedule>().is_err());
        assert!("c3.w2.bogus".parse::<CrashSchedule>().is_err());
        assert!("c3.w2.half.r1.zz".parse::<CrashSchedule>().is_err());
    }

    #[test]
    fn small_matrix_is_clean() {
        let w = Workload::standard(6);
        let report = enumerate_matrix(&w, &[TearClass::Clean, TearClass::Half]).unwrap();
        assert_eq!(report.commits, 6);
        assert!(report.total_writes >= 12, "each commit writes at least twice");
        assert_eq!(report.commit_crash_points, report.total_writes * 2);
        assert!(report.recovery_crash_points > 0, "recovery reads enumerated");
        assert!(report.reopenings > report.commit_crash_points, "every point reopens");
        assert!(report.is_clean(), "violations: {:?}", report.violations);
    }

    #[test]
    fn small_matrix_is_clean_on_file_backend() {
        let dir = std::env::temp_dir().join(format!("gemstone-matrix-{}", std::process::id()));
        let backend = MatrixBackend::File { dir: dir.clone() };
        let w = Workload::standard(4);
        let report = enumerate_matrix_on(&w, &[TearClass::Clean, TearClass::Tail], &backend)
            .expect("matrix runs");
        assert_eq!(report.commit_crash_points, report.total_writes * 2);
        assert!(report.is_clean(), "violations: {:?}", report.violations);
        // Every volume and checkpoint copy was ephemeral.
        let leftovers = std::fs::read_dir(&dir).map(|d| d.count()).unwrap_or(0);
        assert_eq!(leftovers, 0, "file backend leaked volumes");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn run_schedule_replays_a_token_standalone() {
        let w = Workload::standard(4);
        let s: CrashSchedule = "c3.w1.hlen".parse().unwrap();
        run_schedule(&w, &s).unwrap();
        let during_recovery: CrashSchedule = "c2.w1.half.r0".parse().unwrap();
        run_schedule(&w, &during_recovery).unwrap();
    }

    #[test]
    fn run_schedule_flags_an_unreachable_crash_point() {
        // Arming the crash past the commit's last write means the commit
        // survives — the harness must report that as a violation rather
        // than silently passing.
        let w = Workload::standard(2);
        let s = CrashSchedule { commit: 1, write: 999, tear: TearClass::Half, recovery_read: None };
        let err = run_schedule(&w, &s).unwrap_err();
        assert!(err.contains("succeeded despite"), "{err}");
    }

    #[test]
    fn workload_is_deterministic() {
        // Two independent replays produce identical write traces.
        let w = Workload::standard(7);
        let trace = |w: &Workload| {
            let mut store = PermanentStore::create(w.cfg).unwrap();
            store.disk_mut().replica_mut(0).set_fault_plan(FaultPlan::trace());
            for k in 0..w.steps.len() {
                w.apply(&mut store, k).unwrap();
            }
            store.disk_mut().replica_mut(0).take_write_trace()
        };
        assert_eq!(trace(&w), trace(&w));
    }
}
