//! The Track Manager's cache.
//!
//! §6: "The Track Manager schedules reads and writes of tracks." Reads are
//! served through an LRU cache of track payloads; hit/miss counters feed the
//! clustering experiments (C7).
//!
//! The cache is backend-agnostic: it fronts whichever [`TrackDisk`]
//! implementation the store was built on (the simulated disk or the real
//! [`FileDisk`]), caching decoded payloads with the track checksum already
//! stripped. On the file backend the commit path's write-through fills are
//! what keep a freshly reopened volume from re-reading every track it just
//! wrote; recovery instead starts cold via [`TrackCache::clear`] /
//! [`ShardedTrackCache::clear`] so nothing stale survives a root rollback.
//!
//! [`TrackDisk`]: crate::disk::TrackDisk
//! [`FileDisk`]: crate::file_disk::FileDisk

use crate::disk::TrackId;
use gemstone_telemetry::{Counter, Journal, JournalEvent};
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};

/// Cache statistics.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    /// Entries pushed out by capacity pressure (invalidations not counted).
    pub evictions: u64,
    /// Entries filled on the read path (a miss pulled the track from disk).
    pub fills_read: u64,
    /// Entries filled on the commit path (a safe-write group populated the
    /// cache with the tracks it just wrote).
    pub fills_commit: u64,
}

/// Why a track payload is entering the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FillSource {
    /// A read miss pulled the track from disk.
    ReadThrough,
    /// A commit wrote the track and populates the cache write-through.
    CommitWrite,
}

/// Live counters behind [`CacheStats`]; shared cells for registry binding.
#[derive(Debug, Default)]
pub struct CacheCounters {
    pub hits: Counter,
    pub misses: Counter,
    pub evictions: Counter,
    pub fills_read: Counter,
    pub fills_commit: Counter,
}

impl CacheCounters {
    fn snapshot(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.get(),
            misses: self.misses.get(),
            evictions: self.evictions.get(),
            fills_read: self.fills_read.get(),
            fills_commit: self.fills_commit.get(),
        }
    }

    fn reset(&self) {
        self.hits.reset();
        self.misses.reset();
        self.evictions.reset();
        self.fills_read.reset();
        self.fills_commit.reset();
    }

    /// Shared handles (non-detaching): every clone updates the same cells.
    /// This is what lets all shards of a [`ShardedTrackCache`] move one
    /// aggregate set of counters while the registry binds those same cells.
    pub fn share(&self) -> CacheCounters {
        CacheCounters {
            hits: self.hits.clone(),
            misses: self.misses.clone(),
            evictions: self.evictions.clone(),
            fills_read: self.fills_read.clone(),
            fills_commit: self.fills_commit.clone(),
        }
    }
}

/// An LRU cache of track payloads (checksum already stripped).
///
/// Recency is an append-only queue of `(track, stamp)` touch records; each
/// entry stores its latest stamp, and queue records with stale stamps are
/// tombstones skipped during eviction. Every operation — including eviction
/// — is amortized O(1): a touch record is pushed once and popped at most
/// once, where a `min_by_key` sweep would make each insert O(len).
#[derive(Debug)]
pub struct TrackCache {
    capacity: usize,
    entries: HashMap<TrackId, (u64, Vec<u8>)>,
    /// Touch order, oldest first; stale stamps are tombstones.
    recency: VecDeque<(TrackId, u64)>,
    tick: u64,
    stats: CacheCounters,
    journal: Option<Journal>,
    /// Which shard of a [`ShardedTrackCache`] this is (0 standalone);
    /// stamped into `CacheAccess` journal events.
    shard_index: u64,
}

impl TrackCache {
    /// A cache holding up to `capacity` tracks.
    pub fn new(capacity: usize) -> TrackCache {
        TrackCache::with_counters(capacity, CacheCounters::default())
    }

    /// A cache that moves the given (possibly shared) counter cells instead
    /// of private ones — the building block of [`ShardedTrackCache`], whose
    /// shards all report into one aggregate set.
    pub fn with_counters(capacity: usize, counters: CacheCounters) -> TrackCache {
        TrackCache {
            capacity,
            entries: HashMap::new(),
            recency: VecDeque::new(),
            tick: 0,
            stats: counters,
            journal: None,
            shard_index: 0,
        }
    }

    /// Capacity in tracks.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Attach the flight recorder; every counter move below also emits a
    /// journal event.
    pub fn attach_journal(&mut self, journal: Journal) {
        self.journal = Some(journal);
    }

    #[inline]
    fn journal_on(&self) -> Option<&Journal> {
        match &self.journal {
            Some(j) if j.enabled() => Some(j),
            _ => None,
        }
    }

    /// Record a touch of `id` now, returning the stamp. The caller must
    /// store the stamp into the entry before the next [`Self::compact`].
    fn touch(&mut self, id: TrackId) -> u64 {
        self.tick += 1;
        self.recency.push_back((id, self.tick));
        self.tick
    }

    /// Keep tombstones from accumulating without bound under hit-heavy
    /// workloads; the sweep cost amortizes over the pushes that grew it.
    fn compact(&mut self) {
        if self.recency.len() > self.entries.len() * 2 + 16 {
            let entries = &self.entries;
            self.recency.retain(|(t, stamp)| entries.get(t).is_some_and(|(s, _)| s == stamp));
        }
    }

    /// Remove the least recently used entry (assumes one exists).
    fn evict_lru(&mut self) {
        while let Some((victim, stamp)) = self.recency.pop_front() {
            match self.entries.get(&victim) {
                // Live head record: this is the true LRU entry.
                Some((s, _)) if *s == stamp => {
                    self.entries.remove(&victim);
                    self.stats.evictions.inc();
                    if let Some(j) = self.journal_on() {
                        j.emit(&JournalEvent::CacheEvict { track: victim.0 as u64 });
                    }
                    return;
                }
                // Tombstone (entry re-touched later, or invalidated).
                _ => {}
            }
        }
    }

    /// Look up a track, refreshing its recency.
    pub fn get(&mut self, id: TrackId) -> Option<&[u8]> {
        if !self.entries.contains_key(&id) {
            self.stats.misses.inc();
            if let Some(j) = self.journal_on() {
                j.emit(&JournalEvent::CacheAccess {
                    track: id.0 as u64,
                    shard: self.shard_index,
                    hit: false,
                });
            }
            return None;
        }
        let stamp = self.touch(id);
        {
            let (last, _) = self.entries.get_mut(&id).expect("checked above");
            *last = stamp;
        }
        self.compact();
        self.stats.hits.inc();
        if let Some(j) = self.journal_on() {
            j.emit(&JournalEvent::CacheAccess {
                track: id.0 as u64,
                shard: self.shard_index,
                hit: true,
            });
        }
        let (_, data) = self.entries.get(&id).expect("checked above");
        Some(data.as_slice())
    }

    /// Insert (or refresh) a track payload on the read path, evicting the
    /// least recently used entry if full.
    pub fn put(&mut self, id: TrackId, data: Vec<u8>) {
        self.put_from(id, data, FillSource::ReadThrough);
    }

    /// Insert (or refresh) a track payload, attributing the fill to
    /// `source` (read-through miss vs. commit-path write-through).
    pub fn put_from(&mut self, id: TrackId, data: Vec<u8>, source: FillSource) {
        if self.capacity == 0 {
            return;
        }
        if !self.entries.contains_key(&id) && self.entries.len() >= self.capacity {
            self.evict_lru();
        }
        let stamp = self.touch(id);
        self.entries.insert(id, (stamp, data));
        self.compact();
        match source {
            FillSource::ReadThrough => self.stats.fills_read.inc(),
            FillSource::CommitWrite => self.stats.fills_commit.inc(),
        }
        if let Some(j) = self.journal_on() {
            j.emit(&JournalEvent::CacheFill {
                track: id.0 as u64,
                commit: matches!(source, FillSource::CommitWrite),
            });
        }
    }

    /// Drop a track (it has been superseded by a shadow copy). Its queue
    /// records become tombstones.
    pub fn invalidate(&mut self, id: TrackId) {
        self.entries.remove(&id);
    }

    /// Drop everything (recovery).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.recency.clear();
    }

    /// Hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        self.stats.snapshot()
    }

    /// The live counter cells (for registry binding).
    pub fn counters(&self) -> CacheCounters {
        self.stats.share()
    }

    /// Reset counters.
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    /// Number of cached tracks.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Shards in a [`ShardedTrackCache`]. Adjacent tracks land on different
/// shards (round-robin by track id), so parallel faulting of a clustered
/// object's tracks takes disjoint locks.
pub const CACHE_SHARDS: usize = 8;

/// Per-shard hit/miss tallies (see [`ShardedTrackCache::shard_stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShardStats {
    pub hits: u64,
    pub misses: u64,
}

/// A lock-striped track cache: [`CACHE_SHARDS`] independent [`TrackCache`]s,
/// each behind its own mutex, selected round-robin by track id. Concurrent
/// sessions faulting different tracks proceed in parallel; the aggregate
/// counters (one shared set of cells moved by every shard, under that
/// shard's lock) keep the canonical `storage.cache.*` metrics and their
/// journal events exactly as coherent as the single-lock cache had them.
///
/// Eviction is per-shard LRU over `capacity / shards` slots (remainder
/// spread over the low shards), which approximates — but is not identical
/// to — a single global LRU: hit/miss counts under capacity pressure can
/// differ from the unsharded cache by the imbalance of the track→shard
/// distribution. The perf trajectory is generated against this policy.
///
/// A capacity below [`CACHE_SHARDS`] shards down to one slot per shard
/// (never a zero-capacity shard, which would silently refuse fills):
/// tiny caches trade parallelism for actually caching.
#[derive(Debug)]
pub struct ShardedTrackCache {
    shards: Vec<Mutex<TrackCache>>,
    /// Aggregate cells shared by every shard (canonical registry names).
    counters: CacheCounters,
    /// Per-shard hit/miss cells (`storage.cache.shard<i>.*`), always
    /// [`CACHE_SHARDS`] entries; the tail stays zero when sharded down.
    shard_hits: Vec<Counter>,
    shard_misses: Vec<Counter>,
    capacity: usize,
}

impl ShardedTrackCache {
    /// A sharded cache holding up to `capacity` tracks in total.
    pub fn new(capacity: usize) -> ShardedTrackCache {
        let counters = CacheCounters::default();
        let nshards = if capacity == 0 { CACHE_SHARDS } else { CACHE_SHARDS.min(capacity) };
        let shards = (0..nshards)
            .map(|i| {
                let per = capacity / nshards + usize::from(i < capacity % nshards);
                let mut shard = TrackCache::with_counters(per, counters.share());
                shard.shard_index = i as u64;
                Mutex::new(shard)
            })
            .collect();
        ShardedTrackCache {
            shards,
            counters,
            shard_hits: (0..CACHE_SHARDS).map(|_| Counter::new()).collect(),
            shard_misses: (0..CACHE_SHARDS).map(|_| Counter::new()).collect(),
            capacity,
        }
    }

    #[inline]
    fn shard_of(&self, id: TrackId) -> usize {
        id.0 as usize % self.shards.len()
    }

    /// Total capacity in tracks.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Attach the flight recorder to every shard (events are emitted under
    /// the owning shard's lock, beside the aggregate counter moves, so the
    /// journal stays 1:1 with the registry under concurrency).
    pub fn attach_journal(&mut self, journal: Journal) {
        for s in &mut self.shards {
            s.get_mut().attach_journal(journal.clone());
        }
    }

    /// Look up a track and hand its payload to `f`. Counts a hit or miss
    /// either way (aggregate + per-shard).
    pub fn with_track<R>(&self, id: TrackId, f: impl FnOnce(&[u8]) -> R) -> Option<R> {
        let i = self.shard_of(id);
        let mut shard = self.shards[i].lock();
        let r = shard.get(id).map(f);
        match r {
            Some(_) => self.shard_hits[i].inc(),
            None => self.shard_misses[i].inc(),
        }
        r
    }

    /// Insert (or refresh) a track payload, attributing the fill.
    pub fn put_from(&self, id: TrackId, data: Vec<u8>, source: FillSource) {
        self.shards[self.shard_of(id)].lock().put_from(id, data, source);
    }

    /// Drop a track (superseded by a shadow copy).
    pub fn invalidate(&self, id: TrackId) {
        self.shards[self.shard_of(id)].lock().invalidate(id);
    }

    /// Drop everything (recovery).
    pub fn clear(&self) {
        for s in &self.shards {
            s.lock().clear();
        }
    }

    /// Aggregate hit/miss counters across all shards.
    pub fn stats(&self) -> CacheStats {
        self.counters.snapshot()
    }

    /// The live aggregate counter cells (for registry binding).
    pub fn counters(&self) -> CacheCounters {
        self.counters.share()
    }

    /// Per-shard (hits, misses) tallies, shard 0 first.
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        (0..CACHE_SHARDS)
            .map(|i| ShardStats {
                hits: self.shard_hits[i].get(),
                misses: self.shard_misses[i].get(),
            })
            .collect()
    }

    /// The live per-shard hit/miss cells (for registry binding), shard 0
    /// first.
    pub fn shard_counters(&self) -> Vec<(Counter, Counter)> {
        (0..CACHE_SHARDS)
            .map(|i| (self.shard_hits[i].clone(), self.shard_misses[i].clone()))
            .collect()
    }

    /// Reset aggregate and per-shard counters.
    pub fn reset_stats(&self) {
        self.counters.reset();
        for i in 0..CACHE_SHARDS {
            self.shard_hits[i].reset();
            self.shard_misses[i].reset();
        }
    }

    /// Cached tracks across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// True when every shard is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_and_miss_accounting() {
        let mut c = TrackCache::new(2);
        assert!(c.get(TrackId(1)).is_none());
        c.put(TrackId(1), vec![1]);
        assert_eq!(c.get(TrackId(1)), Some(&[1u8][..]));
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.evictions), (1, 1, 0));
    }

    #[test]
    fn fill_sources_counted_separately() {
        let mut c = TrackCache::new(2);
        c.put(TrackId(1), vec![1]); // read-through
        c.put_from(TrackId(2), vec![2], FillSource::CommitWrite);
        c.put_from(TrackId(2), vec![9], FillSource::CommitWrite); // refresh counts too
        let s = c.stats();
        assert_eq!((s.fills_read, s.fills_commit), (1, 2));
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut c = TrackCache::new(2);
        c.put(TrackId(1), vec![1]);
        c.put(TrackId(2), vec![2]);
        let _ = c.get(TrackId(1)); // 1 is now most recent
        c.put(TrackId(3), vec![3]); // evicts 2
        assert!(c.get(TrackId(1)).is_some());
        assert!(c.get(TrackId(2)).is_none());
        assert!(c.get(TrackId(3)).is_some());
        assert_eq!(c.len(), 2);
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn refresh_does_not_grow() {
        let mut c = TrackCache::new(2);
        c.put(TrackId(1), vec![1]);
        c.put(TrackId(1), vec![9]);
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(TrackId(1)), Some(&[9u8][..]));
    }

    #[test]
    fn zero_capacity_never_stores() {
        let mut c = TrackCache::new(0);
        c.put(TrackId(1), vec![1]);
        assert!(c.get(TrackId(1)).is_none());
    }

    #[test]
    fn invalidate_removes() {
        let mut c = TrackCache::new(4);
        c.put(TrackId(1), vec![1]);
        c.invalidate(TrackId(1));
        assert!(c.get(TrackId(1)).is_none());
    }

    #[test]
    fn eviction_order_survives_interleaved_gets_and_puts() {
        // Heavy interleaving of refreshes, re-puts, and invalidations: the
        // tombstoned queue must still evict in exact LRU order.
        let mut c = TrackCache::new(3);
        c.put(TrackId(1), vec![1]);
        c.put(TrackId(2), vec![2]);
        c.put(TrackId(3), vec![3]);
        // Touch order now 1, 2, 3. Refresh 1 twice, 2 once (stale records
        // for both pile up in the queue).
        let _ = c.get(TrackId(1));
        let _ = c.get(TrackId(2));
        let _ = c.get(TrackId(1));
        // LRU order: 3, 2, 1. Insert 4 → evicts 3.
        c.put(TrackId(4), vec![4]);
        assert!(c.get(TrackId(3)).is_none(), "3 was LRU");
        assert_eq!(c.len(), 3);
        // Re-put of 2 refreshes it. LRU order: 1, 4, 2. Insert 5 → evicts 1.
        c.put(TrackId(2), vec![22]);
        c.put(TrackId(5), vec![5]);
        assert!(c.get(TrackId(1)).is_none(), "1 was LRU");
        assert_eq!(c.get(TrackId(2)), Some(&[22u8][..]), "re-put payload survives");
        // That get refreshed 2: LRU order is now 4, 5, 2. Invalidate the
        // current LRU (4); its queue records become tombstones eviction must
        // skip over.
        c.invalidate(TrackId(4));
        c.put(TrackId(6), vec![6]); // room after the invalidate — no eviction
        assert_eq!(c.len(), 3);
        c.put(TrackId(7), vec![7]); // evicts 5 (oldest live touch; 4 skipped)
        assert!(c.get(TrackId(5)).is_none(), "5 evicted after invalidated 4 skipped");
        assert!(c.get(TrackId(2)).is_some());
        assert!(c.get(TrackId(6)).is_some());
        assert!(c.get(TrackId(7)).is_some());
    }

    #[test]
    fn long_interleaving_matches_reference_lru() {
        // Pseudo-random get/put stream checked against an O(n²) reference
        // implementation.
        #[derive(Default)]
        struct RefLru {
            order: Vec<(u32, Vec<u8>)>, // oldest first
        }
        impl RefLru {
            fn get(&mut self, id: u32) -> Option<Vec<u8>> {
                let pos = self.order.iter().position(|(t, _)| *t == id)?;
                let e = self.order.remove(pos);
                let v = e.1.clone();
                self.order.push(e);
                Some(v)
            }
            fn put(&mut self, id: u32, data: Vec<u8>, cap: usize) {
                if let Some(pos) = self.order.iter().position(|(t, _)| *t == id) {
                    self.order.remove(pos);
                } else if self.order.len() >= cap {
                    self.order.remove(0);
                }
                self.order.push((id, data));
            }
        }

        let mut c = TrackCache::new(4);
        let mut r = RefLru::default();
        let mut state = 0x2545F491u64;
        for step in 0..2000u64 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let id = ((state >> 33) % 10) as u32;
            match (state >> 13) % 3 {
                0 => {
                    let got = c.get(TrackId(id)).map(|b| b.to_vec());
                    assert_eq!(got, r.get(id), "step {step}: get({id}) diverged");
                }
                1 => {
                    let payload = vec![(step % 251) as u8];
                    c.put(TrackId(id), payload.clone());
                    r.put(id, payload, 4);
                }
                _ => {
                    c.invalidate(TrackId(id));
                    if let Some(pos) = r.order.iter().position(|(t, _)| *t == id) {
                        r.order.remove(pos);
                    }
                }
            }
            assert_eq!(c.len(), r.order.len(), "step {step}: size diverged");
        }
    }

    #[test]
    fn clear_drops_entries_and_recency() {
        // Recovery (a root rollback on reopen) must leave no stale payload
        // *and* no stale recency record that could mis-order later
        // evictions.
        let mut c = TrackCache::new(2);
        c.put(TrackId(1), vec![1]);
        c.put(TrackId(2), vec![2]);
        c.clear();
        assert!(c.is_empty());
        assert!(c.recency.is_empty(), "recovery leaves no tombstones behind");
        // Post-recovery fills evict in fresh LRU order, unaffected by
        // pre-recovery touches.
        c.put(TrackId(3), vec![3]);
        c.put(TrackId(4), vec![4]);
        c.put(TrackId(5), vec![5]); // evicts 3, not anything historical
        assert!(c.get(TrackId(3)).is_none());
        assert!(c.get(TrackId(4)).is_some());
        assert!(c.get(TrackId(5)).is_some());
    }

    #[test]
    fn sharded_cache_routes_by_track_and_aggregates_counters() {
        let c = ShardedTrackCache::new(64);
        for i in 0..16u32 {
            c.put_from(TrackId(i), vec![i as u8], FillSource::ReadThrough);
        }
        assert_eq!(c.len(), 16);
        // Every track readable back through the striped path.
        for i in 0..16u32 {
            assert_eq!(c.with_track(TrackId(i), |b| b.to_vec()), Some(vec![i as u8]));
        }
        assert!(c.with_track(TrackId(99), |b| b.to_vec()).is_none());
        let stats = c.stats();
        assert_eq!(stats.hits, 16);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.fills_read, 16);
        // Per-shard tallies sum to the aggregate.
        let per: Vec<ShardStats> = c.shard_stats();
        assert_eq!(per.iter().map(|s| s.hits).sum::<u64>(), 16);
        assert_eq!(per.iter().map(|s| s.misses).sum::<u64>(), 1);
        // 16 consecutive tracks over 8 shards: two hits each.
        assert!(per.iter().all(|s| s.hits == 2));
    }

    #[test]
    fn sharded_cache_invalidate_clear_and_reset() {
        let c = ShardedTrackCache::new(8);
        c.put_from(TrackId(3), vec![3], FillSource::CommitWrite);
        c.put_from(TrackId(4), vec![4], FillSource::CommitWrite);
        c.invalidate(TrackId(3));
        assert_eq!(c.len(), 1);
        assert!(c.with_track(TrackId(3), |_| ()).is_none());
        c.reset_stats();
        assert_eq!(c.stats(), CacheStats::default());
        assert!(c.shard_stats().iter().all(|s| *s == ShardStats::default()));
        c.clear();
        assert!(c.is_empty());
    }

    #[test]
    fn sharded_cache_zero_capacity_never_retains() {
        let c = ShardedTrackCache::new(0);
        c.put_from(TrackId(1), vec![1], FillSource::ReadThrough);
        assert!(c.is_empty());
        assert!(c.with_track(TrackId(1), |_| ()).is_none());
    }

    #[test]
    fn sharded_cache_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ShardedTrackCache>();
    }

    #[test]
    fn sharded_capacity_distributes_remainder() {
        // 10 slots over 8 shards: shards 0-1 get 2, the rest 1 — so 10
        // distinct tracks all landing evenly survive without eviction only
        // up to per-shard capacity. Fill one track per shard, then verify
        // a second round on shards 0 and 1 fits while shard 2 evicts.
        let c = ShardedTrackCache::new(10);
        assert_eq!(c.capacity(), 10);
        for i in 0..8u32 {
            c.put_from(TrackId(i), vec![i as u8], FillSource::ReadThrough);
        }
        c.put_from(TrackId(8), vec![8], FillSource::ReadThrough); // shard 0, slot 2
        c.put_from(TrackId(9), vec![9], FillSource::ReadThrough); // shard 1, slot 2
        assert_eq!(c.len(), 10);
        c.put_from(TrackId(10), vec![10], FillSource::ReadThrough); // shard 2 evicts
        assert_eq!(c.len(), 10);
        assert_eq!(c.stats().evictions, 1);
    }
}
