//! The Track Manager's cache.
//!
//! §6: "The Track Manager schedules reads and writes of tracks." Reads are
//! served through an LRU cache of track payloads; hit/miss counters feed the
//! clustering experiments (C7).

use crate::disk::TrackId;
use std::collections::HashMap;

/// Cache statistics.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
}

/// An LRU cache of track payloads (checksum already stripped).
#[derive(Debug)]
pub struct TrackCache {
    capacity: usize,
    entries: HashMap<TrackId, (u64, Vec<u8>)>,
    tick: u64,
    stats: CacheStats,
}

impl TrackCache {
    /// A cache holding up to `capacity` tracks.
    pub fn new(capacity: usize) -> TrackCache {
        TrackCache { capacity, entries: HashMap::new(), tick: 0, stats: CacheStats::default() }
    }

    /// Look up a track, refreshing its recency.
    pub fn get(&mut self, id: TrackId) -> Option<&[u8]> {
        self.tick += 1;
        let tick = self.tick;
        match self.entries.get_mut(&id) {
            Some((last, data)) => {
                *last = tick;
                self.stats.hits += 1;
                Some(&*data)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Insert (or refresh) a track payload, evicting the least recently used
    /// entry if full.
    pub fn put(&mut self, id: TrackId, data: Vec<u8>) {
        self.tick += 1;
        if self.capacity == 0 {
            return;
        }
        if !self.entries.contains_key(&id) && self.entries.len() >= self.capacity {
            if let Some((&victim, _)) = self.entries.iter().min_by_key(|(_, (last, _))| *last) {
                self.entries.remove(&victim);
            }
        }
        self.entries.insert(id, (self.tick, data));
    }

    /// Drop a track (it has been superseded by a shadow copy).
    pub fn invalidate(&mut self, id: TrackId) {
        self.entries.remove(&id);
    }

    /// Drop everything (recovery).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Reset counters.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Number of cached tracks.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_and_miss_accounting() {
        let mut c = TrackCache::new(2);
        assert!(c.get(TrackId(1)).is_none());
        c.put(TrackId(1), vec![1]);
        assert_eq!(c.get(TrackId(1)), Some(&[1u8][..]));
        let s = c.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut c = TrackCache::new(2);
        c.put(TrackId(1), vec![1]);
        c.put(TrackId(2), vec![2]);
        let _ = c.get(TrackId(1)); // 1 is now most recent
        c.put(TrackId(3), vec![3]); // evicts 2
        assert!(c.get(TrackId(1)).is_some());
        assert!(c.get(TrackId(2)).is_none());
        assert!(c.get(TrackId(3)).is_some());
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn refresh_does_not_grow() {
        let mut c = TrackCache::new(2);
        c.put(TrackId(1), vec![1]);
        c.put(TrackId(1), vec![9]);
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(TrackId(1)), Some(&[9u8][..]));
    }

    #[test]
    fn zero_capacity_never_stores() {
        let mut c = TrackCache::new(0);
        c.put(TrackId(1), vec![1]);
        assert!(c.get(TrackId(1)).is_none());
    }

    #[test]
    fn invalidate_removes() {
        let mut c = TrackCache::new(4);
        c.put(TrackId(1), vec![1]);
        c.invalidate(TrackId(1));
        assert!(c.get(TrackId(1)).is_none());
    }
}
