//! The Track Manager's cache.
//!
//! §6: "The Track Manager schedules reads and writes of tracks." Reads are
//! served through an LRU cache of track payloads; hit/miss counters feed the
//! clustering experiments (C7).

use crate::disk::TrackId;
use gemstone_telemetry::{Counter, Journal, JournalEvent};
use std::collections::{HashMap, VecDeque};

/// Cache statistics.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    /// Entries pushed out by capacity pressure (invalidations not counted).
    pub evictions: u64,
    /// Entries filled on the read path (a miss pulled the track from disk).
    pub fills_read: u64,
    /// Entries filled on the commit path (a safe-write group populated the
    /// cache with the tracks it just wrote).
    pub fills_commit: u64,
}

/// Why a track payload is entering the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FillSource {
    /// A read miss pulled the track from disk.
    ReadThrough,
    /// A commit wrote the track and populates the cache write-through.
    CommitWrite,
}

/// Live counters behind [`CacheStats`]; shared cells for registry binding.
#[derive(Debug, Default)]
pub struct CacheCounters {
    pub hits: Counter,
    pub misses: Counter,
    pub evictions: Counter,
    pub fills_read: Counter,
    pub fills_commit: Counter,
}

impl CacheCounters {
    fn snapshot(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.get(),
            misses: self.misses.get(),
            evictions: self.evictions.get(),
            fills_read: self.fills_read.get(),
            fills_commit: self.fills_commit.get(),
        }
    }

    fn reset(&self) {
        self.hits.reset();
        self.misses.reset();
        self.evictions.reset();
        self.fills_read.reset();
        self.fills_commit.reset();
    }

    fn share(&self) -> CacheCounters {
        CacheCounters {
            hits: self.hits.clone(),
            misses: self.misses.clone(),
            evictions: self.evictions.clone(),
            fills_read: self.fills_read.clone(),
            fills_commit: self.fills_commit.clone(),
        }
    }
}

/// An LRU cache of track payloads (checksum already stripped).
///
/// Recency is an append-only queue of `(track, stamp)` touch records; each
/// entry stores its latest stamp, and queue records with stale stamps are
/// tombstones skipped during eviction. Every operation — including eviction
/// — is amortized O(1): a touch record is pushed once and popped at most
/// once, where a `min_by_key` sweep would make each insert O(len).
#[derive(Debug)]
pub struct TrackCache {
    capacity: usize,
    entries: HashMap<TrackId, (u64, Vec<u8>)>,
    /// Touch order, oldest first; stale stamps are tombstones.
    recency: VecDeque<(TrackId, u64)>,
    tick: u64,
    stats: CacheCounters,
    journal: Option<Journal>,
}

impl TrackCache {
    /// A cache holding up to `capacity` tracks.
    pub fn new(capacity: usize) -> TrackCache {
        TrackCache {
            capacity,
            entries: HashMap::new(),
            recency: VecDeque::new(),
            tick: 0,
            stats: CacheCounters::default(),
            journal: None,
        }
    }

    /// Capacity in tracks.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Attach the flight recorder; every counter move below also emits a
    /// journal event.
    pub fn attach_journal(&mut self, journal: Journal) {
        self.journal = Some(journal);
    }

    #[inline]
    fn journal_on(&self) -> Option<&Journal> {
        match &self.journal {
            Some(j) if j.enabled() => Some(j),
            _ => None,
        }
    }

    /// Record a touch of `id` now, returning the stamp. The caller must
    /// store the stamp into the entry before the next [`Self::compact`].
    fn touch(&mut self, id: TrackId) -> u64 {
        self.tick += 1;
        self.recency.push_back((id, self.tick));
        self.tick
    }

    /// Keep tombstones from accumulating without bound under hit-heavy
    /// workloads; the sweep cost amortizes over the pushes that grew it.
    fn compact(&mut self) {
        if self.recency.len() > self.entries.len() * 2 + 16 {
            let entries = &self.entries;
            self.recency.retain(|(t, stamp)| entries.get(t).is_some_and(|(s, _)| s == stamp));
        }
    }

    /// Remove the least recently used entry (assumes one exists).
    fn evict_lru(&mut self) {
        while let Some((victim, stamp)) = self.recency.pop_front() {
            match self.entries.get(&victim) {
                // Live head record: this is the true LRU entry.
                Some((s, _)) if *s == stamp => {
                    self.entries.remove(&victim);
                    self.stats.evictions.inc();
                    if let Some(j) = self.journal_on() {
                        j.emit(&JournalEvent::CacheEvict { track: victim.0 as u64 });
                    }
                    return;
                }
                // Tombstone (entry re-touched later, or invalidated).
                _ => {}
            }
        }
    }

    /// Look up a track, refreshing its recency.
    pub fn get(&mut self, id: TrackId) -> Option<&[u8]> {
        if !self.entries.contains_key(&id) {
            self.stats.misses.inc();
            if let Some(j) = self.journal_on() {
                j.emit(&JournalEvent::CacheAccess { track: id.0 as u64, hit: false });
            }
            return None;
        }
        let stamp = self.touch(id);
        {
            let (last, _) = self.entries.get_mut(&id).expect("checked above");
            *last = stamp;
        }
        self.compact();
        self.stats.hits.inc();
        if let Some(j) = self.journal_on() {
            j.emit(&JournalEvent::CacheAccess { track: id.0 as u64, hit: true });
        }
        let (_, data) = self.entries.get(&id).expect("checked above");
        Some(data.as_slice())
    }

    /// Insert (or refresh) a track payload on the read path, evicting the
    /// least recently used entry if full.
    pub fn put(&mut self, id: TrackId, data: Vec<u8>) {
        self.put_from(id, data, FillSource::ReadThrough);
    }

    /// Insert (or refresh) a track payload, attributing the fill to
    /// `source` (read-through miss vs. commit-path write-through).
    pub fn put_from(&mut self, id: TrackId, data: Vec<u8>, source: FillSource) {
        if self.capacity == 0 {
            return;
        }
        if !self.entries.contains_key(&id) && self.entries.len() >= self.capacity {
            self.evict_lru();
        }
        let stamp = self.touch(id);
        self.entries.insert(id, (stamp, data));
        self.compact();
        match source {
            FillSource::ReadThrough => self.stats.fills_read.inc(),
            FillSource::CommitWrite => self.stats.fills_commit.inc(),
        }
        if let Some(j) = self.journal_on() {
            j.emit(&JournalEvent::CacheFill {
                track: id.0 as u64,
                commit: matches!(source, FillSource::CommitWrite),
            });
        }
    }

    /// Drop a track (it has been superseded by a shadow copy). Its queue
    /// records become tombstones.
    pub fn invalidate(&mut self, id: TrackId) {
        self.entries.remove(&id);
    }

    /// Drop everything (recovery).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.recency.clear();
    }

    /// Hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        self.stats.snapshot()
    }

    /// The live counter cells (for registry binding).
    pub fn counters(&self) -> CacheCounters {
        self.stats.share()
    }

    /// Reset counters.
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    /// Number of cached tracks.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_and_miss_accounting() {
        let mut c = TrackCache::new(2);
        assert!(c.get(TrackId(1)).is_none());
        c.put(TrackId(1), vec![1]);
        assert_eq!(c.get(TrackId(1)), Some(&[1u8][..]));
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.evictions), (1, 1, 0));
    }

    #[test]
    fn fill_sources_counted_separately() {
        let mut c = TrackCache::new(2);
        c.put(TrackId(1), vec![1]); // read-through
        c.put_from(TrackId(2), vec![2], FillSource::CommitWrite);
        c.put_from(TrackId(2), vec![9], FillSource::CommitWrite); // refresh counts too
        let s = c.stats();
        assert_eq!((s.fills_read, s.fills_commit), (1, 2));
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut c = TrackCache::new(2);
        c.put(TrackId(1), vec![1]);
        c.put(TrackId(2), vec![2]);
        let _ = c.get(TrackId(1)); // 1 is now most recent
        c.put(TrackId(3), vec![3]); // evicts 2
        assert!(c.get(TrackId(1)).is_some());
        assert!(c.get(TrackId(2)).is_none());
        assert!(c.get(TrackId(3)).is_some());
        assert_eq!(c.len(), 2);
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn refresh_does_not_grow() {
        let mut c = TrackCache::new(2);
        c.put(TrackId(1), vec![1]);
        c.put(TrackId(1), vec![9]);
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(TrackId(1)), Some(&[9u8][..]));
    }

    #[test]
    fn zero_capacity_never_stores() {
        let mut c = TrackCache::new(0);
        c.put(TrackId(1), vec![1]);
        assert!(c.get(TrackId(1)).is_none());
    }

    #[test]
    fn invalidate_removes() {
        let mut c = TrackCache::new(4);
        c.put(TrackId(1), vec![1]);
        c.invalidate(TrackId(1));
        assert!(c.get(TrackId(1)).is_none());
    }

    #[test]
    fn eviction_order_survives_interleaved_gets_and_puts() {
        // Heavy interleaving of refreshes, re-puts, and invalidations: the
        // tombstoned queue must still evict in exact LRU order.
        let mut c = TrackCache::new(3);
        c.put(TrackId(1), vec![1]);
        c.put(TrackId(2), vec![2]);
        c.put(TrackId(3), vec![3]);
        // Touch order now 1, 2, 3. Refresh 1 twice, 2 once (stale records
        // for both pile up in the queue).
        let _ = c.get(TrackId(1));
        let _ = c.get(TrackId(2));
        let _ = c.get(TrackId(1));
        // LRU order: 3, 2, 1. Insert 4 → evicts 3.
        c.put(TrackId(4), vec![4]);
        assert!(c.get(TrackId(3)).is_none(), "3 was LRU");
        assert_eq!(c.len(), 3);
        // Re-put of 2 refreshes it. LRU order: 1, 4, 2. Insert 5 → evicts 1.
        c.put(TrackId(2), vec![22]);
        c.put(TrackId(5), vec![5]);
        assert!(c.get(TrackId(1)).is_none(), "1 was LRU");
        assert_eq!(c.get(TrackId(2)), Some(&[22u8][..]), "re-put payload survives");
        // That get refreshed 2: LRU order is now 4, 5, 2. Invalidate the
        // current LRU (4); its queue records become tombstones eviction must
        // skip over.
        c.invalidate(TrackId(4));
        c.put(TrackId(6), vec![6]); // room after the invalidate — no eviction
        assert_eq!(c.len(), 3);
        c.put(TrackId(7), vec![7]); // evicts 5 (oldest live touch; 4 skipped)
        assert!(c.get(TrackId(5)).is_none(), "5 evicted after invalidated 4 skipped");
        assert!(c.get(TrackId(2)).is_some());
        assert!(c.get(TrackId(6)).is_some());
        assert!(c.get(TrackId(7)).is_some());
    }

    #[test]
    fn long_interleaving_matches_reference_lru() {
        // Pseudo-random get/put stream checked against an O(n²) reference
        // implementation.
        #[derive(Default)]
        struct RefLru {
            order: Vec<(u32, Vec<u8>)>, // oldest first
        }
        impl RefLru {
            fn get(&mut self, id: u32) -> Option<Vec<u8>> {
                let pos = self.order.iter().position(|(t, _)| *t == id)?;
                let e = self.order.remove(pos);
                let v = e.1.clone();
                self.order.push(e);
                Some(v)
            }
            fn put(&mut self, id: u32, data: Vec<u8>, cap: usize) {
                if let Some(pos) = self.order.iter().position(|(t, _)| *t == id) {
                    self.order.remove(pos);
                } else if self.order.len() >= cap {
                    self.order.remove(0);
                }
                self.order.push((id, data));
            }
        }

        let mut c = TrackCache::new(4);
        let mut r = RefLru::default();
        let mut state = 0x2545F491u64;
        for step in 0..2000u64 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let id = ((state >> 33) % 10) as u32;
            match (state >> 13) % 3 {
                0 => {
                    let got = c.get(TrackId(id)).map(|b| b.to_vec());
                    assert_eq!(got, r.get(id), "step {step}: get({id}) diverged");
                }
                1 => {
                    let payload = vec![(step % 251) as u8];
                    c.put(TrackId(id), payload.clone());
                    r.put(id, payload, 4);
                }
                _ => {
                    c.invalidate(TrackId(id));
                    if let Some(pos) = r.order.iter().position(|(t, _)| *t == id) {
                        r.order.remove(pos);
                    }
                }
            }
            assert_eq!(c.len(), r.order.len(), "step {step}: size diverged");
        }
    }
}
