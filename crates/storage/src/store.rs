//! The permanent store: the disk side of the Object Manager.
//!
//! Plays the §6 roles end to end: the **Linker** ("incorporates updates made
//! by a transaction in the permanent database at commit time"), the
//! **Boxer**, the **GOOP table** ("The GOOP is resolved through a global
//! object table"), and drives the **Commit Manager**. Committed objects are
//! faulted in from tracks on demand and cached; the object cache can be
//! bounded to force faulting for the LOOM comparison (C7).
//!
//! # Concurrency
//!
//! Every operation takes `&self`; sessions on different threads fault,
//! read and commit against one shared store. The internal locking is
//! fine-grained so that the common path — faulting a committed object —
//! never serializes behind a committing writer:
//!
//! - committed object images live in [`OBJ_SHARDS`] `RwLock` shards keyed
//!   by GOOP, each holding `Arc<PersistentObject>` — a fault hands out a
//!   cheap `Arc` clone and readers then touch no store lock at all;
//! - the track cache is a [`ShardedTrackCache`] (lock-striped by track);
//! - the GOOP table (`locations`) is one `RwLock` map, read per fault,
//!   extended only at commit publish;
//! - all commit-time mutable state (catalog, staged metadata, allocation
//!   frontiers) sits behind the single `writer` mutex — commits are
//!   serialized, which the §6 shadow-track design requires anyway (one
//!   safe-write group at a time owns the track frontier);
//! - the simulated disk array has its own mutex, held only across actual
//!   track I/O.
//!
//! Commits are copy-on-write: the Linker applies deltas to *private clones*
//! of the touched objects, the whole group is safe-written, and only after
//! the disk succeeds are the new `Arc`s, locations and root published.
//! A failed commit therefore rolls back for free — shared state was never
//! touched — while concurrent readers keep resolving against the old
//! images throughout. Lock order (outermost first):
//! `writer → disk → objects-shard → locations → root → evict`;
//! no path holds two of these except `evict → objects-shard` during
//! bounded-cache eviction.

use crate::boxer;
use crate::cache::{CacheCounters, CacheStats, FillSource, ShardedTrackCache};
use crate::commit::{self, RecoveryReport, FIRST_DATA_TRACK};
use crate::disk::{DiskArray, DiskCounters, DiskStats, TrackDisk, TrackId, TRACK_HEADER};
use crate::format::{self, Catalog, GoopPage, Location, Root, GOOP_PAGE_SPAN};
use crate::pobj::{ObjectDelta, PersistentObject};
use gemstone_object::{GemError, GemResult, Goop};
use gemstone_telemetry::{Counter, Histogram, Journal, JournalEvent, SpanKind, Tracer};
use gemstone_temporal::TxnTime;
use parking_lot::{Mutex, RwLock};
use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Object-image shards; GOOPs are striped round-robin so neighboring
/// allocations land on different locks.
pub const OBJ_SHARDS: usize = 8;

/// Build the replica set of a file-backed volume: replica 0 lives at
/// `path`, replica `i` beside it at `<path>.r{i}`.
fn file_replicas<D: TrackDisk + 'static>(
    path: &std::path::Path,
    n: usize,
    mut make: impl FnMut(std::path::PathBuf) -> GemResult<D>,
) -> GemResult<Vec<Box<dyn TrackDisk>>> {
    (0..n)
        .map(|i| {
            let p = if i == 0 {
                path.to_path_buf()
            } else {
                std::path::PathBuf::from(format!("{}.r{i}", path.display()))
            };
            Ok(Box::new(make(p)?) as Box<dyn TrackDisk>)
        })
        .collect()
}

/// How one commit's storage leg spent its time, returned by
/// [`PermanentStore::commit_batch_traced`] so the session can assemble a
/// full commit timeline (snapshot age / validation / safe-write / fsync /
/// publish) without reaching into the disk layer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CommitPhases {
    /// Wall microseconds inside the safe-write group (all track writes on
    /// every replica plus the durability barriers).
    pub safe_write_us: u64,
    /// The slice of `safe_write_us` spent inside fsync barriers on the
    /// primary replica.
    pub fsync_us: u64,
}

/// Store construction parameters.
#[derive(Debug, Clone, Copy)]
pub struct StoreConfig {
    /// Track size in bytes (includes the [`TRACK_HEADER`]).
    pub track_size: usize,
    /// Track-cache capacity, in tracks.
    pub cache_tracks: usize,
    /// Number of disk replicas (§6 replication).
    pub replicas: usize,
}

impl Default for StoreConfig {
    fn default() -> StoreConfig {
        StoreConfig { track_size: 8192, cache_tracks: 256, replicas: 1 }
    }
}

/// Store-level counters.
#[derive(Debug, Default, Clone, Copy)]
pub struct StoreStats {
    /// Commits applied.
    pub commits: u64,
    /// Objects faulted in from tracks.
    pub object_faults: u64,
    /// Object images written.
    pub objects_written: u64,
}

/// Live counters behind [`StoreStats`]; shared cells for registry binding.
#[derive(Debug, Default)]
pub struct StoreCounters {
    pub commits: Counter,
    pub object_faults: Counter,
    pub objects_written: Counter,
}

impl StoreCounters {
    fn snapshot(&self) -> StoreStats {
        StoreStats {
            commits: self.commits.get(),
            object_faults: self.object_faults.get(),
            objects_written: self.objects_written.get(),
        }
    }

    fn reset(&self) {
        self.commits.reset();
        self.object_faults.reset();
        self.objects_written.reset();
    }

    fn share(&self) -> StoreCounters {
        StoreCounters {
            commits: self.commits.clone(),
            object_faults: self.object_faults.clone(),
            objects_written: self.objects_written.clone(),
        }
    }
}

/// Everything only a committing writer touches, under one mutex: the
/// catalog and metadata staging plus both allocation frontiers.
#[derive(Debug)]
struct WriterState {
    catalog: Catalog,
    /// Metadata blobs staged since the last commit (key → bytes).
    staged_metas: BTreeMap<u8, Vec<u8>>,
    next_goop: u64,
    next_track: u32,
}

/// Bounded-object-cache state: one *global* FIFO across all object shards,
/// so `set_object_cache_limit(Some(n))` means n objects total — the LOOM
/// C7 comparison depends on a global bound, not a per-shard one.
///
/// Invariant: `order` holds exactly one entry per resident object (an
/// entry is pushed when an image is newly installed in a shard and popped
/// when that image is evicted), so `order.len()` *is* the resident count.
#[derive(Debug, Default)]
struct EvictState {
    order: VecDeque<Goop>,
    limit: Option<usize>,
}

/// The permanent database. All operations take `&self`; see the module
/// docs for the locking design.
pub struct PermanentStore {
    disk: Mutex<DiskArray>,
    cache: ShardedTrackCache,
    /// Committed objects currently in memory (clean copies of disk state),
    /// striped by GOOP.
    objects: Vec<RwLock<HashMap<Goop, Arc<PersistentObject>>>>,
    /// The GOOP table. Kept live (extended at publish, never cloned per
    /// commit): snapshot readers can only reach a GOOP through another
    /// object's state *as of their snapshot*, so they never look up an
    /// identity that did not exist at that time.
    locations: RwLock<HashMap<Goop, Location>>,
    writer: Mutex<WriterState>,
    root: RwLock<Root>,
    evict: Mutex<EvictState>,
    /// Track size in bytes (immutable after construction; cached here so
    /// the read path never locks the disk just to size a buffer).
    track_size: usize,
    stats: StoreCounters,
    /// What the last reopening saw ([`RecoveryReport::default`] for a
    /// freshly created volume, which performed no recovery).
    recovery_report: RecoveryReport,
    /// Span recorder for track-I/O, if the owning database traces.
    tracer: Option<Tracer>,
    /// Flight-recorder handle for store-level events (faults, commit
    /// groups). Checked with one atomic load; `None` until attached.
    journal: Option<Journal>,
    /// Simulated per-track rotational latency (µs) charged on cache-miss
    /// reads, *outside every lock*: a real disk serves concurrent requests
    /// at queue depth > 1, so the disk mutex models only the controller's
    /// in-memory critical section. Benchmarks dial this up to measure
    /// whether concurrent sessions overlap their stalls — which they can
    /// only do if no shared lock spans the fault path.
    read_stall_us: AtomicU64,
}

impl PermanentStore {
    fn assemble(
        disk: DiskArray,
        cache: ShardedTrackCache,
        locations: HashMap<Goop, Location>,
        catalog: Catalog,
        root: Root,
        recovery_report: RecoveryReport,
    ) -> PermanentStore {
        PermanentStore {
            track_size: disk.track_size(),
            disk: Mutex::new(disk),
            cache,
            objects: (0..OBJ_SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
            locations: RwLock::new(locations),
            writer: Mutex::new(WriterState {
                catalog,
                staged_metas: BTreeMap::new(),
                next_goop: root.next_goop,
                next_track: root.next_track,
            }),
            root: RwLock::new(root),
            evict: Mutex::new(EvictState::default()),
            stats: StoreCounters::default(),
            recovery_report,
            tracer: None,
            journal: None,
            read_stall_us: AtomicU64::new(0),
        }
    }

    /// Format a fresh database volume on a simulated disk.
    pub fn create(cfg: StoreConfig) -> GemResult<PermanentStore> {
        let disk = DiskArray::new(cfg.track_size, cfg.replicas.max(1));
        PermanentStore::create_on(disk, cfg.cache_tracks)
    }

    /// Format a fresh database volume in a real file at `path` (replica `i`
    /// of a replicated config lives beside it at `<path>.r{i}`). The file
    /// backend gives the §4 storage story its missing half: the safe-write
    /// groups land via `pwrite` + batched `fdatasync`, so committed state
    /// survives the death of the process.
    pub fn create_file(
        path: impl AsRef<std::path::Path>,
        cfg: StoreConfig,
    ) -> GemResult<PermanentStore> {
        let disk =
            DiskArray::from_backends(file_replicas(path.as_ref(), cfg.replicas.max(1), |p| {
                crate::file_disk::FaultFile::create(p, cfg.track_size)
            })?);
        PermanentStore::create_on(disk, cfg.cache_tracks)
    }

    /// Recover a file-backed volume created by [`PermanentStore::create_file`].
    pub fn open_file(
        path: impl AsRef<std::path::Path>,
        replicas: usize,
        cache_tracks: usize,
    ) -> GemResult<PermanentStore> {
        let disk = DiskArray::from_backends(file_replicas(path.as_ref(), replicas.max(1), |p| {
            crate::file_disk::FaultFile::open(p)
        })?);
        PermanentStore::open(disk, cache_tracks)
    }

    /// Format a fresh volume onto an already-constructed disk array (any
    /// backend): write the initial empty commit so a valid root always
    /// exists, then assemble the store.
    pub fn create_on(mut disk: DiskArray, cache_tracks: usize) -> GemResult<PermanentStore> {
        let root = Root {
            epoch: 1,
            commit_time: TxnTime::EPOCH,
            next_goop: 1,
            next_track: FIRST_DATA_TRACK + 1,
            catalog: Location {
                extent_first: TrackId(FIRST_DATA_TRACK),
                extent_len: 1,
                offset: 0,
                len: format::put_catalog(&Catalog::default()).len() as u32,
            },
        };
        let cat_blob = format::put_catalog(&Catalog::default());
        commit::safe_write_group(&mut disk, &[(TrackId(FIRST_DATA_TRACK), cat_blob)], &root)?;
        Ok(PermanentStore::assemble(
            disk,
            ShardedTrackCache::new(cache_tracks),
            HashMap::new(),
            Catalog::default(),
            root,
            RecoveryReport::default(),
        ))
    }

    /// Open an existing volume: recovery. Reads the newest valid root,
    /// loads the catalog and the GOOP table; objects fault in lazily. The
    /// whole pass is read-only, so a crash *during* recovery leaves the
    /// volume untouched and a retry sees the identical state. What was
    /// seen and decided is recorded in [`PermanentStore::recovery_report`].
    pub fn open(mut disk: DiskArray, cache_tracks: usize) -> GemResult<PermanentStore> {
        let reads_before = disk.stats().track_reads;
        let (root, mut report) = commit::recover_root_report(&mut disk)?;
        let root_reads = disk.stats().track_reads - reads_before;
        let cache = ShardedTrackCache::new(cache_tracks);
        let payload = disk.track_size() - TRACK_HEADER;
        let cat_bytes = read_blob_with(&mut disk, &cache, &root.catalog, payload)?;
        let catalog = format::get_catalog(&cat_bytes)?;
        let mut locations = HashMap::new();
        for loc in catalog.goop_pages.values() {
            let page_bytes = read_blob_with(&mut disk, &cache, loc, payload)?;
            for (goop, l) in format::get_goop_page(&page_bytes)? {
                locations.insert(Goop(goop), l);
            }
        }
        report.reopen_reads = disk.stats().track_reads - reads_before;
        report.tracks_salvaged = (report.reopen_reads - root_reads) as u32 + report.roots_valid;
        report.tracks_discarded = disk.tracks_beyond(root.next_track);
        Ok(PermanentStore::assemble(disk, cache, locations, catalog, root, report))
    }

    /// Tear down to the raw disk (crash/recovery tests re-open it).
    pub fn into_disk(self) -> DiskArray {
        self.disk.into_inner()
    }

    /// Direct access to the disk (crash injection in tests/benches; needs
    /// exclusive ownership, so no session can be mid-operation).
    pub fn disk_mut(&mut self) -> &mut DiskArray {
        self.disk.get_mut()
    }

    /// Run `f` against the locked disk (diagnostics, fault planning from
    /// shared contexts).
    pub fn with_disk<R>(&self, f: impl FnOnce(&mut DiskArray) -> R) -> R {
        f(&mut self.disk.lock())
    }

    /// Bound the in-memory object cache (evicting clean residents FIFO);
    /// `None` = unbounded. The bound is global across all object shards.
    pub fn set_object_cache_limit(&self, limit: Option<usize>) {
        let mut ev = self.evict.lock();
        ev.limit = limit;
        self.enforce_cache_limit_locked(&mut ev, None);
    }

    /// Simulate rotational latency: every cache-miss track read sleeps
    /// `us` microseconds before touching the disk mutex. Zero (the
    /// default) disables the stall. See the `read_stall_us` field docs —
    /// this is how the contention benchmark measures fault overlap.
    pub fn set_read_stall_us(&self, us: u64) {
        self.read_stall_us.store(us, Ordering::Relaxed);
    }

    /// Allocate a fresh permanent identity.
    pub fn alloc_goop(&self) -> Goop {
        let mut w = self.writer.lock();
        let g = Goop(w.next_goop);
        w.next_goop += 1;
        g
    }

    /// True if the identity exists in the committed database.
    pub fn contains(&self, goop: Goop) -> bool {
        self.locations.read().contains_key(&goop) || self.shard(goop).read().contains_key(&goop)
    }

    /// Number of committed objects.
    pub fn object_count(&self) -> usize {
        self.locations.read().len()
    }

    #[inline]
    fn shard(&self, goop: Goop) -> &RwLock<HashMap<Goop, Arc<PersistentObject>>> {
        &self.objects[goop.0 as usize % OBJ_SHARDS]
    }

    /// Fetch a committed object, faulting it from tracks if necessary.
    /// The returned `Arc` is immutable committed state: readers hold it
    /// across arbitrary work without pinning any store lock.
    pub fn get(&self, goop: Goop) -> GemResult<Arc<PersistentObject>> {
        self.get_traced(goop, 0, 0)
    }

    /// [`PermanentStore::get`] with span attribution: a fault's track-I/O
    /// span is credited to `session` under parent span `parent` (0 = none).
    /// Attribution rides the call instead of store state so concurrent
    /// sessions cannot mislabel each other's I/O.
    pub fn get_traced(
        &self,
        goop: Goop,
        session: u64,
        parent: u64,
    ) -> GemResult<Arc<PersistentObject>> {
        if let Some(obj) = self.shard(goop).read().get(&goop) {
            return Ok(obj.clone());
        }
        let loc = *self
            .locations
            .read()
            .get(&goop)
            .ok_or_else(|| GemError::Corrupt(format!("unknown {goop:?}")))?;
        let span =
            self.tracer.as_ref().map(|t| t.begin(SpanKind::TrackIo, session, parent, "track-read"));
        let bytes = self.read_blob(&loc)?;
        if let (Some(t), Some(sp)) = (&self.tracer, span) {
            t.end(sp);
        }
        let obj = Arc::new(format::get_object(&bytes)?);
        // Install, unless a racing faulter beat us — first one in wins and
        // is the only one that counts the fault and the residency.
        {
            let mut shard = self.shard(goop).write();
            if let Some(existing) = shard.get(&goop) {
                return Ok(existing.clone());
            }
            shard.insert(goop, obj.clone());
        }
        self.stats.object_faults.inc();
        if let Some(j) = self.journal_on() {
            j.emit(&JournalEvent::ObjectFault { goop: goop.0 });
        }
        self.note_resident(goop);
        Ok(obj)
    }

    /// Stage a metadata blob (symbol table, class table, globals…) to be
    /// persisted with the next commit.
    pub fn set_meta(&self, key: u8, bytes: Vec<u8>) {
        self.writer.lock().staged_metas.insert(key, bytes);
    }

    /// Read a metadata blob (staged value wins over the committed one).
    pub fn get_meta(&self, key: u8) -> GemResult<Option<Vec<u8>>> {
        let loc = {
            let w = self.writer.lock();
            if let Some(b) = w.staged_metas.get(&key) {
                return Ok(Some(b.clone()));
            }
            w.catalog.metas.get(&key).copied()
        };
        match loc {
            None => Ok(None),
            Some(loc) => Ok(Some(self.read_blob(&loc)?)),
        }
    }

    /// The primary-extent track holding `goop`'s committed image, when
    /// the object has one (an object created but never committed has no
    /// home yet).  Forensics uses this to map conflicting objects onto
    /// disk tracks; lock-wise it takes only the locations read lock, so
    /// it is safe to call from under the transaction manager.
    pub fn home_track(&self, goop: Goop) -> Option<u64> {
        let loc = *self.locations.read().get(&goop)?;
        let payload = self.track_size - TRACK_HEADER;
        Some(loc.extent_first.0 as u64 + (loc.offset as usize / payload) as u64)
    }

    /// Apply a validated transaction's writes at commit time `time`:
    /// Linker → Boxer → Commit Manager. All-or-nothing, copy-on-write: the
    /// deltas are applied to private clones of the touched objects and
    /// nothing shared is mutated until the safe-write group reaches disk,
    /// so a failed commit leaves memory exactly as it was — and staged
    /// metadata stays staged, traveling with the next successful group
    /// (the crash matrix caught an earlier take-then-fail version silently
    /// dropping it).
    pub fn commit_batch(&self, time: TxnTime, deltas: &[ObjectDelta]) -> GemResult<()> {
        self.commit_batch_traced(time, deltas, 0, 0).map(|_| ())
    }

    /// [`PermanentStore::commit_batch`] with span attribution for the
    /// safe-write-group I/O (0 = unattributed).  Returns the storage-side
    /// phase timings so the session can assemble a full commit timeline.
    pub fn commit_batch_traced(
        &self,
        time: TxnTime,
        deltas: &[ObjectDelta],
        session: u64,
        parent: u64,
    ) -> GemResult<CommitPhases> {
        let mut w = self.writer.lock();

        // 1. Linker: apply deltas to private clones of the permanent
        //    objects (copy-on-write — published images stay untouched).
        let mut touched: Vec<Goop> = Vec::with_capacity(deltas.len());
        let mut images: HashMap<Goop, PersistentObject> = HashMap::new();
        for d in deltas {
            if let std::collections::hash_map::Entry::Vacant(slot) = images.entry(d.goop) {
                let base = if d.is_new {
                    match self.shard(d.goop).read().get(&d.goop) {
                        Some(existing) => (**existing).clone(),
                        None => PersistentObject::new(d.goop, d.class, d.segment),
                    }
                } else {
                    (*self.get(d.goop)?).clone() // fault in before updating
                };
                slot.insert(base);
                touched.push(d.goop);
            }
            images.get_mut(&d.goop).expect("just inserted").apply_delta(d, time);
        }

        self.write_images(&mut w, time, touched, images, session, parent)
    }

    /// Boxer → Commit Manager → publish, shared by [`commit_batch`] and
    /// [`archive_history_before`]: serialize `images` (in `touched` order),
    /// safe-write the group, and only on disk success publish the new
    /// `Arc`s, locations, catalog and root.
    ///
    /// [`commit_batch`]: PermanentStore::commit_batch
    /// [`archive_history_before`]: PermanentStore::archive_history_before
    fn write_images(
        &self,
        w: &mut WriterState,
        time: TxnTime,
        touched: Vec<Goop>,
        images: HashMap<Goop, PersistentObject>,
        session: u64,
        parent: u64,
    ) -> GemResult<CommitPhases> {
        let payload = self.track_size - TRACK_HEADER;

        // 2. Boxer: serialize touched objects into extent A.
        let blobs: Vec<Vec<u8>> = touched.iter().map(|g| format::put_object(&images[g])).collect();
        let (obj_locs, writes_a) = boxer::pack(&blobs, w.next_track, payload);
        let track_after_a = w.next_track + writes_a.len() as u32;
        let new_locs: HashMap<Goop, Location> =
            touched.iter().copied().zip(obj_locs.iter().copied()).collect();

        // 3. Rewrite dirty GOOP-table pages into extent B (with staged
        //    metadata blobs). The page set is ordered so a replayed commit
        //    produces a byte-identical group — the crash matrix depends on
        //    write index k meaning the same write on every run. Pages merge
        //    the published table with this commit's fresh locations; the
        //    shared table itself is not touched until publish.
        let dirty_pages: BTreeSet<u32> =
            touched.iter().map(|g| (g.0 / GOOP_PAGE_SPAN) as u32).collect();
        let mut page_blobs: Vec<(u32, Vec<u8>)> = Vec::new();
        {
            let committed = self.locations.read();
            for &page_no in &dirty_pages {
                let lo = page_no as u64 * GOOP_PAGE_SPAN;
                let hi = lo + GOOP_PAGE_SPAN;
                let mut page: GoopPage = committed
                    .iter()
                    .filter(|(g, _)| (lo..hi).contains(&g.0))
                    .map(|(g, l)| (g.0, *l))
                    .collect();
                page.extend(
                    new_locs
                        .iter()
                        .filter(|(g, _)| (lo..hi).contains(&g.0))
                        .map(|(g, l)| (g.0, *l)),
                );
                page_blobs.push((page_no, format::put_goop_page(&page)));
            }
        }
        // Metadata is *borrowed*, not drained: a failed safe write must
        // leave it staged for the next attempt.
        let metas: Vec<(u8, &Vec<u8>)> = w.staged_metas.iter().map(|(k, b)| (*k, b)).collect();
        let b_blobs: Vec<Vec<u8>> = page_blobs
            .iter()
            .map(|(_, b)| b.clone())
            .chain(metas.iter().map(|(_, b)| (*b).clone()))
            .collect();
        let (b_locs, writes_b) = boxer::pack(&b_blobs, track_after_a, payload);
        let track_after_b = track_after_a + writes_b.len() as u32;
        let mut new_catalog = w.catalog.clone();
        for ((page_no, _), loc) in page_blobs.iter().zip(&b_locs) {
            new_catalog.goop_pages.insert(*page_no, *loc);
        }
        for ((key, _), loc) in metas.iter().zip(&b_locs[page_blobs.len()..]) {
            new_catalog.metas.insert(*key, *loc);
        }

        // 4. Catalog into extent C.
        let cat_blob = format::put_catalog(&new_catalog);
        let (cat_locs, writes_c) = boxer::pack(&[cat_blob], track_after_b, payload);
        let track_after_c = track_after_b + writes_c.len() as u32;

        // 5. Commit Manager: safe-write the whole group, then flip the root.
        let new_root = Root {
            epoch: self.root.read().epoch + 1,
            commit_time: time,
            next_goop: w.next_goop,
            next_track: track_after_c,
            catalog: cat_locs[0],
        };
        let mut group = writes_a;
        group.extend(writes_b);
        group.extend(writes_c);
        let span = self
            .tracer
            .as_ref()
            .map(|t| t.begin(SpanKind::TrackIo, session, parent, "safe-write-group"));
        let (wrote, backend, phases) = {
            let mut disk = self.disk.lock();
            // Phase timing: wall time for the whole group, and the slice
            // of it spent inside durability barriers — diffed off the
            // primary replica's live fsync-latency histogram while the
            // disk lock serializes all other sync sources.
            let fsync_before = disk.counters().fsync_us.snapshot().sum;
            let started = std::time::Instant::now();
            let r = commit::safe_write_group(&mut disk, &group, &new_root);
            let safe_write_us = started.elapsed().as_micros() as u64;
            let fsync_us = disk.counters().fsync_us.snapshot().sum.saturating_sub(fsync_before);
            if r.is_ok() {
                disk.note_safe_write_group(group.len() as u64 + 1);
            }
            (r, disk.backend_name(), CommitPhases { safe_write_us, fsync_us })
        };
        if let (Some(t), Some(sp)) = (&self.tracer, span) {
            t.end(sp);
        }
        wrote?; // failure: nothing shared was mutated — rollback is free
        let group_len = group.len() as u64;
        // Write-through: the tracks just committed are the hottest candidates
        // for the next read — populate the cache from the group payloads
        // (counted apart from read-through fills).
        for (track, payload_bytes) in group {
            self.cache.put_from(track, payload_bytes, FillSource::CommitWrite);
        }

        // 6. Success: publish. New images become the committed ones, the
        //    GOOP table and root advance, staged metadata is consumed.
        //    Readers that already hold old `Arc`s keep them — that is the
        //    snapshot they asked for.
        let mut fresh_residents: Vec<Goop> = Vec::new();
        for (g, obj) in images {
            if self.shard(g).write().insert(g, Arc::new(obj)).is_none() {
                fresh_residents.push(g);
            }
        }
        self.locations.write().extend(new_locs);
        w.catalog = new_catalog;
        w.next_track = track_after_c;
        w.staged_metas.clear();
        *self.root.write() = new_root;
        self.stats.commits.inc();
        self.stats.objects_written.add(touched.len() as u64);
        if let Some(j) = self.journal_on() {
            j.emit(&JournalEvent::SafeWriteGroup {
                tracks: group_len + 1,
                objects: touched.len() as u64,
                fsyncs: commit::FSYNCS_PER_GROUP,
                backend: backend.into(),
            });
        }
        {
            let mut ev = self.evict.lock();
            for g in fresh_residents {
                ev.order.push_back(g);
            }
            self.enforce_cache_limit_locked(&mut ev, None);
        }
        Ok(phases)
    }

    /// The database-administrator archive operation (§6: "A database
    /// administrator can explicitly move objects to other media … some
    /// objects in it may become temporarily or permanently inaccessible").
    /// Prunes committed associations strictly older than the state in force
    /// at `keep_from` across every object, returns the number of archived
    /// associations, and checkpoints the pruned image as one commit group at
    /// `time`. States at or after `keep_from` remain fully queryable.
    ///
    /// Runs under the writer lock for its whole span, so it cannot
    /// interleave with a commit; concurrent readers keep their old `Arc`s.
    pub fn archive_history_before(&self, keep_from: TxnTime, time: TxnTime) -> GemResult<usize> {
        let mut w = self.writer.lock();
        let goops = self.all_goops();
        let mut archived = 0usize;
        let mut touched = Vec::new();
        let mut images: HashMap<Goop, PersistentObject> = HashMap::new();
        for g in goops {
            let mut obj = (*self.get(g)?).clone();
            let mut pruned = 0;
            let names: Vec<_> = obj.elements.keys().copied().collect();
            for n in names {
                pruned += obj.elements.get_mut(&n).unwrap().prune_before(keep_from).len();
            }
            if let Some(bh) = &mut obj.bytes {
                pruned += bh.prune_before(keep_from).len();
            }
            if pruned > 0 {
                archived += pruned;
                touched.push(g);
                images.insert(g, obj);
            }
        }
        if archived == 0 {
            return Ok(0);
        }
        // Checkpoint: the pruned images land on fresh tracks under a new
        // root through the same pipeline a commit uses.
        self.write_images(&mut w, time, touched, images, 0, 0)?;
        Ok(archived)
    }

    /// Last committed root (epoch, time).
    pub fn root(&self) -> Root {
        *self.root.read()
    }

    /// What the reopening that produced this store saw and decided
    /// (all-default for a freshly created volume).
    pub fn recovery_report(&self) -> RecoveryReport {
        self.recovery_report
    }

    /// Store counters.
    pub fn stats(&self) -> StoreStats {
        self.stats.snapshot()
    }

    /// Live store counter cells (for registry binding).
    pub fn counters(&self) -> StoreCounters {
        self.stats.share()
    }

    /// Live track-cache counter cells (for registry binding).
    pub fn cache_counters(&self) -> CacheCounters {
        self.cache.counters()
    }

    /// Live per-shard track-cache (hit, miss) cells, shard 0 first (for
    /// registry binding).
    pub fn cache_shard_counters(&self) -> Vec<(Counter, Counter)> {
        self.cache.shard_counters()
    }

    /// Live primary-disk counter cells (for registry binding).
    pub fn disk_counters(&self) -> DiskCounters {
        self.disk.lock().counters()
    }

    /// The live safe-write-group size histogram (shared cells, for
    /// registry binding).
    pub fn group_size_histogram(&self) -> Histogram {
        self.disk.lock().group_size_histogram()
    }

    /// Attach a span recorder for track-I/O spans.
    pub fn attach_tracer(&mut self, tracer: Tracer) {
        self.tracer = Some(tracer);
    }

    /// Attach the flight recorder to the whole storage stack: the store's
    /// own event sites plus the track cache and the *primary* disk replica
    /// (the only replica whose counters are registry-bound, so journal
    /// replay stays 1:1 with the live metrics).
    pub fn attach_journal(&mut self, journal: Journal) {
        self.cache.attach_journal(journal.clone());
        self.disk.get_mut().attach_journal(journal.clone());
        self.journal = Some(journal);
    }

    #[inline]
    fn journal_on(&self) -> Option<&Journal> {
        match &self.journal {
            Some(j) if j.enabled() => Some(j),
            _ => None,
        }
    }

    /// Track-cache capacity in tracks (journal `cache_configured` events).
    pub fn cache_capacity(&self) -> usize {
        self.cache.capacity()
    }

    /// Disk counters.
    pub fn disk_stats(&self) -> DiskStats {
        self.disk.lock().stats()
    }

    /// Track-cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Reset all counters (benchmark hygiene).
    pub fn reset_stats(&self) {
        self.stats.reset();
        self.disk.lock().reset_stats();
        self.cache.reset_stats();
    }

    /// Iterate every committed identity (directory rebuild at recovery).
    pub fn all_goops(&self) -> Vec<Goop> {
        let mut v: Vec<Goop> = self.locations.read().keys().copied().collect();
        v.sort();
        v
    }

    /// Record a newly installed resident and enforce the bound, keeping
    /// the just-installed object itself off the victim list.
    fn note_resident(&self, goop: Goop) {
        let mut ev = self.evict.lock();
        ev.order.push_back(goop);
        self.enforce_cache_limit_locked(&mut ev, Some(goop));
    }

    /// FIFO-evict down to the bound. `keep` (the object that triggered the
    /// enforcement) is re-queued rather than evicted, tolerating a
    /// momentary overshoot of one. Lock order: the evict mutex is held and
    /// object-shard write locks are taken inside it — the one sanctioned
    /// nesting (see module docs).
    fn enforce_cache_limit_locked(&self, ev: &mut EvictState, keep: Option<Goop>) {
        let Some(limit) = ev.limit else { return };
        let mut kept_back = None;
        while ev.order.len() > limit {
            let Some(candidate) = ev.order.pop_front() else { break };
            if Some(candidate) == keep {
                kept_back = Some(candidate);
                if ev.order.len() <= limit {
                    break;
                }
                continue;
            }
            self.shard(candidate).write().remove(&candidate);
        }
        if let Some(k) = kept_back {
            ev.order.push_back(k);
        }
    }

    /// Read a blob at `loc` through the track cache, locking the disk only
    /// on a miss.
    fn read_blob(&self, loc: &Location) -> GemResult<Vec<u8>> {
        let stall = self.read_stall_us.load(Ordering::Relaxed);
        if stall > 0 {
            // One deterministic stall per blob read, outside every lock:
            // concurrent faulters sleep in parallel, exactly as requests
            // queued against a real disk at depth > 1. Charged per blob
            // (not per missed track) so the stall count per operation does
            // not vary with cross-thread cache pollination.
            std::thread::sleep(std::time::Duration::from_micros(stall));
        }
        let payload = self.track_size - TRACK_HEADER;
        let mut out = Vec::with_capacity(loc.len as usize);
        for (track, skip, take) in boxer::covering_tracks(loc, payload) {
            let hit = self
                .cache
                .with_track(track, |data| out.extend_from_slice(&data[skip..skip + take]));
            if hit.is_some() {
                continue;
            }
            let data = commit::read_checked(&mut self.disk.lock(), track)?;
            out.extend_from_slice(&data[skip..skip + take]);
            self.cache.put_from(track, data, FillSource::ReadThrough);
        }
        Ok(out)
    }
}

/// Read a blob at `loc` through the track cache from an exclusively owned
/// disk (the recovery pass, before the store is assembled).
fn read_blob_with(
    disk: &mut DiskArray,
    cache: &ShardedTrackCache,
    loc: &Location,
    track_payload: usize,
) -> GemResult<Vec<u8>> {
    let mut out = Vec::with_capacity(loc.len as usize);
    for (track, skip, take) in boxer::covering_tracks(loc, track_payload) {
        let hit = cache.with_track(track, |data| out.extend_from_slice(&data[skip..skip + take]));
        if hit.is_some() {
            continue;
        }
        let data = commit::read_checked(disk, track)?;
        out.extend_from_slice(&data[skip..skip + take]);
        cache.put_from(track, data, FillSource::ReadThrough);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gemstone_object::{ClassId, ElemName, PRef, SegmentId};

    fn t(n: u64) -> TxnTime {
        TxnTime::from_ticks(n)
    }

    fn delta(goop: Goop, writes: Vec<(ElemName, PRef)>, is_new: bool) -> ObjectDelta {
        ObjectDelta {
            goop,
            class: ClassId(3),
            segment: SegmentId(0),
            alias_next: 0,
            elem_writes: writes,
            bytes_write: None,
            is_new,
        }
    }

    fn small_cfg() -> StoreConfig {
        StoreConfig { track_size: 256, cache_tracks: 16, replicas: 1 }
    }

    #[test]
    fn create_commit_get() {
        let store = PermanentStore::create(small_cfg()).unwrap();
        let g = store.alloc_goop();
        store
            .commit_batch(t(1), &[delta(g, vec![(ElemName::Int(1), PRef::int(42))], true)])
            .unwrap();
        let obj = store.get(g).unwrap();
        assert_eq!(obj.elem_current(ElemName::Int(1)), Some(PRef::int(42)));
        assert_eq!(store.object_count(), 1);
    }

    #[test]
    fn reopen_recovers_everything() {
        let store = PermanentStore::create(small_cfg()).unwrap();
        let g1 = store.alloc_goop();
        let g2 = store.alloc_goop();
        store
            .commit_batch(
                t(1),
                &[
                    delta(g1, vec![(ElemName::Int(1), PRef::int(10))], true),
                    delta(g2, vec![(ElemName::Int(1), PRef::goop(g1))], true),
                ],
            )
            .unwrap();
        store
            .commit_batch(t(2), &[delta(g1, vec![(ElemName::Int(1), PRef::int(20))], false)])
            .unwrap();
        store.set_meta(7, b"symbols!".to_vec());
        store.commit_batch(t(3), &[]).unwrap();

        let disk = store.into_disk();
        let store2 = PermanentStore::open(disk, 16).unwrap();
        assert_eq!(store2.object_count(), 2);
        let o1 = store2.get(g1).unwrap();
        assert_eq!(o1.elem_current(ElemName::Int(1)), Some(PRef::int(20)));
        assert_eq!(o1.elem_at(ElemName::Int(1), t(1)), Some(PRef::int(10)), "history survives");
        assert_eq!(store2.get(g2).unwrap().elem_current(ElemName::Int(1)), Some(PRef::goop(g1)));
        assert_eq!(store2.get_meta(7).unwrap().unwrap(), b"symbols!");
        assert_eq!(store2.root().commit_time, t(3));
        // Goop allocation resumes without collision.
        let g3 = store2.alloc_goop();
        assert!(g3 > g2);
    }

    #[test]
    fn crash_mid_commit_preserves_previous_state() {
        let mut store = PermanentStore::create(small_cfg()).unwrap();
        let g = store.alloc_goop();
        store
            .commit_batch(t(1), &[delta(g, vec![(ElemName::Int(1), PRef::int(1))], true)])
            .unwrap();
        // Crash after two writes of the second commit's group.
        store.disk_mut().replica_mut(0).fail_after_writes(2);
        let err =
            store.commit_batch(t(2), &[delta(g, vec![(ElemName::Int(1), PRef::int(2))], false)]);
        assert!(err.is_err());
        let mut disk = store.into_disk();
        disk.replica_mut(0).revive();
        let store2 = PermanentStore::open(disk, 16).unwrap();
        assert_eq!(
            store2.get(g).unwrap().elem_current(ElemName::Int(1)),
            Some(PRef::int(1)),
            "aborted commit invisible"
        );
        assert_eq!(store2.root().commit_time, t(1));
    }

    #[test]
    fn failed_commit_rolls_back_memory_state() {
        let mut store = PermanentStore::create(small_cfg()).unwrap();
        let g = store.alloc_goop();
        store
            .commit_batch(t(1), &[delta(g, vec![(ElemName::Int(1), PRef::int(1))], true)])
            .unwrap();
        store.disk_mut().replica_mut(0).fail_after_writes(0);
        assert!(store
            .commit_batch(t(2), &[delta(g, vec![(ElemName::Int(1), PRef::int(2))], false)])
            .is_err());
        store.disk_mut().replica_mut(0).revive();
        assert_eq!(
            store.get(g).unwrap().elem_current(ElemName::Int(1)),
            Some(PRef::int(1)),
            "in-memory object rolled back"
        );
        // And the store remains usable:
        store
            .commit_batch(t(3), &[delta(g, vec![(ElemName::Int(1), PRef::int(3))], false)])
            .unwrap();
        assert_eq!(store.get(g).unwrap().elem_current(ElemName::Int(1)), Some(PRef::int(3)));
    }

    #[test]
    fn staged_meta_survives_failed_commit() {
        // The crash matrix flushed this out: a failed safe write used to
        // consume the staged metadata, so the *next* commit persisted data
        // without the schema that belonged with it.
        let mut store = PermanentStore::create(small_cfg()).unwrap();
        let g = store.alloc_goop();
        store.set_meta(7, b"schema".to_vec());
        store.disk_mut().replica_mut(0).fail_after_writes(0);
        assert!(store
            .commit_batch(t(1), &[delta(g, vec![(ElemName::Int(1), PRef::int(1))], true)])
            .is_err());
        store.disk_mut().replica_mut(0).revive();
        store
            .commit_batch(t(2), &[delta(g, vec![(ElemName::Int(1), PRef::int(1))], true)])
            .unwrap();
        let disk = store.into_disk();
        let store2 = PermanentStore::open(disk, 16).unwrap();
        assert_eq!(
            store2.get_meta(7).unwrap().as_deref(),
            Some(&b"schema"[..]),
            "metadata staged before the crash reaches disk with the retry"
        );
    }

    #[test]
    fn recovery_report_after_reopen() {
        let mut store = PermanentStore::create(small_cfg()).unwrap();
        assert_eq!(store.recovery_report(), RecoveryReport::default(), "create = no recovery");
        let g = store.alloc_goop();
        store
            .commit_batch(t(1), &[delta(g, vec![(ElemName::Int(1), PRef::int(1))], true)])
            .unwrap();
        // Crash the next commit after one data write: orphan shadow tracks.
        store.disk_mut().replica_mut(0).fail_after_writes(1);
        assert!(store
            .commit_batch(t(2), &[delta(g, vec![(ElemName::Int(1), PRef::int(2))], false)])
            .is_err());
        let mut disk = store.into_disk();
        disk.replica_mut(0).revive();
        let store2 = PermanentStore::open(disk, 16).unwrap();
        let r = store2.recovery_report();
        assert_eq!(r.roots_considered, 2);
        assert!(r.roots_valid >= 1);
        assert_eq!(r.recovered_epoch, store2.root().epoch);
        assert!(r.reopen_reads > 0);
        assert!(r.tracks_salvaged > 0);
        assert!(r.tracks_discarded > 0, "the torn commit's shadow track is an orphan");
    }

    #[test]
    fn object_cache_limit_forces_faults() {
        let store = PermanentStore::create(small_cfg()).unwrap();
        let goops: Vec<Goop> = (0..8).map(|_| store.alloc_goop()).collect();
        let deltas: Vec<ObjectDelta> = goops
            .iter()
            .map(|g| delta(*g, vec![(ElemName::Int(1), PRef::int(g.0 as i64))], true))
            .collect();
        store.commit_batch(t(1), &deltas).unwrap();
        store.set_object_cache_limit(Some(2));
        store.reset_stats();
        for g in &goops {
            let o = store.get(*g).unwrap();
            assert_eq!(o.elem_current(ElemName::Int(1)), Some(PRef::int(g.0 as i64)));
        }
        assert!(store.stats().object_faults >= 6, "bounded cache must fault");
        store.set_object_cache_limit(None);
    }

    #[test]
    fn large_object_spans_many_tracks() {
        let store = PermanentStore::create(small_cfg()).unwrap();
        let g = store.alloc_goop();
        let big = vec![0xEEu8; 10_000]; // 40 × 244-byte track payloads
        store
            .commit_batch(
                t(1),
                &[ObjectDelta {
                    goop: g,
                    class: ClassId(11),
                    segment: SegmentId(0),
                    alias_next: 0,
                    elem_writes: vec![],
                    bytes_write: Some(big.clone()),
                    is_new: true,
                }],
            )
            .unwrap();
        let disk = store.into_disk();
        let store2 = PermanentStore::open(disk, 64).unwrap();
        assert_eq!(store2.get(g).unwrap().bytes_current().unwrap(), &big[..]);
    }

    #[test]
    fn old_states_remain_on_disk() {
        // Shadow writing never overwrites: total tracks only grow, and a
        // re-opened store sees all history.
        let mut store = PermanentStore::create(small_cfg()).unwrap();
        let g = store.alloc_goop();
        store
            .commit_batch(t(1), &[delta(g, vec![(ElemName::Int(1), PRef::int(1))], true)])
            .unwrap();
        let used_before = store.disk_mut().replica_mut(0).tracks_in_use();
        store
            .commit_batch(t(2), &[delta(g, vec![(ElemName::Int(1), PRef::int(2))], false)])
            .unwrap();
        let used_after = store.disk_mut().replica_mut(0).tracks_in_use();
        assert!(used_after > used_before, "shadow tracks accumulate");
        let obj = store.get(g).unwrap();
        assert_eq!(obj.elem_at(ElemName::Int(1), t(1)), Some(PRef::int(1)));
    }

    #[test]
    fn many_objects_across_pages() {
        // Exercise multiple GOOP-table pages (span = 512).
        let store =
            PermanentStore::create(StoreConfig { track_size: 4096, cache_tracks: 64, replicas: 1 })
                .unwrap();
        let goops: Vec<Goop> = (0..1200).map(|_| store.alloc_goop()).collect();
        for chunk in goops.chunks(300) {
            let time = store.root().commit_time.ticks() + 1;
            let deltas: Vec<ObjectDelta> = chunk
                .iter()
                .map(|g| delta(*g, vec![(ElemName::Int(0), PRef::int(g.0 as i64 * 3))], true))
                .collect();
            store.commit_batch(t(time), &deltas).unwrap();
        }
        let disk = store.into_disk();
        let store2 = PermanentStore::open(disk, 64).unwrap();
        assert_eq!(store2.object_count(), 1200);
        for g in [goops[0], goops[599], goops[1199]] {
            assert_eq!(
                store2.get(g).unwrap().elem_current(ElemName::Int(0)),
                Some(PRef::int(g.0 as i64 * 3))
            );
        }
    }

    #[test]
    fn replicated_store_survives_primary_loss() {
        let mut store = PermanentStore::create(StoreConfig {
            track_size: 256,
            cache_tracks: 0, // no cache: force disk reads
            replicas: 2,
        })
        .unwrap();
        let g = store.alloc_goop();
        store
            .commit_batch(t(1), &[delta(g, vec![(ElemName::Int(1), PRef::int(7))], true)])
            .unwrap();
        // Kill the primary replica.
        store.disk_mut().replica_mut(0).fail_after_writes(0);
        let _ = store.disk_mut().replica_mut(0).write_track(TrackId(99), b"x");
        assert_eq!(store.disk_mut().live_replicas(), 1);
        // Evict from memory, force re-fault from the mirror.
        store.set_object_cache_limit(Some(0));
        store.set_object_cache_limit(None);
        assert_eq!(store.get(g).unwrap().elem_current(ElemName::Int(1)), Some(PRef::int(7)));
    }

    #[test]
    fn parallel_faulting_returns_consistent_objects() {
        let store =
            PermanentStore::create(StoreConfig { track_size: 4096, cache_tracks: 64, replicas: 1 })
                .unwrap();
        let goops: Vec<Goop> = (0..64).map(|_| store.alloc_goop()).collect();
        let deltas: Vec<ObjectDelta> = goops
            .iter()
            .map(|g| delta(*g, vec![(ElemName::Int(1), PRef::int(g.0 as i64))], true))
            .collect();
        store.commit_batch(t(1), &deltas).unwrap();
        // Drop every resident image so all threads fault from tracks.
        store.set_object_cache_limit(Some(0));
        store.set_object_cache_limit(None);
        store.reset_stats();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for g in &goops {
                        let o = store.get(*g).unwrap();
                        assert_eq!(o.elem_current(ElemName::Int(1)), Some(PRef::int(g.0 as i64)));
                    }
                });
            }
        });
        // Racing faulters may both deserialize, but only one installs and
        // counts: faults never exceed the object count.
        let faults = store.stats().object_faults;
        assert!((1..=64).contains(&faults), "got {faults}");
    }

    #[test]
    fn readers_keep_old_arcs_across_commits() {
        let store = PermanentStore::create(small_cfg()).unwrap();
        let g = store.alloc_goop();
        store
            .commit_batch(t(1), &[delta(g, vec![(ElemName::Int(1), PRef::int(1))], true)])
            .unwrap();
        let before = store.get(g).unwrap();
        store
            .commit_batch(t(2), &[delta(g, vec![(ElemName::Int(1), PRef::int(2))], false)])
            .unwrap();
        // The old Arc still answers with the old state (its histories end
        // at t1)…
        assert_eq!(before.elem_current(ElemName::Int(1)), Some(PRef::int(1)));
        // …while a fresh fetch sees both versions.
        let after = store.get(g).unwrap();
        assert_eq!(after.elem_at(ElemName::Int(1), t(1)), Some(PRef::int(1)));
        assert_eq!(after.elem_current(ElemName::Int(1)), Some(PRef::int(2)));
    }

    #[test]
    fn concurrent_commits_and_reads_stay_coherent() {
        // One writer thread committing monotone values, several readers
        // re-fetching: every observed value must be one the writer actually
        // committed, and the final state must be the last commit.
        let store = Arc::new(
            PermanentStore::create(StoreConfig { track_size: 4096, cache_tracks: 64, replicas: 1 })
                .unwrap(),
        );
        let g = store.alloc_goop();
        store
            .commit_batch(t(1), &[delta(g, vec![(ElemName::Int(1), PRef::int(0))], true)])
            .unwrap();
        const ROUNDS: i64 = 30;
        std::thread::scope(|s| {
            let w = Arc::clone(&store);
            s.spawn(move || {
                for i in 1..=ROUNDS {
                    w.commit_batch(
                        t(1 + i as u64),
                        &[delta(g, vec![(ElemName::Int(1), PRef::int(i))], false)],
                    )
                    .unwrap();
                }
            });
            for _ in 0..3 {
                let r = Arc::clone(&store);
                s.spawn(move || {
                    let mut last = -1i64;
                    for _ in 0..200 {
                        let o = r.get(g).unwrap();
                        let v = o.elem_current(ElemName::Int(1)).unwrap().as_int().unwrap();
                        assert!((0..=ROUNDS).contains(&v));
                        assert!(v >= last, "committed values are monotone: {v} < {last}");
                        last = v;
                    }
                });
            }
        });
        let o = store.get(g).unwrap();
        assert_eq!(o.elem_current(ElemName::Int(1)), Some(PRef::int(ROUNDS)));
    }
}
