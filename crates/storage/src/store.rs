//! The permanent store: the disk side of the Object Manager.
//!
//! Plays the §6 roles end to end: the **Linker** ("incorporates updates made
//! by a transaction in the permanent database at commit time"), the
//! **Boxer**, the **GOOP table** ("The GOOP is resolved through a global
//! object table"), and drives the **Commit Manager**. Committed objects are
//! faulted in from tracks on demand and cached; the object cache can be
//! bounded to force faulting for the LOOM comparison (C7).

use crate::boxer;
use crate::cache::{CacheCounters, CacheStats, FillSource, TrackCache};
use crate::commit::{self, RecoveryReport, FIRST_DATA_TRACK};
use crate::disk::{DiskArray, DiskCounters, DiskStats, TrackId, TRACK_HEADER};
use crate::format::{self, Catalog, GoopPage, Location, Root, GOOP_PAGE_SPAN};
use crate::pobj::{ObjectDelta, PersistentObject};
use gemstone_object::{GemError, GemResult, Goop};
use gemstone_telemetry::{Counter, Journal, JournalEvent, SpanKind, Tracer};
use gemstone_temporal::TxnTime;
use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};

/// Store construction parameters.
#[derive(Debug, Clone, Copy)]
pub struct StoreConfig {
    /// Track size in bytes (includes the [`TRACK_HEADER`]).
    pub track_size: usize,
    /// Track-cache capacity, in tracks.
    pub cache_tracks: usize,
    /// Number of disk replicas (§6 replication).
    pub replicas: usize,
}

impl Default for StoreConfig {
    fn default() -> StoreConfig {
        StoreConfig { track_size: 8192, cache_tracks: 256, replicas: 1 }
    }
}

/// Store-level counters.
#[derive(Debug, Default, Clone, Copy)]
pub struct StoreStats {
    /// Commits applied.
    pub commits: u64,
    /// Objects faulted in from tracks.
    pub object_faults: u64,
    /// Object images written.
    pub objects_written: u64,
}

/// Live counters behind [`StoreStats`]; shared cells for registry binding.
#[derive(Debug, Default)]
pub struct StoreCounters {
    pub commits: Counter,
    pub object_faults: Counter,
    pub objects_written: Counter,
}

impl StoreCounters {
    fn snapshot(&self) -> StoreStats {
        StoreStats {
            commits: self.commits.get(),
            object_faults: self.object_faults.get(),
            objects_written: self.objects_written.get(),
        }
    }

    fn reset(&self) {
        self.commits.reset();
        self.object_faults.reset();
        self.objects_written.reset();
    }

    fn share(&self) -> StoreCounters {
        StoreCounters {
            commits: self.commits.clone(),
            object_faults: self.object_faults.clone(),
            objects_written: self.objects_written.clone(),
        }
    }
}

/// The permanent database.
pub struct PermanentStore {
    disk: DiskArray,
    cache: TrackCache,
    /// Committed objects currently in memory (clean copies of disk state).
    objects: HashMap<Goop, PersistentObject>,
    /// FIFO of residents, used when `object_cache_limit` is set.
    resident_order: VecDeque<Goop>,
    /// The GOOP table.
    locations: HashMap<Goop, Location>,
    /// Metadata blobs staged since the last commit (key → bytes).
    staged_metas: BTreeMap<u8, Vec<u8>>,
    catalog: Catalog,
    root: Root,
    next_goop: u64,
    next_track: u32,
    object_cache_limit: Option<usize>,
    stats: StoreCounters,
    /// What the last reopening saw ([`RecoveryReport::default`] for a
    /// freshly created volume, which performed no recovery).
    recovery_report: RecoveryReport,
    /// Span recorder for track-I/O, if the owning database traces.
    tracer: Option<Tracer>,
    /// Flight-recorder handle for store-level events (faults, commit
    /// groups). Checked with one atomic load; `None` until attached.
    journal: Option<Journal>,
    /// Session / parent-span attribution for the next I/O spans (set by the
    /// session driving the current operation, under the database lock).
    trace_session: u64,
    trace_parent: u64,
}

impl PermanentStore {
    /// Format a fresh database volume.
    pub fn create(cfg: StoreConfig) -> GemResult<PermanentStore> {
        let mut disk = DiskArray::new(cfg.track_size, cfg.replicas.max(1));
        // Write an initial empty commit so a valid root always exists.
        let root = Root {
            epoch: 1,
            commit_time: TxnTime::EPOCH,
            next_goop: 1,
            next_track: FIRST_DATA_TRACK + 1,
            catalog: Location {
                extent_first: TrackId(FIRST_DATA_TRACK),
                extent_len: 1,
                offset: 0,
                len: format::put_catalog(&Catalog::default()).len() as u32,
            },
        };
        let cat_blob = format::put_catalog(&Catalog::default());
        commit::safe_write_group(&mut disk, &[(TrackId(FIRST_DATA_TRACK), cat_blob)], &root)?;
        Ok(PermanentStore {
            disk,
            cache: TrackCache::new(cfg.cache_tracks),
            objects: HashMap::new(),
            resident_order: VecDeque::new(),
            locations: HashMap::new(),
            staged_metas: BTreeMap::new(),
            catalog: Catalog::default(),
            root,
            next_goop: 1,
            next_track: FIRST_DATA_TRACK + 1,
            object_cache_limit: None,
            stats: StoreCounters::default(),
            recovery_report: RecoveryReport::default(),
            tracer: None,
            journal: None,
            trace_session: 0,
            trace_parent: 0,
        })
    }

    /// Open an existing volume: recovery. Reads the newest valid root,
    /// loads the catalog and the GOOP table; objects fault in lazily. The
    /// whole pass is read-only, so a crash *during* recovery leaves the
    /// volume untouched and a retry sees the identical state. What was
    /// seen and decided is recorded in [`PermanentStore::recovery_report`].
    pub fn open(mut disk: DiskArray, cache_tracks: usize) -> GemResult<PermanentStore> {
        let reads_before = disk.stats().track_reads;
        let (root, mut report) = commit::recover_root_report(&mut disk)?;
        let root_reads = disk.stats().track_reads - reads_before;
        let mut cache = TrackCache::new(cache_tracks);
        let payload = disk.track_size() - TRACK_HEADER;
        let cat_bytes = read_blob(&mut disk, &mut cache, &root.catalog, payload)?;
        let catalog = format::get_catalog(&cat_bytes)?;
        let mut locations = HashMap::new();
        for loc in catalog.goop_pages.values() {
            let page_bytes = read_blob(&mut disk, &mut cache, loc, payload)?;
            for (goop, l) in format::get_goop_page(&page_bytes)? {
                locations.insert(Goop(goop), l);
            }
        }
        report.reopen_reads = disk.stats().track_reads - reads_before;
        report.tracks_salvaged = (report.reopen_reads - root_reads) as u32 + report.roots_valid;
        report.tracks_discarded = disk.tracks_beyond(root.next_track);
        Ok(PermanentStore {
            disk,
            cache,
            objects: HashMap::new(),
            resident_order: VecDeque::new(),
            locations,
            staged_metas: BTreeMap::new(),
            catalog,
            next_goop: root.next_goop,
            next_track: root.next_track,
            root,
            object_cache_limit: None,
            stats: StoreCounters::default(),
            recovery_report: report,
            tracer: None,
            journal: None,
            trace_session: 0,
            trace_parent: 0,
        })
    }

    /// Tear down to the raw disk (crash/recovery tests re-open it).
    pub fn into_disk(self) -> DiskArray {
        self.disk
    }

    /// Direct access to the disk (crash injection in tests/benches).
    pub fn disk_mut(&mut self) -> &mut DiskArray {
        &mut self.disk
    }

    /// Bound the in-memory object cache (evicting clean residents FIFO);
    /// `None` = unbounded.
    pub fn set_object_cache_limit(&mut self, limit: Option<usize>) {
        self.object_cache_limit = limit;
        self.enforce_cache_limit();
    }

    /// Allocate a fresh permanent identity.
    pub fn alloc_goop(&mut self) -> Goop {
        let g = Goop(self.next_goop);
        self.next_goop += 1;
        g
    }

    /// True if the identity exists in the committed database.
    pub fn contains(&self, goop: Goop) -> bool {
        self.locations.contains_key(&goop) || self.objects.contains_key(&goop)
    }

    /// Number of committed objects.
    pub fn object_count(&self) -> usize {
        self.locations.len()
    }

    /// Fetch a committed object, faulting it from tracks if necessary.
    pub fn get(&mut self, goop: Goop) -> GemResult<&PersistentObject> {
        if !self.objects.contains_key(&goop) {
            let loc = *self
                .locations
                .get(&goop)
                .ok_or_else(|| GemError::Corrupt(format!("unknown {goop:?}")))?;
            let payload = self.disk.track_size() - TRACK_HEADER;
            let span = self.tracer.as_ref().map(|t| {
                t.begin(SpanKind::TrackIo, self.trace_session, self.trace_parent, "track-read")
            });
            let bytes = read_blob(&mut self.disk, &mut self.cache, &loc, payload)?;
            if let (Some(t), Some(sp)) = (&self.tracer, span) {
                t.end(sp);
            }
            let obj = format::get_object(&bytes)?;
            self.stats.object_faults.inc();
            if let Some(j) = self.journal_on() {
                j.emit(&JournalEvent::ObjectFault { goop: goop.0 });
            }
            self.objects.insert(goop, obj);
            self.resident_order.push_back(goop);
            self.enforce_cache_limit_except(goop);
        }
        Ok(&self.objects[&goop])
    }

    /// Stage a metadata blob (symbol table, class table, globals…) to be
    /// persisted with the next commit.
    pub fn set_meta(&mut self, key: u8, bytes: Vec<u8>) {
        self.staged_metas.insert(key, bytes);
    }

    /// Read a metadata blob (staged value wins over the committed one).
    pub fn get_meta(&mut self, key: u8) -> GemResult<Option<Vec<u8>>> {
        if let Some(b) = self.staged_metas.get(&key) {
            return Ok(Some(b.clone()));
        }
        match self.catalog.metas.get(&key).copied() {
            None => Ok(None),
            Some(loc) => {
                let payload = self.disk.track_size() - TRACK_HEADER;
                Ok(Some(read_blob(&mut self.disk, &mut self.cache, &loc, payload)?))
            }
        }
    }

    /// Apply a validated transaction's writes at commit time `time`:
    /// Linker → Boxer → Commit Manager. All-or-nothing: on any disk error
    /// the in-memory state is rolled back and the old root still rules.
    /// Staged metadata survives a failed commit too — it stays staged and
    /// travels with the next successful safe-write group (the crash matrix
    /// caught the original take-then-fail version silently dropping it).
    pub fn commit_batch(&mut self, time: TxnTime, deltas: &[ObjectDelta]) -> GemResult<()> {
        // Snapshot for rollback.
        let touched: Vec<Goop> = deltas.iter().map(|d| d.goop).collect();
        let mut snapshot: HashMap<Goop, Option<PersistentObject>> = HashMap::new();
        for d in deltas {
            if snapshot.contains_key(&d.goop) {
                continue;
            }
            let prev = if self.contains(d.goop) && !d.is_new {
                Some(self.get(d.goop)?.clone())
            } else {
                self.objects.get(&d.goop).cloned()
            };
            snapshot.insert(d.goop, prev);
        }
        let saved_locations: HashMap<Goop, Option<Location>> =
            touched.iter().map(|g| (*g, self.locations.get(g).copied())).collect();

        let result = self.commit_inner(time, deltas);
        if result.is_err() {
            for (g, prev) in snapshot {
                match prev {
                    Some(o) => {
                        self.objects.insert(g, o);
                    }
                    None => {
                        self.objects.remove(&g);
                    }
                }
            }
            for (g, prev) in saved_locations {
                match prev {
                    Some(l) => {
                        self.locations.insert(g, l);
                    }
                    None => {
                        self.locations.remove(&g);
                    }
                }
            }
        }
        result
    }

    fn commit_inner(&mut self, time: TxnTime, deltas: &[ObjectDelta]) -> GemResult<()> {
        let payload = self.disk.track_size() - TRACK_HEADER;

        // 1. Linker: apply deltas to the permanent objects.
        let mut touched: Vec<Goop> = Vec::with_capacity(deltas.len());
        for d in deltas {
            if d.is_new {
                self.objects
                    .entry(d.goop)
                    .or_insert_with(|| PersistentObject::new(d.goop, d.class, d.segment));
            } else if !self.objects.contains_key(&d.goop) {
                self.get(d.goop)?; // fault in before updating
            }
            let obj = self
                .objects
                .get_mut(&d.goop)
                .ok_or_else(|| GemError::Corrupt(format!("missing {:?}", d.goop)))?;
            obj.apply_delta(d, time);
            if !touched.contains(&d.goop) {
                touched.push(d.goop);
            }
        }

        // 2. Boxer: serialize touched objects into extent A.
        let blobs: Vec<Vec<u8>> =
            touched.iter().map(|g| format::put_object(&self.objects[g])).collect();
        let (obj_locs, writes_a) = boxer::pack(&blobs, self.next_track, payload);
        let track_after_a = self.next_track + writes_a.len() as u32;
        for (g, loc) in touched.iter().zip(&obj_locs) {
            self.locations.insert(*g, *loc);
        }

        // 3. Rewrite dirty GOOP-table pages into extent B (with staged
        //    metadata blobs). The page set is ordered so a replayed commit
        //    produces a byte-identical group — the crash matrix depends on
        //    write index k meaning the same write on every run.
        let dirty_pages: BTreeSet<u32> =
            touched.iter().map(|g| (g.0 / GOOP_PAGE_SPAN) as u32).collect();
        let mut page_blobs: Vec<(u32, Vec<u8>)> = Vec::new();
        for page_no in dirty_pages {
            let lo = page_no as u64 * GOOP_PAGE_SPAN;
            let hi = lo + GOOP_PAGE_SPAN;
            let page: GoopPage = self
                .locations
                .iter()
                .filter(|(g, _)| (lo..hi).contains(&g.0))
                .map(|(g, l)| (g.0, *l))
                .collect();
            page_blobs.push((page_no, format::put_goop_page(&page)));
        }
        // Metadata is *borrowed*, not drained: a failed safe write must
        // leave it staged for the next attempt.
        let metas: Vec<(u8, &Vec<u8>)> = self.staged_metas.iter().map(|(k, b)| (*k, b)).collect();
        let b_blobs: Vec<Vec<u8>> = page_blobs
            .iter()
            .map(|(_, b)| b.clone())
            .chain(metas.iter().map(|(_, b)| (*b).clone()))
            .collect();
        let (b_locs, writes_b) = boxer::pack(&b_blobs, track_after_a, payload);
        let track_after_b = track_after_a + writes_b.len() as u32;
        let mut new_catalog = self.catalog.clone();
        for ((page_no, _), loc) in page_blobs.iter().zip(&b_locs) {
            new_catalog.goop_pages.insert(*page_no, *loc);
        }
        for ((key, _), loc) in metas.iter().zip(&b_locs[page_blobs.len()..]) {
            new_catalog.metas.insert(*key, *loc);
        }

        // 4. Catalog into extent C.
        let cat_blob = format::put_catalog(&new_catalog);
        let (cat_locs, writes_c) = boxer::pack(&[cat_blob], track_after_b, payload);
        let track_after_c = track_after_b + writes_c.len() as u32;

        // 5. Commit Manager: safe-write the whole group, then flip the root.
        let new_root = Root {
            epoch: self.root.epoch + 1,
            commit_time: time,
            next_goop: self.next_goop,
            next_track: track_after_c,
            catalog: cat_locs[0],
        };
        let mut group = writes_a;
        group.extend(writes_b);
        group.extend(writes_c);
        let span = self.tracer.as_ref().map(|t| {
            t.begin(SpanKind::TrackIo, self.trace_session, self.trace_parent, "safe-write-group")
        });
        let wrote = commit::safe_write_group(&mut self.disk, &group, &new_root);
        if let (Some(t), Some(sp)) = (&self.tracer, span) {
            t.end(sp);
        }
        wrote?;
        let group_len = group.len() as u64;
        self.disk.note_safe_write_group(group_len + 1);
        // Write-through: the tracks just committed are the hottest candidates
        // for the next read — populate the cache from the group payloads
        // (counted apart from read-through fills).
        for (track, payload_bytes) in group {
            self.cache.put_from(track, payload_bytes, FillSource::CommitWrite);
        }

        // 6. Success: adopt the new state. Only now is the staged metadata
        //    consumed and the counters advanced.
        self.root = new_root;
        self.catalog = new_catalog;
        self.next_track = track_after_c;
        self.staged_metas.clear();
        self.stats.commits.inc();
        self.stats.objects_written.add(touched.len() as u64);
        if let Some(j) = self.journal_on() {
            j.emit(&JournalEvent::SafeWriteGroup {
                tracks: group_len + 1,
                objects: touched.len() as u64,
            });
        }
        self.enforce_cache_limit();
        Ok(())
    }

    /// The database-administrator archive operation (§6: "A database
    /// administrator can explicitly move objects to other media … some
    /// objects in it may become temporarily or permanently inaccessible").
    /// Prunes committed associations strictly older than the state in force
    /// at `keep_from` across every object, returns the number of archived
    /// associations, and checkpoints the pruned image as one commit group at
    /// `time`. States at or after `keep_from` remain fully queryable.
    pub fn archive_history_before(
        &mut self,
        keep_from: TxnTime,
        time: TxnTime,
    ) -> GemResult<usize> {
        let goops = self.all_goops();
        let mut archived = 0usize;
        let mut touched = Vec::new();
        for g in goops {
            self.get(g)?; // fault in
            let obj = self.objects.get_mut(&g).expect("just faulted");
            let mut pruned = 0;
            let names: Vec<_> = obj.elements.keys().copied().collect();
            for n in names {
                pruned += obj.elements.get_mut(&n).unwrap().prune_before(keep_from).len();
            }
            if let Some(bh) = &mut obj.bytes {
                pruned += bh.prune_before(keep_from).len();
            }
            if pruned > 0 {
                archived += pruned;
                touched.push(g);
            }
        }
        if archived == 0 {
            return Ok(0);
        }
        // Checkpoint: rewrite the pruned objects with empty deltas so their
        // shrunken images land on fresh tracks under a new root.
        let deltas: Vec<ObjectDelta> = touched
            .iter()
            .map(|g| {
                let obj = &self.objects[g];
                ObjectDelta {
                    goop: *g,
                    class: obj.class,
                    segment: obj.segment,
                    alias_next: obj.alias_next,
                    elem_writes: vec![],
                    bytes_write: None,
                    is_new: false,
                }
            })
            .collect();
        self.commit_batch(time, &deltas)?;
        Ok(archived)
    }

    /// Last committed root (epoch, time).
    pub fn root(&self) -> Root {
        self.root
    }

    /// What the reopening that produced this store saw and decided
    /// (all-default for a freshly created volume).
    pub fn recovery_report(&self) -> RecoveryReport {
        self.recovery_report
    }

    /// Store counters.
    pub fn stats(&self) -> StoreStats {
        self.stats.snapshot()
    }

    /// Live store counter cells (for registry binding).
    pub fn counters(&self) -> StoreCounters {
        self.stats.share()
    }

    /// Live track-cache counter cells (for registry binding).
    pub fn cache_counters(&self) -> CacheCounters {
        self.cache.counters()
    }

    /// Live primary-disk counter cells (for registry binding).
    pub fn disk_counters(&self) -> DiskCounters {
        self.disk.counters()
    }

    /// Shared access to the disk (histogram binding / group-size reads).
    pub fn disk(&self) -> &DiskArray {
        &self.disk
    }

    /// Attach a span recorder for track-I/O spans.
    pub fn attach_tracer(&mut self, tracer: Tracer) {
        self.tracer = Some(tracer);
    }

    /// Attach the flight recorder to the whole storage stack: the store's
    /// own event sites plus the track cache and the *primary* disk replica
    /// (the only replica whose counters are registry-bound, so journal
    /// replay stays 1:1 with the live metrics).
    pub fn attach_journal(&mut self, journal: Journal) {
        self.cache.attach_journal(journal.clone());
        self.disk.attach_journal(journal.clone());
        self.journal = Some(journal);
    }

    #[inline]
    fn journal_on(&self) -> Option<&Journal> {
        match &self.journal {
            Some(j) if j.enabled() => Some(j),
            _ => None,
        }
    }

    /// Track-cache capacity in tracks (journal `cache_configured` events).
    pub fn cache_capacity(&self) -> usize {
        self.cache.capacity()
    }

    /// Attribute subsequent I/O spans to `session` under parent span
    /// `parent` (0 clears the attribution).
    pub fn set_trace_context(&mut self, session: u64, parent: u64) {
        self.trace_session = session;
        self.trace_parent = parent;
    }

    /// Disk counters.
    pub fn disk_stats(&self) -> DiskStats {
        self.disk.stats()
    }

    /// Track-cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Reset all counters (benchmark hygiene).
    pub fn reset_stats(&mut self) {
        self.stats.reset();
        self.disk.reset_stats();
        self.cache.reset_stats();
    }

    /// Iterate every committed identity (directory rebuild at recovery).
    pub fn all_goops(&self) -> Vec<Goop> {
        let mut v: Vec<Goop> = self.locations.keys().copied().collect();
        v.sort();
        v
    }

    fn enforce_cache_limit(&mut self) {
        self.enforce_cache_limit_except(Goop(u64::MAX));
    }

    fn enforce_cache_limit_except(&mut self, keep: Goop) {
        let Some(limit) = self.object_cache_limit else { return };
        while self.objects.len() > limit {
            // FIFO victim search, skipping `keep` and stale entries (an
            // entry goes stale when its object was already evicted or the
            // goop was re-queued by a later fault).
            let mut victim = None;
            let mut kept_back = false;
            while let Some(candidate) = self.resident_order.pop_front() {
                if candidate == keep {
                    kept_back = true; // re-queue once, below
                    continue;
                }
                if self.objects.contains_key(&candidate) {
                    victim = Some(candidate);
                    break;
                }
            }
            if kept_back {
                self.resident_order.push_back(keep);
            }
            // Residents not tracked in order (e.g. installed by a commit):
            // evict arbitrarily.
            let victim = victim.or_else(|| self.objects.keys().find(|g| **g != keep).copied());
            match victim {
                Some(v) => {
                    self.objects.remove(&v);
                }
                None => break,
            }
        }
    }
}

/// Read a blob at `loc` through the track cache.
fn read_blob(
    disk: &mut DiskArray,
    cache: &mut TrackCache,
    loc: &Location,
    track_payload: usize,
) -> GemResult<Vec<u8>> {
    let mut out = Vec::with_capacity(loc.len as usize);
    for (track, skip, take) in boxer::covering_tracks(loc, track_payload) {
        if let Some(data) = cache.get(track) {
            out.extend_from_slice(&data[skip..skip + take]);
            continue;
        }
        let data = commit::read_checked(disk, track)?;
        out.extend_from_slice(&data[skip..skip + take]);
        cache.put(track, data);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gemstone_object::{ClassId, ElemName, PRef, SegmentId};

    fn t(n: u64) -> TxnTime {
        TxnTime::from_ticks(n)
    }

    fn delta(goop: Goop, writes: Vec<(ElemName, PRef)>, is_new: bool) -> ObjectDelta {
        ObjectDelta {
            goop,
            class: ClassId(3),
            segment: SegmentId(0),
            alias_next: 0,
            elem_writes: writes,
            bytes_write: None,
            is_new,
        }
    }

    fn small_cfg() -> StoreConfig {
        StoreConfig { track_size: 256, cache_tracks: 16, replicas: 1 }
    }

    #[test]
    fn create_commit_get() {
        let mut store = PermanentStore::create(small_cfg()).unwrap();
        let g = store.alloc_goop();
        store
            .commit_batch(t(1), &[delta(g, vec![(ElemName::Int(1), PRef::int(42))], true)])
            .unwrap();
        let obj = store.get(g).unwrap();
        assert_eq!(obj.elem_current(ElemName::Int(1)), Some(PRef::int(42)));
        assert_eq!(store.object_count(), 1);
    }

    #[test]
    fn reopen_recovers_everything() {
        let mut store = PermanentStore::create(small_cfg()).unwrap();
        let g1 = store.alloc_goop();
        let g2 = store.alloc_goop();
        store
            .commit_batch(
                t(1),
                &[
                    delta(g1, vec![(ElemName::Int(1), PRef::int(10))], true),
                    delta(g2, vec![(ElemName::Int(1), PRef::goop(g1))], true),
                ],
            )
            .unwrap();
        store
            .commit_batch(t(2), &[delta(g1, vec![(ElemName::Int(1), PRef::int(20))], false)])
            .unwrap();
        store.set_meta(7, b"symbols!".to_vec());
        store.commit_batch(t(3), &[]).unwrap();

        let disk = store.into_disk();
        let mut store2 = PermanentStore::open(disk, 16).unwrap();
        assert_eq!(store2.object_count(), 2);
        let o1 = store2.get(g1).unwrap();
        assert_eq!(o1.elem_current(ElemName::Int(1)), Some(PRef::int(20)));
        assert_eq!(o1.elem_at(ElemName::Int(1), t(1)), Some(PRef::int(10)), "history survives");
        assert_eq!(store2.get(g2).unwrap().elem_current(ElemName::Int(1)), Some(PRef::goop(g1)));
        assert_eq!(store2.get_meta(7).unwrap().unwrap(), b"symbols!");
        assert_eq!(store2.root().commit_time, t(3));
        // Goop allocation resumes without collision.
        let g3 = store2.alloc_goop();
        assert!(g3 > g2);
    }

    #[test]
    fn crash_mid_commit_preserves_previous_state() {
        let mut store = PermanentStore::create(small_cfg()).unwrap();
        let g = store.alloc_goop();
        store
            .commit_batch(t(1), &[delta(g, vec![(ElemName::Int(1), PRef::int(1))], true)])
            .unwrap();
        // Crash after two writes of the second commit's group.
        store.disk_mut().replica_mut(0).fail_after_writes(2);
        let err =
            store.commit_batch(t(2), &[delta(g, vec![(ElemName::Int(1), PRef::int(2))], false)]);
        assert!(err.is_err());
        let mut disk = store.into_disk();
        disk.replica_mut(0).revive();
        let mut store2 = PermanentStore::open(disk, 16).unwrap();
        assert_eq!(
            store2.get(g).unwrap().elem_current(ElemName::Int(1)),
            Some(PRef::int(1)),
            "aborted commit invisible"
        );
        assert_eq!(store2.root().commit_time, t(1));
    }

    #[test]
    fn failed_commit_rolls_back_memory_state() {
        let mut store = PermanentStore::create(small_cfg()).unwrap();
        let g = store.alloc_goop();
        store
            .commit_batch(t(1), &[delta(g, vec![(ElemName::Int(1), PRef::int(1))], true)])
            .unwrap();
        store.disk_mut().replica_mut(0).fail_after_writes(0);
        assert!(store
            .commit_batch(t(2), &[delta(g, vec![(ElemName::Int(1), PRef::int(2))], false)])
            .is_err());
        store.disk_mut().replica_mut(0).revive();
        assert_eq!(
            store.get(g).unwrap().elem_current(ElemName::Int(1)),
            Some(PRef::int(1)),
            "in-memory object rolled back"
        );
        // And the store remains usable:
        store
            .commit_batch(t(3), &[delta(g, vec![(ElemName::Int(1), PRef::int(3))], false)])
            .unwrap();
        assert_eq!(store.get(g).unwrap().elem_current(ElemName::Int(1)), Some(PRef::int(3)));
    }

    #[test]
    fn staged_meta_survives_failed_commit() {
        // The crash matrix flushed this out: a failed safe write used to
        // consume the staged metadata, so the *next* commit persisted data
        // without the schema that belonged with it.
        let mut store = PermanentStore::create(small_cfg()).unwrap();
        let g = store.alloc_goop();
        store.set_meta(7, b"schema".to_vec());
        store.disk_mut().replica_mut(0).fail_after_writes(0);
        assert!(store
            .commit_batch(t(1), &[delta(g, vec![(ElemName::Int(1), PRef::int(1))], true)])
            .is_err());
        store.disk_mut().replica_mut(0).revive();
        store
            .commit_batch(t(2), &[delta(g, vec![(ElemName::Int(1), PRef::int(1))], true)])
            .unwrap();
        let disk = store.into_disk();
        let mut store2 = PermanentStore::open(disk, 16).unwrap();
        assert_eq!(
            store2.get_meta(7).unwrap().as_deref(),
            Some(&b"schema"[..]),
            "metadata staged before the crash reaches disk with the retry"
        );
    }

    #[test]
    fn recovery_report_after_reopen() {
        let mut store = PermanentStore::create(small_cfg()).unwrap();
        assert_eq!(store.recovery_report(), RecoveryReport::default(), "create = no recovery");
        let g = store.alloc_goop();
        store
            .commit_batch(t(1), &[delta(g, vec![(ElemName::Int(1), PRef::int(1))], true)])
            .unwrap();
        // Crash the next commit after one data write: orphan shadow tracks.
        store.disk_mut().replica_mut(0).fail_after_writes(1);
        assert!(store
            .commit_batch(t(2), &[delta(g, vec![(ElemName::Int(1), PRef::int(2))], false)])
            .is_err());
        let mut disk = store.into_disk();
        disk.replica_mut(0).revive();
        let store2 = PermanentStore::open(disk, 16).unwrap();
        let r = store2.recovery_report();
        assert_eq!(r.roots_considered, 2);
        assert!(r.roots_valid >= 1);
        assert_eq!(r.recovered_epoch, store2.root().epoch);
        assert!(r.reopen_reads > 0);
        assert!(r.tracks_salvaged > 0);
        assert!(r.tracks_discarded > 0, "the torn commit's shadow track is an orphan");
    }

    #[test]
    fn object_cache_limit_forces_faults() {
        let mut store = PermanentStore::create(small_cfg()).unwrap();
        let goops: Vec<Goop> = (0..8).map(|_| store.alloc_goop()).collect();
        let deltas: Vec<ObjectDelta> = goops
            .iter()
            .map(|g| delta(*g, vec![(ElemName::Int(1), PRef::int(g.0 as i64))], true))
            .collect();
        store.commit_batch(t(1), &deltas).unwrap();
        store.set_object_cache_limit(Some(2));
        store.reset_stats();
        for g in &goops {
            let o = store.get(*g).unwrap();
            assert_eq!(o.elem_current(ElemName::Int(1)), Some(PRef::int(g.0 as i64)));
        }
        assert!(store.stats().object_faults >= 6, "bounded cache must fault");
        store.set_object_cache_limit(None);
    }

    #[test]
    fn large_object_spans_many_tracks() {
        let mut store = PermanentStore::create(small_cfg()).unwrap();
        let g = store.alloc_goop();
        let big = vec![0xEEu8; 10_000]; // 40 × 244-byte track payloads
        store
            .commit_batch(
                t(1),
                &[ObjectDelta {
                    goop: g,
                    class: ClassId(11),
                    segment: SegmentId(0),
                    alias_next: 0,
                    elem_writes: vec![],
                    bytes_write: Some(big.clone()),
                    is_new: true,
                }],
            )
            .unwrap();
        let disk = store.into_disk();
        let mut store2 = PermanentStore::open(disk, 64).unwrap();
        assert_eq!(store2.get(g).unwrap().bytes_current().unwrap(), &big[..]);
    }

    #[test]
    fn old_states_remain_on_disk() {
        // Shadow writing never overwrites: total tracks only grow, and a
        // re-opened store sees all history.
        let mut store = PermanentStore::create(small_cfg()).unwrap();
        let g = store.alloc_goop();
        store
            .commit_batch(t(1), &[delta(g, vec![(ElemName::Int(1), PRef::int(1))], true)])
            .unwrap();
        let used_before = store.disk_mut().replica_mut(0).tracks_in_use();
        store
            .commit_batch(t(2), &[delta(g, vec![(ElemName::Int(1), PRef::int(2))], false)])
            .unwrap();
        let used_after = store.disk_mut().replica_mut(0).tracks_in_use();
        assert!(used_after > used_before, "shadow tracks accumulate");
        let obj = store.get(g).unwrap();
        assert_eq!(obj.elem_at(ElemName::Int(1), t(1)), Some(PRef::int(1)));
    }

    #[test]
    fn many_objects_across_pages() {
        // Exercise multiple GOOP-table pages (span = 512).
        let mut store =
            PermanentStore::create(StoreConfig { track_size: 4096, cache_tracks: 64, replicas: 1 })
                .unwrap();
        let goops: Vec<Goop> = (0..1200).map(|_| store.alloc_goop()).collect();
        for chunk in goops.chunks(300) {
            let time = store.root().commit_time.ticks() + 1;
            let deltas: Vec<ObjectDelta> = chunk
                .iter()
                .map(|g| delta(*g, vec![(ElemName::Int(0), PRef::int(g.0 as i64 * 3))], true))
                .collect();
            store.commit_batch(t(time), &deltas).unwrap();
        }
        let disk = store.into_disk();
        let mut store2 = PermanentStore::open(disk, 64).unwrap();
        assert_eq!(store2.object_count(), 1200);
        for g in [goops[0], goops[599], goops[1199]] {
            assert_eq!(
                store2.get(g).unwrap().elem_current(ElemName::Int(0)),
                Some(PRef::int(g.0 as i64 * 3))
            );
        }
    }

    #[test]
    fn replicated_store_survives_primary_loss() {
        let mut store = PermanentStore::create(StoreConfig {
            track_size: 256,
            cache_tracks: 0, // no cache: force disk reads
            replicas: 2,
        })
        .unwrap();
        let g = store.alloc_goop();
        store
            .commit_batch(t(1), &[delta(g, vec![(ElemName::Int(1), PRef::int(7))], true)])
            .unwrap();
        // Kill the primary replica.
        store.disk_mut().replica_mut(0).fail_after_writes(0);
        let _ = store.disk_mut().replica_mut(0).write_track(TrackId(99), b"x");
        assert_eq!(store.disk_mut().live_replicas(), 1);
        // Evict from memory, force re-fault from the mirror.
        store.set_object_cache_limit(Some(0));
        store.set_object_cache_limit(None);
        assert_eq!(store.get(g).unwrap().elem_current(ElemName::Int(1)), Some(PRef::int(7)));
    }
}
