//! Property test for experiment C5: the Commit Manager's safe-write
//! guarantee ("all the tracks in the group get written, or none get
//! written") under randomized commit batches and crash positions.

use gemstone_object::{ClassId, ElemName, Goop, PRef, SegmentId};
use gemstone_storage::{DiskArray, ObjectDelta, PermanentStore, StoreConfig};
use gemstone_temporal::TxnTime;
use proptest::prelude::*;

fn delta(goop: Goop, writes: Vec<(i64, i64)>, is_new: bool) -> ObjectDelta {
    ObjectDelta {
        goop,
        class: ClassId(1),
        segment: SegmentId(0),
        alias_next: 0,
        elem_writes: writes.into_iter().map(|(k, v)| (ElemName::Int(k), PRef::int(v))).collect(),
        bytes_write: None,
        is_new,
    }
}

/// Read the full visible state (goop → element map) of a store.
fn snapshot(store: &mut PermanentStore) -> Vec<(u64, Vec<(i64, i64)>)> {
    let mut out = Vec::new();
    for g in store.all_goops() {
        let obj = store.get(g).unwrap();
        let elems: Vec<(i64, i64)> = obj
            .current_elements()
            .map(|(n, v)| (n.as_int().unwrap(), v.as_int().unwrap()))
            .collect();
        out.push((g.0, elems));
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Crash at a random write position during the second commit: after
    /// recovery the database equals exactly the state before OR after that
    /// commit — never anything in between.
    #[test]
    fn crash_is_all_or_nothing(
        first_batch in prop::collection::vec((0i64..6, -100i64..100), 1..12),
        second_batch in prop::collection::vec((0i64..6, -100i64..100), 1..12),
        crash_after in 0u64..12,
    ) {
        let mut store = PermanentStore::create(StoreConfig {
            track_size: 512,
            cache_tracks: 8,
            replicas: 1,
        }).unwrap();
        let g1 = store.alloc_goop();
        store.commit_batch(TxnTime::from_ticks(1), &[delta(g1, first_batch.clone(), true)]).unwrap();
        let before = snapshot(&mut store);

        let g2 = store.alloc_goop();
        store.disk_mut().replica_mut(0).fail_after_writes(crash_after);
        let res = store.commit_batch(
            TxnTime::from_ticks(2),
            &[delta(g1, second_batch.clone(), false), delta(g2, vec![(0, 7)], true)],
        );
        let committed = res.is_ok();

        // Power comes back: recover from the raw disk.
        let mut disk: DiskArray = store.into_disk();
        disk.replica_mut(0).revive();
        let mut recovered = PermanentStore::open(disk, 8).unwrap();
        let after = snapshot(&mut recovered);

        if committed {
            // Both objects present, with the second batch applied.
            prop_assert_eq!(after.len(), 2);
            let g1_state = &after[0].1;
            for (k, v) in &second_batch {
                let current = g1_state.iter().rev().find(|(ek, _)| ek == k).map(|(_, ev)| *ev);
                // last write per key wins within the batch
                let expected = second_batch.iter().rev().find(|(ek, _)| ek == k).map(|(_, ev)| *ev);
                prop_assert_eq!(current, expected, "key {}", k);
                let _ = v;
            }
        } else {
            prop_assert_eq!(&after, &before, "aborted commit must be invisible");
        }

        // Histories never lose the first batch's state at t1.
        let obj = recovered.get(Goop(g1.0)).unwrap();
        for (k, _) in &first_batch {
            let expected_t1 =
                first_batch.iter().rev().find(|(ek, _)| ek == k).map(|(_, ev)| *ev);
            let at_t1 = obj
                .elem_at(ElemName::Int(*k), TxnTime::from_ticks(1))
                .and_then(|p| p.as_int());
            prop_assert_eq!(at_t1, expected_t1, "t1 state of key {}", k);
        }
    }

    /// Serialization of arbitrary element maps round-trips through commit
    /// and recovery.
    #[test]
    fn commit_recover_roundtrip(
        batches in prop::collection::vec(
            prop::collection::vec((0i64..10, -1000i64..1000), 1..8),
            1..6
        ),
    ) {
        let mut store = PermanentStore::create(StoreConfig {
            track_size: 512,
            cache_tracks: 8,
            replicas: 1,
        }).unwrap();
        let g = store.alloc_goop();
        for (i, batch) in batches.iter().enumerate() {
            store.commit_batch(
                TxnTime::from_ticks(i as u64 + 1),
                &[delta(g, batch.clone(), i == 0)],
            ).unwrap();
        }
        let want = snapshot(&mut store);
        let disk = store.into_disk();
        let mut recovered = PermanentStore::open(disk, 8).unwrap();
        prop_assert_eq!(snapshot(&mut recovered), want);
        // And every intermediate state is reachable.
        let obj = recovered.get(g).unwrap();
        let mut modeled: std::collections::BTreeMap<i64, i64> = Default::default();
        for (i, batch) in batches.iter().enumerate() {
            for (k, v) in batch {
                modeled.insert(*k, *v);
            }
            for (k, v) in &modeled {
                prop_assert_eq!(
                    obj.elem_at(ElemName::Int(*k), TxnTime::from_ticks(i as u64 + 1))
                        .and_then(|p| p.as_int()),
                    Some(*v)
                );
            }
        }
    }
}
