//! Read/write set bookkeeping.

use gemstone_object::{ElemName, Goop};
use std::collections::HashSet;

/// The unit of conflict detection: one element of one object, the object's
/// byte body, or its existence/shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SlotId {
    Elem(Goop, ElemName),
    Bytes(Goop),
    /// Whole-object access (coarse grain, or shape reads like size).
    Object(Goop),
}

impl SlotId {
    /// The object this slot belongs to.
    pub fn goop(&self) -> Goop {
        match self {
            SlotId::Elem(g, _) | SlotId::Bytes(g) | SlotId::Object(g) => *g,
        }
    }
}

/// A set of accessed slots.
#[derive(Debug, Clone, Default)]
pub struct AccessSet {
    slots: HashSet<SlotId>,
}

impl AccessSet {
    /// An empty set.
    pub fn new() -> AccessSet {
        AccessSet::default()
    }

    /// Record an access.
    pub fn record(&mut self, slot: SlotId) {
        self.slots.insert(slot);
    }

    /// Number of recorded slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when nothing was accessed.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// True if the sets share a slot, either exactly or through a
    /// whole-object entry covering an element of the same object.
    pub fn intersects(&self, other: &AccessSet) -> bool {
        let (small, large) =
            if self.slots.len() <= other.slots.len() { (self, other) } else { (other, self) };
        small.slots.iter().any(|s| large.covers(*s)) || {
            // Whole-object entries in `small` cover per-element entries in
            // `large` too; check the reverse direction for Object slots.
            small
                .slots
                .iter()
                .filter(|s| matches!(s, SlotId::Object(_)))
                .any(|s| large.slots.iter().any(|o| o.goop() == s.goop()))
        }
    }

    fn covers(&self, slot: SlotId) -> bool {
        self.slots.contains(&slot) || self.slots.contains(&SlotId::Object(slot.goop()))
    }

    /// The objects on which the two sets collide, using the same covering
    /// rules as [`AccessSet::intersects`] — the forensic twin of the
    /// boolean check, enumerated for conflict attribution. Sorted and
    /// deduplicated.
    pub fn intersection_goops(&self, other: &AccessSet) -> Vec<Goop> {
        let mut goops: Vec<Goop> = self
            .slots
            .iter()
            .filter(|s| {
                other.covers(**s)
                    || (matches!(s, SlotId::Object(_))
                        && other.slots.iter().any(|o| o.goop() == s.goop()))
            })
            .map(|s| s.goop())
            .collect();
        goops.sort_unstable_by_key(|g| g.0);
        goops.dedup();
        goops
    }

    /// Every distinct object in the set, sorted (watermark-conservative
    /// conflicts attribute the whole read set: any of it may overlap).
    pub fn goops(&self) -> Vec<Goop> {
        let mut goops: Vec<Goop> = self.slots.iter().map(|s| s.goop()).collect();
        goops.sort_unstable_by_key(|g| g.0);
        goops.dedup();
        goops
    }

    /// Iterate recorded slots.
    pub fn iter(&self) -> impl Iterator<Item = SlotId> + '_ {
        self.slots.iter().copied()
    }

    /// Collapse to whole-object grain (the ablation of DESIGN.md §4.5).
    pub fn coarsened(&self) -> AccessSet {
        AccessSet { slots: self.slots.iter().map(|s| SlotId::Object(s.goop())).collect() }
    }

    /// Clear for reuse.
    pub fn clear(&mut self) {
        self.slots.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gemstone_object::SymbolId;

    fn e(g: u64, s: u32) -> SlotId {
        SlotId::Elem(Goop(g), ElemName::Sym(SymbolId(s)))
    }

    #[test]
    fn exact_intersection() {
        let mut a = AccessSet::new();
        a.record(e(1, 1));
        let mut b = AccessSet::new();
        b.record(e(1, 2));
        assert!(!a.intersects(&b), "different elements of one object don't conflict");
        b.record(e(1, 1));
        assert!(a.intersects(&b));
        assert!(b.intersects(&a));
    }

    #[test]
    fn object_grain_covers_elements() {
        let mut a = AccessSet::new();
        a.record(SlotId::Object(Goop(1)));
        let mut b = AccessSet::new();
        b.record(e(1, 5));
        assert!(a.intersects(&b), "whole-object covers any element");
        assert!(b.intersects(&a), "symmetric");
        let mut c = AccessSet::new();
        c.record(e(2, 5));
        assert!(!a.intersects(&c));
    }

    #[test]
    fn bytes_and_elements_are_distinct() {
        let mut a = AccessSet::new();
        a.record(SlotId::Bytes(Goop(1)));
        let mut b = AccessSet::new();
        b.record(e(1, 1));
        assert!(!a.intersects(&b));
    }

    #[test]
    fn coarsening_creates_false_conflicts() {
        let mut a = AccessSet::new();
        a.record(e(1, 1));
        let mut b = AccessSet::new();
        b.record(e(1, 2));
        assert!(!a.intersects(&b));
        assert!(a.coarsened().intersects(&b.coarsened()), "the ablation's false conflict");
    }

    #[test]
    fn empty_sets_never_intersect() {
        let a = AccessSet::new();
        let mut b = AccessSet::new();
        b.record(e(1, 1));
        assert!(!a.intersects(&b));
        assert!(!b.intersects(&a));
        assert!(a.is_empty());
    }
}
