//! The Transaction Manager (§6).
//!
//! "The Transaction Manager is shared by all invocations of the Object
//! Manager, and handles concurrent use of the permanent database in an
//! optimistic manner. It records accesses to the database for each session,
//! and validates them for consistency when a transaction commits."
//!
//! The scheme is Kung–Robinson backward validation at **(object, element)**
//! granularity: a committing transaction T conflicts iff some transaction
//! that committed after T began wrote an item T read. Commit times double as
//! the transaction times that stamp object histories — the paper cites Reed
//! for exactly this sharing: "storing transaction time is useful for
//! synchronizing concurrent transactions … sharing the overhead of
//! generating and storing the transaction time over both functions"
//! (§5.3.1).
//!
//! `SafeTime` (§5.4) is also computed here: the most recent time no running
//! transaction can disturb, i.e. just before the oldest active transaction's
//! snapshot end.

mod access;
mod manager;

pub use access::{AccessSet, SlotId};
pub use manager::{
    ConflictReport, ConflictStats, TrackResolver, TransactionManager, TxnCounters, TxnId, TxnToken,
    ValidationGrain,
};
