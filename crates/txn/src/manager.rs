//! Optimistic validation (Kung–Robinson backward validation).

use crate::access::AccessSet;
use gemstone_object::{GemError, GemResult};
use gemstone_telemetry::{Counter, Journal, JournalEvent};
use gemstone_temporal::{Clock, TxnTime};
use parking_lot::Mutex;
use std::collections::HashMap;

/// Identity of a transaction attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TxnId(pub u64);

/// Handed to a session at `begin`; carries the snapshot point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TxnToken {
    pub id: TxnId,
    /// The transaction sees the database state as of this time.
    pub start: TxnTime,
}

/// Validation granularity (the DESIGN.md §4.5 ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ValidationGrain {
    /// (object, element) — the paper's association-level accesses.
    #[default]
    Element,
    /// Whole object.
    Object,
}

struct CommitRecord {
    time: TxnTime,
    writes: AccessSet,
}

struct Inner {
    active: HashMap<TxnId, TxnTime>,
    log: Vec<CommitRecord>,
    next_id: u64,
}

/// Live outcome counters; shared cells for registry binding.
#[derive(Debug, Default)]
pub struct TxnCounters {
    pub begins: Counter,
    pub commits: Counter,
    pub aborts: Counter,
    /// Aborts caused by failed backward validation specifically (explicit
    /// `abort` calls count in `aborts` only).
    pub conflicts: Counter,
}

impl TxnCounters {
    fn share(&self) -> TxnCounters {
        TxnCounters {
            begins: self.begins.clone(),
            commits: self.commits.clone(),
            aborts: self.aborts.clone(),
            conflicts: self.conflicts.clone(),
        }
    }
}

/// The shared Transaction Manager.
pub struct TransactionManager {
    clock: Clock,
    grain: ValidationGrain,
    counters: TxnCounters,
    /// Flight-recorder handle; events are emitted under the manager lock,
    /// beside the counter moves, so journal and registry stay 1:1 under
    /// concurrent sessions.
    journal: Option<Journal>,
    inner: Mutex<Inner>,
}

impl TransactionManager {
    /// A manager whose first commit time follows `last_committed` (EPOCH for
    /// a fresh database).
    pub fn new(last_committed: TxnTime) -> TransactionManager {
        TransactionManager::with_grain(last_committed, ValidationGrain::Element)
    }

    /// Choose the validation granularity (benchmarks compare both).
    pub fn with_grain(last_committed: TxnTime, grain: ValidationGrain) -> TransactionManager {
        TransactionManager {
            clock: Clock::resume_after(last_committed),
            grain,
            counters: TxnCounters::default(),
            journal: None,
            inner: Mutex::new(Inner { active: HashMap::new(), log: Vec::new(), next_id: 1 }),
        }
    }

    /// Attach the flight recorder (before the manager is shared).
    pub fn attach_journal(&mut self, journal: Journal) {
        self.journal = Some(journal);
    }

    #[inline]
    fn journal_on(&self) -> Option<&Journal> {
        match &self.journal {
            Some(j) if j.enabled() => Some(j),
            _ => None,
        }
    }

    /// Begin a transaction: snapshot at the latest committed time.
    pub fn begin(&self) -> TxnToken {
        let mut inner = self.inner.lock();
        let id = TxnId(inner.next_id);
        inner.next_id += 1;
        let start = self.clock.last_issued();
        inner.active.insert(id, start);
        self.counters.begins.inc();
        if let Some(j) = self.journal_on() {
            j.emit(&JournalEvent::TxnBegin);
        }
        TxnToken { id, start }
    }

    /// Validate and commit: returns the commit time on success. On conflict
    /// the transaction is aborted (removed from the active set) and the
    /// session must retry from a fresh `begin`.
    ///
    /// Validation is backward: T's reads must not intersect the writes of
    /// any transaction that committed after T began. Read-only transactions
    /// therefore always commit, without consuming a transaction time.
    pub fn commit(
        &self,
        token: TxnToken,
        reads: &AccessSet,
        writes: &AccessSet,
    ) -> GemResult<TxnTime> {
        let mut inner = self.inner.lock();
        if inner.active.remove(&token.id).is_none() {
            return Err(GemError::NoTransaction);
        }
        let (reads_g, writes_g) = match self.grain {
            ValidationGrain::Element => (reads.clone(), writes.clone()),
            ValidationGrain::Object => (reads.coarsened(), writes.coarsened()),
        };
        let conflict = inner
            .log
            .iter()
            .rev()
            .take_while(|rec| rec.time > token.start)
            .find(|rec| rec.writes.intersects(&reads_g))
            .map(|rec| rec.time);
        if let Some(time) = conflict {
            self.counters.aborts.inc();
            self.counters.conflicts.inc();
            if let Some(j) = self.journal_on() {
                j.emit(&JournalEvent::TxnAbort { conflict: true });
            }
            return Err(GemError::TransactionConflict {
                detail: format!(
                    "a transaction committed at {} wrote data read since {}",
                    time, token.start
                ),
            });
        }
        if writes.is_empty() {
            self.counters.commits.inc();
            if let Some(j) = self.journal_on() {
                j.emit(&JournalEvent::TxnCommit);
            }
            return Ok(self.clock.last_issued());
        }
        let time = self.clock.tick();
        inner.log.push(CommitRecord { time, writes: writes_g });
        self.counters.commits.inc();
        if let Some(j) = self.journal_on() {
            j.emit(&JournalEvent::TxnCommit);
        }
        self.prune_log(&mut inner);
        Ok(time)
    }

    /// Abort without validating.
    pub fn abort(&self, token: TxnToken) {
        let mut inner = self.inner.lock();
        if inner.active.remove(&token.id).is_some() {
            self.counters.aborts.inc();
            if let Some(j) = self.journal_on() {
                j.emit(&JournalEvent::TxnAbort { conflict: false });
            }
        }
    }

    /// §5.4: "A read-only transaction can set its time dial to SafeTime to
    /// get the most recent state for which no currently running transaction
    /// can make changes." That is the newest time ≤ every active
    /// transaction's start.
    pub fn safe_time(&self) -> TxnTime {
        let inner = self.inner.lock();
        inner.active.values().copied().min().unwrap_or_else(|| self.clock.last_issued())
    }

    /// The most recent commit time.
    pub fn now(&self) -> TxnTime {
        self.clock.last_issued()
    }

    /// (commits, aborts) so far.
    pub fn outcome_counts(&self) -> (u64, u64) {
        (self.counters.commits.get(), self.counters.aborts.get())
    }

    /// Live counter cells (for registry binding).
    pub fn counters(&self) -> TxnCounters {
        self.counters.share()
    }

    /// Drop log records no active transaction can conflict with.
    fn prune_log(&self, inner: &mut Inner) {
        let horizon = inner.active.values().copied().min();
        match horizon {
            Some(h) => inner.log.retain(|r| r.time > h),
            None => inner.log.clear(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::SlotId;
    use gemstone_object::{ElemName, Goop, SymbolId};

    fn slot(g: u64, s: u32) -> SlotId {
        SlotId::Elem(Goop(g), ElemName::Sym(SymbolId(s)))
    }

    fn set(slots: &[SlotId]) -> AccessSet {
        let mut a = AccessSet::new();
        for s in slots {
            a.record(*s);
        }
        a
    }

    #[test]
    fn serial_transactions_commit_with_increasing_times() {
        let tm = TransactionManager::new(TxnTime::EPOCH);
        let t1 = tm.begin();
        let c1 = tm.commit(t1, &set(&[]), &set(&[slot(1, 1)])).unwrap();
        let t2 = tm.begin();
        let c2 = tm.commit(t2, &set(&[slot(1, 1)]), &set(&[slot(1, 1)])).unwrap();
        assert!(c2 > c1);
        assert_eq!(tm.outcome_counts(), (2, 0));
    }

    #[test]
    fn write_read_conflict_aborts_reader() {
        let tm = TransactionManager::new(TxnTime::EPOCH);
        let reader = tm.begin();
        let writer = tm.begin();
        tm.commit(writer, &set(&[]), &set(&[slot(1, 1)])).unwrap();
        let err = tm.commit(reader, &set(&[slot(1, 1)]), &set(&[slot(2, 2)]));
        assert!(matches!(err, Err(GemError::TransactionConflict { .. })));
        assert_eq!(tm.outcome_counts(), (1, 1));
    }

    #[test]
    fn disjoint_elements_do_not_conflict() {
        let tm = TransactionManager::new(TxnTime::EPOCH);
        let a = tm.begin();
        let b = tm.begin();
        tm.commit(a, &set(&[slot(1, 1)]), &set(&[slot(1, 1)])).unwrap();
        // b read a *different element of the same object*: fine at element grain.
        tm.commit(b, &set(&[slot(1, 2)]), &set(&[slot(1, 2)])).unwrap();
        assert_eq!(tm.outcome_counts(), (2, 0));
    }

    #[test]
    fn object_grain_is_stricter() {
        let tm = TransactionManager::with_grain(TxnTime::EPOCH, ValidationGrain::Object);
        let a = tm.begin();
        let b = tm.begin();
        tm.commit(a, &set(&[slot(1, 1)]), &set(&[slot(1, 1)])).unwrap();
        let err = tm.commit(b, &set(&[slot(1, 2)]), &set(&[slot(1, 2)]));
        assert!(err.is_err(), "false conflict at object grain");
    }

    #[test]
    fn blind_writes_do_not_conflict() {
        // Optimistic backward validation checks reads only: two blind
        // writers serialize by commit order.
        let tm = TransactionManager::new(TxnTime::EPOCH);
        let a = tm.begin();
        let b = tm.begin();
        tm.commit(a, &set(&[]), &set(&[slot(1, 1)])).unwrap();
        tm.commit(b, &set(&[]), &set(&[slot(1, 1)])).unwrap();
        assert_eq!(tm.outcome_counts(), (2, 0));
    }

    #[test]
    fn read_only_transactions_always_commit() {
        let tm = TransactionManager::new(TxnTime::EPOCH);
        let r = tm.begin();
        let w = tm.begin();
        tm.commit(w, &set(&[]), &set(&[slot(1, 1)])).unwrap();
        // r read something w wrote — but r wrote nothing, so it would be
        // serialized before w... except backward validation still flags it:
        // r's read is inconsistent with its snapshot only if it read AFTER
        // w's commit. Conservatively, conflicting reads abort.
        let err = tm.commit(r, &set(&[slot(1, 1)]), &set(&[]));
        assert!(err.is_err(), "stale read detected");
        // A genuinely clean read-only txn commits without a new time.
        let before = tm.now();
        let r2 = tm.begin();
        assert_eq!(tm.commit(r2, &set(&[slot(9, 9)]), &set(&[])).unwrap(), before);
        assert_eq!(tm.now(), before, "no time consumed");
    }

    #[test]
    fn commit_unknown_token_fails() {
        let tm = TransactionManager::new(TxnTime::EPOCH);
        let t = tm.begin();
        tm.abort(t);
        assert!(matches!(tm.commit(t, &set(&[]), &set(&[])), Err(GemError::NoTransaction)));
    }

    #[test]
    fn safe_time_tracks_oldest_active() {
        let tm = TransactionManager::new(TxnTime::EPOCH);
        let a = tm.begin(); // starts at EPOCH level
        let w = tm.begin();
        tm.commit(w, &set(&[]), &set(&[slot(1, 1)])).unwrap();
        assert_eq!(tm.safe_time(), a.start, "a could still see pre-commit state");
        tm.abort(a);
        assert_eq!(tm.safe_time(), tm.now(), "no active txns: latest commit is safe");
    }

    #[test]
    fn conflict_is_against_snapshot_not_wallclock() {
        let tm = TransactionManager::new(TxnTime::EPOCH);
        // Writer commits BEFORE reader begins: no conflict.
        let w = tm.begin();
        tm.commit(w, &set(&[]), &set(&[slot(1, 1)])).unwrap();
        let r = tm.begin();
        assert!(tm.commit(r, &set(&[slot(1, 1)]), &set(&[])).is_ok());
    }

    #[test]
    fn log_pruning_keeps_validation_correct() {
        let tm = TransactionManager::new(TxnTime::EPOCH);
        let old = tm.begin();
        for i in 0..100 {
            let w = tm.begin();
            tm.commit(w, &set(&[]), &set(&[slot(i, 0)])).unwrap();
        }
        // `old` read slot(50,0), written meanwhile: must still abort even
        // after pruning (old is the horizon, so records stay).
        assert!(tm.commit(old, &set(&[slot(50, 0)]), &set(&[slot(200, 0)])).is_err());
    }

    #[test]
    fn concurrent_sessions_stress() {
        use std::sync::Arc;
        let tm = Arc::new(TransactionManager::new(TxnTime::EPOCH));
        let mut handles = Vec::new();
        for thread in 0..4u64 {
            let tm = tm.clone();
            handles.push(std::thread::spawn(move || {
                let mut committed = 0;
                for i in 0..200u64 {
                    let t = tm.begin();
                    let s = slot((thread * 1000 + i) % 50, 0);
                    if tm.commit(t, &set(&[s]), &set(&[s])).is_ok() {
                        committed += 1;
                    }
                }
                committed
            }));
        }
        let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        let (commits, aborts) = tm.outcome_counts();
        assert_eq!(commits, total);
        assert_eq!(commits + aborts, 800);
        assert!(commits > 0);
    }
}
