//! Optimistic validation (Kung–Robinson backward validation).

use crate::access::AccessSet;
use gemstone_object::{ConflictKind, GemError, GemResult, Goop};
use gemstone_telemetry::{Counter, Histogram, Journal, JournalEvent};
use gemstone_temporal::{Clock, TxnTime};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Identity of a transaction attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TxnId(pub u64);

/// Handed to a session at `begin`; carries the snapshot point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TxnToken {
    pub id: TxnId,
    /// The transaction sees the database state as of this time.
    pub start: TxnTime,
    /// Telemetry session id of the owner (0 when begun through the plain
    /// `begin*` entries) — stamped into commit records so a later conflict
    /// can name the culprit session.
    pub session: u64,
}

/// Resolves an object to its current home track (installed by the engine;
/// the storage layer owns the GOOP table). Called under the manager's
/// inner lock, which precedes store internals in the DESIGN.md §9 lock
/// hierarchy.
pub type TrackResolver = Arc<dyn Fn(Goop) -> Option<u64> + Send + Sync>;

/// Objects/tracks attributed per conflict report (hot conflicts involve a
/// handful of slots; the cap keeps journal lines and reports bounded).
const MAX_REPORT_OBJECTS: usize = 8;

/// Distinct objects/tracks tracked in the conflict-heat tables before new
/// entries are dropped (existing entries keep counting).
const MAX_HEAT_ENTRIES: usize = 1024;

/// The forensic record of one validation failure: why the transaction
/// aborted, whose commit killed it, and which objects collided. Built by
/// the Transaction Manager at validation time, journaled as a `TxnConflict`
/// event, and retrievable per session via `Session::last_conflict`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConflictReport {
    /// Real overlap or watermark-conservative refusal.
    pub kind: ConflictKind,
    /// Telemetry session id of the aborted transaction (0 if unknown).
    pub session: u64,
    /// When the aborted transaction began (its snapshot time).
    pub started_at: TxnTime,
    /// The commit that killed it: the conflicting commit's time for an
    /// overlap, the prune watermark for a conservative refusal.
    pub culprit_time: TxnTime,
    /// Telemetry session id of the culprit committer (0 when unknown —
    /// always 0 for watermark conflicts: the culprit's record is pruned).
    pub culprit_session: u64,
    /// Overlapping object identities (capped at 8): the read∩write overlap
    /// for an overlap conflict, the transaction's read set for a watermark
    /// refusal (any of it may overlap the pruned records).
    pub goops: Vec<u64>,
    /// Current home tracks of `goops`, deduplicated (empty when no track
    /// resolver is installed).
    pub tracks: Vec<u64>,
}

/// Aggregated conflict-heat: how often validation failed, per kind, and
/// the objects/tracks most often involved (hottest first).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ConflictStats {
    pub overlap: u64,
    pub watermark: u64,
    /// (goop, conflicts) sorted by count descending then goop.
    pub by_object: Vec<(u64, u64)>,
    /// (track, conflicts) sorted by count descending then track.
    pub by_track: Vec<(u64, u64)>,
}

impl ConflictStats {
    pub fn total(&self) -> u64 {
        self.overlap + self.watermark
    }
}

/// Validation granularity (the DESIGN.md §4.5 ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ValidationGrain {
    /// (object, element) — the paper's association-level accesses.
    #[default]
    Element,
    /// Whole object.
    Object,
}

struct CommitRecord {
    time: TxnTime,
    session: u64,
    writes: AccessSet,
}

struct Inner {
    active: HashMap<TxnId, TxnTime>,
    log: Vec<CommitRecord>,
    next_id: u64,
    /// Per-kind conflict totals plus bounded per-object / per-track heat
    /// tables — the aggregate view behind [`TransactionManager::conflict_stats`].
    conflicts_overlap: u64,
    conflicts_watermark: u64,
    conflict_objects: HashMap<u64, u64>,
    conflict_tracks: HashMap<u64, u64>,
    /// The most recent conflict report per telemetry session id, for
    /// `Session::last_conflict`.
    last_conflict: HashMap<u64, ConflictReport>,
    /// Newest commit time whose log record has been pruned. A writing
    /// transaction that began at or before this cannot be validated (the
    /// records it must check are gone) and aborts conservatively. This
    /// closes the registration race: a commit can prune its own record
    /// while a session is between reading the published snapshot and
    /// registering via `begin_at`.
    pruned_through: TxnTime,
}

/// Live outcome counters; shared cells for registry binding.
#[derive(Debug, Default)]
pub struct TxnCounters {
    pub begins: Counter,
    pub commits: Counter,
    pub aborts: Counter,
    /// Aborts caused by failed backward validation specifically (explicit
    /// `abort` calls count in `aborts` only).
    pub conflicts: Counter,
}

impl TxnCounters {
    /// Shared handles (non-detaching): every copy updates the same cells.
    /// This is what the registry binds, so the live `txn.*` metrics and the
    /// manager's own counts can never diverge.
    pub fn share(&self) -> TxnCounters {
        TxnCounters {
            begins: self.begins.clone(),
            commits: self.commits.clone(),
            aborts: self.aborts.clone(),
            conflicts: self.conflicts.clone(),
        }
    }
}

/// `Clone` takes a *detached* point-in-time copy (checkpoint semantics,
/// matching `DiskCounters`): updates to either side are independent. Use
/// [`TxnCounters::share`] when you want live cells.
impl Clone for TxnCounters {
    fn clone(&self) -> TxnCounters {
        TxnCounters {
            begins: self.begins.detached_copy(),
            commits: self.commits.detached_copy(),
            aborts: self.aborts.detached_copy(),
            conflicts: self.conflicts.detached_copy(),
        }
    }
}

/// The shared Transaction Manager.
pub struct TransactionManager {
    clock: Clock,
    grain: ValidationGrain,
    counters: TxnCounters,
    /// Flight-recorder handle; events are emitted under the manager lock,
    /// beside the counter moves, so journal and registry stay 1:1 under
    /// concurrent sessions.
    journal: Option<Journal>,
    /// Microseconds each committer waited to enter the validation critical
    /// section — the direct measure of commit-path contention.
    validation_wait: Histogram,
    /// Goop → home-track resolution for conflict attribution, installed
    /// once by the engine after construction (lock-free to read).
    resolver: OnceLock<TrackResolver>,
    inner: Mutex<Inner>,
}

impl TransactionManager {
    /// A manager whose first commit time follows `last_committed` (EPOCH for
    /// a fresh database).
    pub fn new(last_committed: TxnTime) -> TransactionManager {
        TransactionManager::with_grain(last_committed, ValidationGrain::Element)
    }

    /// Choose the validation granularity (benchmarks compare both).
    pub fn with_grain(last_committed: TxnTime, grain: ValidationGrain) -> TransactionManager {
        TransactionManager {
            clock: Clock::resume_after(last_committed),
            grain,
            counters: TxnCounters::default(),
            journal: None,
            validation_wait: Histogram::new(),
            resolver: OnceLock::new(),
            inner: Mutex::new(Inner {
                active: HashMap::new(),
                log: Vec::new(),
                next_id: 1,
                conflicts_overlap: 0,
                conflicts_watermark: 0,
                conflict_objects: HashMap::new(),
                conflict_tracks: HashMap::new(),
                last_conflict: HashMap::new(),
                // Commits from before this manager existed (pre-recovery)
                // have no log records: snapshots older than the resume
                // point cannot be validated.
                pruned_through: last_committed,
            }),
        }
    }

    /// Attach the flight recorder (before the manager is shared).
    pub fn attach_journal(&mut self, journal: Journal) {
        self.journal = Some(journal);
    }

    /// Install the goop → home-track resolver conflict reports use for
    /// track attribution. One-shot: later calls are ignored.
    pub fn set_track_resolver(&self, f: TrackResolver) {
        let _ = self.resolver.set(f);
    }

    #[inline]
    fn journal_on(&self) -> Option<&Journal> {
        match &self.journal {
            Some(j) if j.enabled() => Some(j),
            _ => None,
        }
    }

    /// Begin a transaction: snapshot at the latest committed time.
    pub fn begin(&self) -> TxnToken {
        self.begin_at(self.clock.last_issued())
    }

    /// Begin a transaction snapshotted at an explicit `start` time — the
    /// time of the state the session actually sees. A concurrent engine
    /// must pass its *published* committed time here, not the manager's
    /// clock: a transaction whose commit is logged (clock advanced) but not
    /// yet published has `log time > start` for sessions beginning off the
    /// published state, so validation still catches the overlap. Beginning
    /// from `clock.last_issued()` instead would blind validation to exactly
    /// that window.
    pub fn begin_at(&self, start: TxnTime) -> TxnToken {
        let mut inner = self.inner.lock();
        self.register_locked(&mut inner, start, 0)
    }

    /// [`TransactionManager::begin_at`], refusing a stale start. `None`
    /// means commits pruned the log past `start` between the caller reading
    /// its published view and registering here — the caller must re-read
    /// the (necessarily newer) published state and try again. Registering
    /// through this check closes the begin/prune race *at begin time*:
    /// once the transaction is in the active set, pruning never passes its
    /// start, so a registered writer cannot be conservatively aborted by
    /// the watermark it just checked.
    pub fn begin_at_checked(&self, start: TxnTime) -> Option<TxnToken> {
        self.begin_at_checked_for(start, 0)
    }

    /// [`TransactionManager::begin_at_checked`] with the owner's telemetry
    /// session id, stamped into the token (and, at commit, into the commit
    /// record) so conflict reports can name culprit sessions.
    pub fn begin_at_checked_for(&self, start: TxnTime, session: u64) -> Option<TxnToken> {
        let mut inner = self.inner.lock();
        if start < inner.pruned_through {
            return None;
        }
        Some(self.register_locked(&mut inner, start, session))
    }

    fn register_locked(&self, inner: &mut Inner, start: TxnTime, session: u64) -> TxnToken {
        let id = TxnId(inner.next_id);
        inner.next_id += 1;
        inner.active.insert(id, start);
        self.counters.begins.inc();
        if let Some(j) = self.journal_on() {
            j.emit(&JournalEvent::TxnBegin);
        }
        TxnToken { id, start, session }
    }

    /// Validate and commit: returns the commit time on success. On conflict
    /// the transaction is aborted (removed from the active set) and the
    /// session must retry from a fresh `begin`.
    ///
    /// Validation is backward: T's reads must not intersect the writes of
    /// any transaction that committed after T began. Read-only transactions
    /// skip validation entirely and always commit, without consuming a
    /// transaction time: a session that reads *as of its snapshot* saw a
    /// committed state that really existed, so it serializes at its start
    /// time no matter who committed since.
    pub fn commit(
        &self,
        token: TxnToken,
        reads: &AccessSet,
        writes: &AccessSet,
    ) -> GemResult<TxnTime> {
        let waited = Instant::now();
        let mut inner = self.inner.lock();
        if inner.active.remove(&token.id).is_none() {
            return Err(GemError::NoTransaction);
        }
        let wait_us = waited.elapsed().as_micros() as u64;
        self.validation_wait.record(wait_us);
        if let Some(j) = self.journal_on() {
            j.emit(&JournalEvent::ValidationWait { us: wait_us });
        }
        if writes.is_empty() {
            self.counters.commits.inc();
            if let Some(j) = self.journal_on() {
                j.emit(&JournalEvent::TxnCommit);
            }
            return Ok(token.start);
        }
        let (reads_g, writes_g) = match self.grain {
            ValidationGrain::Element => (reads.clone(), writes.clone()),
            ValidationGrain::Object => (reads.coarsened(), writes.coarsened()),
        };
        // Validation failure aborts: the watermark case means records this
        // transaction must validate against were pruned before it
        // registered (it raced a commit's prune between reading the
        // published snapshot and `begin_at`), so the overlap cannot be
        // ruled out and the abort is conservative.
        if let Err(report) = self.validate_locked(&mut inner, &token, &reads_g) {
            return Err(self.conflict_abort_locked(&mut inner, *report));
        }
        let time = self.clock.tick();
        inner.log.push(CommitRecord { time, session: token.session, writes: writes_g });
        self.counters.commits.inc();
        if let Some(j) = self.journal_on() {
            j.emit(&JournalEvent::TxnCommit);
        }
        self.prune_log(&mut inner);
        Ok(time)
    }

    /// Phase 1 of the engine's two-phase writing commit: validate
    /// `token`'s reads and assign the commit time, **without** logging the
    /// commit or removing the transaction from the active set. Because the
    /// transaction stays active, the prune horizon cannot pass its start
    /// while the caller makes the writes durable; because nothing is
    /// logged, a storage failure aborts ([`TransactionManager::abort`])
    /// with no trace in the commit log or the `pruned_through` watermark —
    /// the failure mode that would otherwise strand every later
    /// `begin_at_checked` below a commit time that never published.
    ///
    /// On conflict the transaction is aborted here, exactly as
    /// [`TransactionManager::commit`] would.
    ///
    /// The caller must serialize `prepare` → `finalize`/`abort` against
    /// every other *writing* commit (the engine holds its commit lock
    /// across the pair); read-only commits may interleave freely.
    pub fn prepare(
        &self,
        token: &TxnToken,
        reads: &AccessSet,
        writes: &AccessSet,
    ) -> GemResult<TxnTime> {
        let waited = Instant::now();
        let mut inner = self.inner.lock();
        if !inner.active.contains_key(&token.id) {
            return Err(GemError::NoTransaction);
        }
        let wait_us = waited.elapsed().as_micros() as u64;
        self.validation_wait.record(wait_us);
        if let Some(j) = self.journal_on() {
            j.emit(&JournalEvent::ValidationWait { us: wait_us });
        }
        if writes.is_empty() {
            // Schema-only commits consume no transaction time.
            return Ok(token.start);
        }
        let reads_g = match self.grain {
            ValidationGrain::Element => reads.clone(),
            ValidationGrain::Object => reads.coarsened(),
        };
        if let Err(report) = self.validate_locked(&mut inner, token, &reads_g) {
            inner.active.remove(&token.id);
            return Err(self.conflict_abort_locked(&mut inner, *report));
        }
        Ok(self.clock.tick())
    }

    /// Phase 2: the writes are durable; log the commit at the `time`
    /// assigned by [`TransactionManager::prepare`] and retire the
    /// transaction. Infallible in the engine's usage (the token was
    /// prepared and never finalized twice); `NoTransaction` guards misuse.
    pub fn finalize(
        &self,
        token: TxnToken,
        time: TxnTime,
        writes: &AccessSet,
    ) -> GemResult<TxnTime> {
        let mut inner = self.inner.lock();
        if inner.active.remove(&token.id).is_none() {
            return Err(GemError::NoTransaction);
        }
        if !writes.is_empty() {
            let writes_g = match self.grain {
                ValidationGrain::Element => writes.clone(),
                ValidationGrain::Object => writes.coarsened(),
            };
            inner.log.push(CommitRecord { time, session: token.session, writes: writes_g });
        }
        self.counters.commits.inc();
        if let Some(j) = self.journal_on() {
            j.emit(&JournalEvent::TxnCommit);
        }
        self.prune_log(&mut inner);
        Ok(time)
    }

    /// Backward validation of `reads_g` against the log and the watermark,
    /// under the inner lock. Does not touch the active set or counters; a
    /// failure returns the full forensic report for the caller to record.
    fn validate_locked(
        &self,
        inner: &mut Inner,
        token: &TxnToken,
        reads_g: &AccessSet,
    ) -> Result<(), Box<ConflictReport>> {
        if token.start < inner.pruned_through {
            // The culprit's record is pruned: attribute the refusal to the
            // watermark and name the whole read set (any of it may
            // overlap the records that are gone).
            let goops: Vec<u64> =
                reads_g.goops().into_iter().take(MAX_REPORT_OBJECTS).map(|g| g.0).collect();
            return Err(Box::new(self.attribute(ConflictReport {
                kind: ConflictKind::Watermark,
                session: token.session,
                started_at: token.start,
                culprit_time: inner.pruned_through,
                culprit_session: 0,
                tracks: Vec::new(),
                goops,
            })));
        }
        let conflict = inner
            .log
            .iter()
            .rev()
            .take_while(|rec| rec.time > token.start)
            .find(|rec| rec.writes.intersects(reads_g));
        if let Some(rec) = conflict {
            let goops: Vec<u64> = rec
                .writes
                .intersection_goops(reads_g)
                .into_iter()
                .take(MAX_REPORT_OBJECTS)
                .map(|g| g.0)
                .collect();
            return Err(Box::new(self.attribute(ConflictReport {
                kind: ConflictKind::Overlap,
                session: token.session,
                started_at: token.start,
                culprit_time: rec.time,
                culprit_session: rec.session,
                tracks: Vec::new(),
                goops,
            })));
        }
        Ok(())
    }

    /// Fill in the home tracks of a report's objects via the installed
    /// resolver (no resolver: tracks stay empty).
    fn attribute(&self, mut report: ConflictReport) -> ConflictReport {
        if let Some(resolve) = self.resolver.get() {
            let mut tracks: Vec<u64> =
                report.goops.iter().filter_map(|&g| resolve(Goop(g))).collect();
            tracks.sort_unstable();
            tracks.dedup();
            report.tracks = tracks;
        }
        report
    }

    /// Shared conflict epilogue, under the inner lock: move the abort and
    /// conflict counters, fold the report into the heat tables, stash it
    /// for `last_conflict`, journal `TxnAbort` + `TxnConflict` (beside the
    /// counter moves, so journaled conflict events and the conflicts
    /// counter stay 1:1 under concurrency), and build the error.
    fn conflict_abort_locked(&self, inner: &mut Inner, report: ConflictReport) -> GemError {
        self.counters.aborts.inc();
        self.counters.conflicts.inc();
        match report.kind {
            ConflictKind::Overlap => inner.conflicts_overlap += 1,
            ConflictKind::Watermark => inner.conflicts_watermark += 1,
        }
        for &g in &report.goops {
            if inner.conflict_objects.len() < MAX_HEAT_ENTRIES
                || inner.conflict_objects.contains_key(&g)
            {
                *inner.conflict_objects.entry(g).or_insert(0) += 1;
            }
        }
        for &t in &report.tracks {
            if inner.conflict_tracks.len() < MAX_HEAT_ENTRIES
                || inner.conflict_tracks.contains_key(&t)
            {
                *inner.conflict_tracks.entry(t).or_insert(0) += 1;
            }
        }
        if let Some(j) = self.journal_on() {
            j.emit(&JournalEvent::TxnAbort { conflict: true });
            j.emit(&JournalEvent::TxnConflict {
                kind: report.kind.as_str().to_string(),
                session: report.session,
                start: report.started_at.ticks(),
                culprit_time: report.culprit_time.ticks(),
                culprit_session: report.culprit_session,
                goops: report.goops.clone(),
                tracks: report.tracks.clone(),
            });
        }
        let detail = match report.kind {
            ConflictKind::Watermark => format!(
                "commit log pruned through {} but the transaction began at {}: \
                 overlap cannot be ruled out",
                report.culprit_time, report.started_at
            ),
            ConflictKind::Overlap => {
                let goops: Vec<String> = report.goops.iter().map(|g| format!("g{g}")).collect();
                format!(
                    "a transaction committed at {} wrote data read since {} (goops: {})",
                    report.culprit_time,
                    report.started_at,
                    if goops.is_empty() { "unrecorded".to_string() } else { goops.join(", ") }
                )
            }
        };
        let kind = report.kind;
        inner.last_conflict.insert(report.session, report);
        GemError::TransactionConflict { kind, detail }
    }

    /// The most recent conflict report recorded for `session`, if any.
    pub fn last_conflict_for(&self, session: u64) -> Option<ConflictReport> {
        self.inner.lock().last_conflict.get(&session).cloned()
    }

    /// Aggregated conflict heat: per-kind totals plus the objects and
    /// tracks most often involved, hottest first.
    pub fn conflict_stats(&self) -> ConflictStats {
        let inner = self.inner.lock();
        let mut by_object: Vec<(u64, u64)> =
            inner.conflict_objects.iter().map(|(&g, &n)| (g, n)).collect();
        by_object.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let mut by_track: Vec<(u64, u64)> =
            inner.conflict_tracks.iter().map(|(&t, &n)| (t, n)).collect();
        by_track.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        ConflictStats {
            overlap: inner.conflicts_overlap,
            watermark: inner.conflicts_watermark,
            by_object,
            by_track,
        }
    }

    /// Abort without validating.
    pub fn abort(&self, token: TxnToken) {
        let mut inner = self.inner.lock();
        if inner.active.remove(&token.id).is_some() {
            self.counters.aborts.inc();
            if let Some(j) = self.journal_on() {
                j.emit(&JournalEvent::TxnAbort { conflict: false });
            }
        }
    }

    /// §5.4: "A read-only transaction can set its time dial to SafeTime to
    /// get the most recent state for which no currently running transaction
    /// can make changes." That is the newest time ≤ every active
    /// transaction's start.
    pub fn safe_time(&self) -> TxnTime {
        let inner = self.inner.lock();
        inner.active.values().copied().min().unwrap_or_else(|| self.clock.last_issued())
    }

    /// The most recent commit time.
    pub fn now(&self) -> TxnTime {
        self.clock.last_issued()
    }

    /// (commits, aborts) so far.
    pub fn outcome_counts(&self) -> (u64, u64) {
        (self.counters.commits.get(), self.counters.aborts.get())
    }

    /// Live counter cells (for registry binding).
    pub fn counters(&self) -> TxnCounters {
        self.counters.share()
    }

    /// The live validation-wait histogram (`txn.validation_wait_us`):
    /// microseconds spent waiting to enter the validation critical section.
    pub fn validation_wait_histogram(&self) -> Histogram {
        self.validation_wait.clone()
    }

    /// Drop log records no active transaction can conflict with, advancing
    /// the `pruned_through` watermark past everything removed.
    fn prune_log(&self, inner: &mut Inner) {
        let horizon = inner.active.values().copied().min();
        match horizon {
            Some(h) => {
                let removed_max = inner.log.iter().filter(|r| r.time <= h).map(|r| r.time).max();
                if let Some(m) = removed_max {
                    inner.pruned_through = inner.pruned_through.max(m);
                    inner.log.retain(|r| r.time > h);
                }
            }
            None => {
                if let Some(m) = inner.log.iter().map(|r| r.time).max() {
                    inner.pruned_through = inner.pruned_through.max(m);
                }
                inner.log.clear();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::SlotId;
    use gemstone_object::{ElemName, Goop, SymbolId};

    fn slot(g: u64, s: u32) -> SlotId {
        SlotId::Elem(Goop(g), ElemName::Sym(SymbolId(s)))
    }

    fn set(slots: &[SlotId]) -> AccessSet {
        let mut a = AccessSet::new();
        for s in slots {
            a.record(*s);
        }
        a
    }

    #[test]
    fn serial_transactions_commit_with_increasing_times() {
        let tm = TransactionManager::new(TxnTime::EPOCH);
        let t1 = tm.begin();
        let c1 = tm.commit(t1, &set(&[]), &set(&[slot(1, 1)])).unwrap();
        let t2 = tm.begin();
        let c2 = tm.commit(t2, &set(&[slot(1, 1)]), &set(&[slot(1, 1)])).unwrap();
        assert!(c2 > c1);
        assert_eq!(tm.outcome_counts(), (2, 0));
    }

    #[test]
    fn write_read_conflict_aborts_reader() {
        let tm = TransactionManager::new(TxnTime::EPOCH);
        let reader = tm.begin();
        let writer = tm.begin();
        tm.commit(writer, &set(&[]), &set(&[slot(1, 1)])).unwrap();
        let err = tm.commit(reader, &set(&[slot(1, 1)]), &set(&[slot(2, 2)]));
        assert!(matches!(err, Err(GemError::TransactionConflict { .. })));
        assert_eq!(tm.outcome_counts(), (1, 1));
    }

    #[test]
    fn disjoint_elements_do_not_conflict() {
        let tm = TransactionManager::new(TxnTime::EPOCH);
        let a = tm.begin();
        let b = tm.begin();
        tm.commit(a, &set(&[slot(1, 1)]), &set(&[slot(1, 1)])).unwrap();
        // b read a *different element of the same object*: fine at element grain.
        tm.commit(b, &set(&[slot(1, 2)]), &set(&[slot(1, 2)])).unwrap();
        assert_eq!(tm.outcome_counts(), (2, 0));
    }

    #[test]
    fn object_grain_is_stricter() {
        let tm = TransactionManager::with_grain(TxnTime::EPOCH, ValidationGrain::Object);
        let a = tm.begin();
        let b = tm.begin();
        tm.commit(a, &set(&[slot(1, 1)]), &set(&[slot(1, 1)])).unwrap();
        let err = tm.commit(b, &set(&[slot(1, 2)]), &set(&[slot(1, 2)]));
        assert!(err.is_err(), "false conflict at object grain");
    }

    #[test]
    fn blind_writes_do_not_conflict() {
        // Optimistic backward validation checks reads only: two blind
        // writers serialize by commit order.
        let tm = TransactionManager::new(TxnTime::EPOCH);
        let a = tm.begin();
        let b = tm.begin();
        tm.commit(a, &set(&[]), &set(&[slot(1, 1)])).unwrap();
        tm.commit(b, &set(&[]), &set(&[slot(1, 1)])).unwrap();
        assert_eq!(tm.outcome_counts(), (2, 0));
    }

    #[test]
    fn read_only_transactions_always_commit() {
        let tm = TransactionManager::new(TxnTime::EPOCH);
        let r = tm.begin();
        let w = tm.begin();
        tm.commit(w, &set(&[]), &set(&[slot(1, 1)])).unwrap();
        // r read something w later overwrote — but r reads *as of its
        // snapshot*, so its view is the committed state that existed at its
        // start: it serializes there and commits regardless of w.
        let c = tm.commit(r, &set(&[slot(1, 1)]), &set(&[])).unwrap();
        assert_eq!(c, r.start, "read-only commit serializes at its snapshot");
        // A read-only txn never consumes a transaction time.
        let before = tm.now();
        let r2 = tm.begin();
        assert_eq!(tm.commit(r2, &set(&[slot(9, 9)]), &set(&[])).unwrap(), before);
        assert_eq!(tm.now(), before, "no time consumed");
        assert_eq!(tm.outcome_counts(), (3, 0));
    }

    #[test]
    fn begin_at_validates_against_explicit_snapshot() {
        let tm = TransactionManager::new(TxnTime::EPOCH);
        // A writer's commit is logged (clock advanced) but imagine it is
        // not yet *published*: a session beginning from the published state
        // must still start at the pre-commit time.
        let published = tm.now();
        let w = tm.begin();
        // Session begins off the stale published root while w is in
        // flight…
        let r = tm.begin_at(published);
        assert_eq!(r.start, published);
        tm.commit(w, &set(&[]), &set(&[slot(1, 1)])).unwrap();
        // …and reads the slot the in-flight commit wrote: validation sees
        // the log record with time > start and aborts the overlap.
        let err = tm.commit(r, &set(&[slot(1, 1)]), &set(&[slot(2, 2)]));
        assert!(matches!(err, Err(GemError::TransactionConflict { .. })));
        // Whereas `begin()` (clock time) would have hidden that commit:
        let r2 = tm.begin();
        assert!(tm.commit(r2, &set(&[slot(1, 1)]), &set(&[slot(2, 2)])).is_ok());
    }

    #[test]
    fn pruned_snapshot_gap_aborts_conservatively() {
        let tm = TransactionManager::new(TxnTime::EPOCH);
        let published = tm.now();
        // w commits with nobody registered: its prune clears the log and
        // advances the watermark…
        let w = tm.begin();
        tm.commit(w, &set(&[]), &set(&[slot(1, 1)])).unwrap();
        // …then a session registers off the stale published snapshot (it
        // raced the prune). Its writes cannot be validated: abort.
        let r = tm.begin_at(published);
        let err = tm.commit(r, &set(&[slot(1, 1)]), &set(&[slot(2, 2)]));
        assert!(matches!(err, Err(GemError::TransactionConflict { .. })));
        // A read-only transaction off the same stale snapshot still
        // commits: it serializes at its start time.
        let r2 = tm.begin_at(published);
        assert_eq!(tm.commit(r2, &set(&[slot(1, 1)]), &set(&[])).unwrap(), published);
    }

    #[test]
    fn validation_wait_histogram_records_each_commit() {
        let tm = TransactionManager::new(TxnTime::EPOCH);
        let h = tm.validation_wait_histogram();
        assert_eq!(h.snapshot().count, 0);
        let a = tm.begin();
        tm.commit(a, &set(&[]), &set(&[slot(1, 1)])).unwrap();
        let b = tm.begin();
        tm.commit(b, &set(&[]), &set(&[])).unwrap();
        assert_eq!(h.snapshot().count, 2, "write and read-only commits both measured");
    }

    #[test]
    fn counters_clone_detaches_share_does_not() {
        let tm = TransactionManager::new(TxnTime::EPOCH);
        let live = tm.counters(); // share(): live cells
        let frozen = live.clone(); // Clone: detached checkpoint
        let t = tm.begin();
        tm.commit(t, &set(&[]), &set(&[slot(1, 1)])).unwrap();
        assert_eq!(live.begins.get(), 1, "shared cells see the manager's moves");
        assert_eq!(live.commits.get(), 1);
        assert_eq!(frozen.begins.get(), 0, "detached copy froze at the checkpoint");
        assert_eq!(frozen.commits.get(), 0);
        frozen.aborts.inc();
        assert_eq!(tm.counters().aborts.get(), 0, "moves on a detached copy stay private");
    }

    #[test]
    fn commit_unknown_token_fails() {
        let tm = TransactionManager::new(TxnTime::EPOCH);
        let t = tm.begin();
        tm.abort(t);
        assert!(matches!(tm.commit(t, &set(&[]), &set(&[])), Err(GemError::NoTransaction)));
    }

    #[test]
    fn safe_time_tracks_oldest_active() {
        let tm = TransactionManager::new(TxnTime::EPOCH);
        let a = tm.begin(); // starts at EPOCH level
        let w = tm.begin();
        tm.commit(w, &set(&[]), &set(&[slot(1, 1)])).unwrap();
        assert_eq!(tm.safe_time(), a.start, "a could still see pre-commit state");
        tm.abort(a);
        assert_eq!(tm.safe_time(), tm.now(), "no active txns: latest commit is safe");
    }

    #[test]
    fn conflict_is_against_snapshot_not_wallclock() {
        let tm = TransactionManager::new(TxnTime::EPOCH);
        // Writer commits BEFORE reader begins: no conflict.
        let w = tm.begin();
        tm.commit(w, &set(&[]), &set(&[slot(1, 1)])).unwrap();
        let r = tm.begin();
        assert!(tm.commit(r, &set(&[slot(1, 1)]), &set(&[])).is_ok());
    }

    #[test]
    fn log_pruning_keeps_validation_correct() {
        let tm = TransactionManager::new(TxnTime::EPOCH);
        let old = tm.begin();
        for i in 0..100 {
            let w = tm.begin();
            tm.commit(w, &set(&[]), &set(&[slot(i, 0)])).unwrap();
        }
        // `old` read slot(50,0), written meanwhile: must still abort even
        // after pruning (old is the horizon, so records stay).
        assert!(tm.commit(old, &set(&[slot(50, 0)]), &set(&[slot(200, 0)])).is_err());
    }

    #[test]
    fn concurrent_sessions_stress() {
        use std::sync::Arc;
        let tm = Arc::new(TransactionManager::new(TxnTime::EPOCH));
        let mut handles = Vec::new();
        for thread in 0..4u64 {
            let tm = tm.clone();
            handles.push(std::thread::spawn(move || {
                let mut committed = 0;
                for i in 0..200u64 {
                    let t = tm.begin();
                    let s = slot((thread * 1000 + i) % 50, 0);
                    if tm.commit(t, &set(&[s]), &set(&[s])).is_ok() {
                        committed += 1;
                    }
                }
                committed
            }));
        }
        let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        let (commits, aborts) = tm.outcome_counts();
        assert_eq!(commits, total);
        assert_eq!(commits + aborts, 800);
        assert!(commits > 0);
    }
}
