//! Exhaustive interleaving model of the snapshot/commit protocol.
//!
//! The real `loom` crate is unavailable in this build environment (no
//! network, no new dependencies), so this harness does what loom would do
//! for our protocol by hand: each logical session is a short program of
//! atomic steps, and every feasible ordering of those steps across
//! sessions is enumerated and executed against a **real**
//! `TransactionManager` plus a model of the engine's published-view /
//! commit-lock machinery (the pieces that live in `gemstone-core`'s
//! `Session::commit`, reproduced here step for step so their orderings
//! can be enumerated).
//!
//! The model's atomic steps mirror the engine's real atomic sections:
//!
//! * `ReadView` — read the published committed view (one `RwLock` read);
//! * `Begin` — `begin_at_checked(view.time)`; a `None` (the log was
//!   pruned past our view between the two steps) leaves the program
//!   counter in place, exactly like the engine's retry loop;
//! * `TakeLock` — acquire the commit lock (blocks; a blocked thread
//!   simply does not advance when scheduled);
//! * `Validate` — `TransactionManager::commit` under the commit lock
//!   (the validation critical section: one inner-mutex acquisition);
//! * `Publish` — expose the new view and release the commit lock.
//!
//! Splitting `Validate` from `Publish` is the point: it makes the
//! "validated but not yet published" window — where the manager's clock
//! has advanced past the published view — schedulable, so every ordering
//! of snapshot refresh against commit publication is covered, including
//! the prune race `begin_at_checked` exists to close.
//!
//! Checked invariants, in every feasible schedule:
//!
//! * **serializability** — the final key-value state equals the committed
//!   transactions applied serially in commit-time order (in particular,
//!   lost updates are impossible: two increments from the same snapshot
//!   never both commit);
//! * **read-only freedom** — read-only transactions always commit;
//! * **no conservative aborts** — a writer registered via
//!   `begin_at_checked` is never aborted by the `pruned_through`
//!   watermark (the begin-time check makes the commit-time check
//!   unreachable);
//! * **progress** — every blocked/retrying session completes once the
//!   blocker finishes (a bounded drain pass at the end of each schedule
//!   doubles as a deadlock detector).

use gemstone_object::{ElemName, Goop, SymbolId};
use gemstone_temporal::TxnTime;
use gemstone_txn::{AccessSet, SlotId, TransactionManager, TxnToken};
use std::collections::BTreeMap;

fn slot(key: u64) -> SlotId {
    SlotId::Elem(Goop(key), ElemName::Sym(SymbolId(0)))
}

fn set(slots: &[SlotId]) -> AccessSet {
    let mut a = AccessSet::new();
    for s in slots {
        a.record(*s);
    }
    a
}

/// What one modeled session does.
#[derive(Clone, Copy, Debug, PartialEq)]
enum Program {
    /// Read `key` at the snapshot and write back `read + 1`.
    Increment { key: u64 },
    /// Read `key` at the snapshot, commit read-only.
    ReadOnly { key: u64 },
}

#[derive(Clone, Copy, Debug, PartialEq)]
enum Step {
    ReadView,
    Begin,
    TakeLock,
    Validate,
    Publish,
}

const WRITER_STEPS: &[Step] =
    &[Step::ReadView, Step::Begin, Step::TakeLock, Step::Validate, Step::Publish];
/// Read-only commits skip the commit lock entirely (the engine's
/// fast path): validation of an empty write set needs no publication.
const READER_STEPS: &[Step] = &[Step::ReadView, Step::Begin, Step::Validate];

/// The published committed view: commit time plus the whole key-value
/// state as of that time (the model's stand-in for `CommittedView`).
#[derive(Clone, Debug)]
struct View {
    time: TxnTime,
    data: BTreeMap<u64, i64>,
}

struct SessionState {
    program: Program,
    steps: &'static [Step],
    pc: usize,
    view: Option<View>,
    token: Option<TxnToken>,
    /// Snapshot value of the program's key, read at `Begin`.
    read_value: i64,
    outcome: Option<Outcome>,
}

#[derive(Clone, Copy, Debug, PartialEq)]
enum Outcome {
    Committed(TxnTime),
    Conflict,
}

struct World {
    tm: TransactionManager,
    published: View,
    lock_holder: Option<usize>,
    /// (session, key, value written, commit time) in commit order.
    commit_log: Vec<(usize, u64, i64, TxnTime)>,
}

impl World {
    fn new(keys: &[u64]) -> World {
        World {
            tm: TransactionManager::new(TxnTime::EPOCH),
            published: View { time: TxnTime::EPOCH, data: keys.iter().map(|&k| (k, 0)).collect() },
            lock_holder: None,
            commit_log: Vec::new(),
        }
    }
}

/// Run session `tid`'s next step. Returns `true` if the session advanced
/// (a blocked lock acquisition or a refused begin returns `false` and
/// leaves the program counter in place, modeling a wait/retry).
fn step(world: &mut World, sessions: &mut [SessionState], tid: usize) -> bool {
    let s = &mut sessions[tid];
    let Some(&op) = s.steps.get(s.pc) else { return false };
    match op {
        Step::ReadView => {
            s.view = Some(world.published.clone());
        }
        Step::Begin => {
            let view = s.view.as_ref().expect("ReadView ran");
            match world.tm.begin_at_checked(view.time) {
                Some(token) => {
                    s.token = Some(token);
                    let key = match s.program {
                        Program::Increment { key } | Program::ReadOnly { key } => key,
                    };
                    s.read_value = view.data[&key];
                }
                None => {
                    // Stale start: the engine re-reads the published view
                    // and retries. Model identically — refresh and stay.
                    s.view = Some(world.published.clone());
                    return false;
                }
            }
        }
        Step::TakeLock => {
            if world.lock_holder.is_some() {
                return false;
            }
            world.lock_holder = Some(tid);
        }
        Step::Validate => {
            let token = s.token.take().expect("Begin ran");
            match s.program {
                Program::Increment { key } => {
                    assert_eq!(world.lock_holder, Some(tid), "writers validate under the lock");
                    let reads = set(&[slot(key)]);
                    let writes = set(&[slot(key)]);
                    match world.tm.commit(token, &reads, &writes) {
                        Ok(time) => {
                            s.outcome = Some(Outcome::Committed(time));
                            world.commit_log.push((tid, key, s.read_value + 1, time));
                        }
                        Err(e) => {
                            let msg = format!("{e:?}");
                            assert!(
                                !msg.contains("pruned"),
                                "a checked begin must never be conservatively \
                                 aborted by the watermark: {msg}"
                            );
                            s.outcome = Some(Outcome::Conflict);
                            // Abort releases the lock without publishing.
                            world.lock_holder = None;
                            s.pc = s.steps.len();
                            return true;
                        }
                    }
                }
                Program::ReadOnly { key } => {
                    let reads = set(&[slot(key)]);
                    let time = world
                        .tm
                        .commit(token, &reads, &AccessSet::new())
                        .expect("read-only transactions always commit");
                    s.outcome = Some(Outcome::Committed(time));
                    s.pc = s.steps.len();
                    return true;
                }
            }
        }
        Step::Publish => {
            assert_eq!(world.lock_holder, Some(tid), "publish happens under the lock");
            let (_, key, value, time) = *world.commit_log.last().expect("validated");
            let mut data = world.published.data.clone();
            data.insert(key, value);
            world.published = View { time, data };
            world.lock_holder = None;
        }
    }
    s.pc += 1;
    true
}

fn finished(sessions: &[SessionState]) -> bool {
    sessions.iter().all(|s| s.pc >= s.steps.len())
}

/// Execute one schedule (a sequence of session ids). A scheduled session
/// that cannot advance (blocked or retrying) just burns the slot; after
/// the sequence, a bounded round-robin drain finishes stragglers — if it
/// cannot, the protocol livelocked and the test fails.
fn run_schedule(programs: &[Program], keys: &[u64], schedule: &[usize]) -> ScheduleResult {
    let mut world = World::new(keys);
    let mut sessions: Vec<SessionState> = programs
        .iter()
        .map(|&program| SessionState {
            program,
            steps: match program {
                Program::Increment { .. } => WRITER_STEPS,
                Program::ReadOnly { .. } => READER_STEPS,
            },
            pc: 0,
            view: None,
            token: None,
            read_value: 0,
            outcome: None,
        })
        .collect();
    for &tid in schedule {
        step(&mut world, &mut sessions, tid);
    }
    let mut stuck = 0;
    while !finished(&sessions) {
        let mut progressed = false;
        for tid in 0..sessions.len() {
            if sessions[tid].pc < sessions[tid].steps.len() {
                progressed |= step(&mut world, &mut sessions, tid);
            }
        }
        if progressed {
            stuck = 0;
        } else {
            stuck += 1;
            assert!(stuck < 4, "no session can advance: protocol livelock");
        }
    }

    // Serializability: replay the commit log in commit-time order over the
    // initial state; it must reproduce the final published data.
    let mut log = world.commit_log.clone();
    log.sort_by_key(|&(_, _, _, time)| time);
    let mut serial: BTreeMap<u64, i64> = keys.iter().map(|&k| (k, 0)).collect();
    for &(_, key, value, _) in &log {
        serial.insert(key, value);
    }
    assert_eq!(
        serial, world.published.data,
        "final state must equal the serial replay of committed transactions"
    );

    ScheduleResult {
        outcomes: sessions.iter().map(|s| s.outcome.expect("all sessions finished")).collect(),
        final_data: world.published.data,
    }
}

struct ScheduleResult {
    outcomes: Vec<Outcome>,
    final_data: BTreeMap<u64, i64>,
}

/// All distinct interleavings of `counts[i]` scheduling slots per session.
fn schedules(counts: &[usize]) -> Vec<Vec<usize>> {
    fn go(remaining: &mut Vec<usize>, acc: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if remaining.iter().all(|&r| r == 0) {
            out.push(acc.clone());
            return;
        }
        for tid in 0..remaining.len() {
            if remaining[tid] > 0 {
                remaining[tid] -= 1;
                acc.push(tid);
                go(remaining, acc, out);
                acc.pop();
                remaining[tid] += 1;
            }
        }
    }
    let mut out = Vec::new();
    go(&mut counts.to_vec(), &mut Vec::new(), &mut out);
    out
}

fn steps_of(p: Program) -> usize {
    match p {
        Program::Increment { .. } => WRITER_STEPS.len(),
        Program::ReadOnly { .. } => READER_STEPS.len(),
    }
}

fn explore(programs: &[Program], keys: &[u64]) -> Vec<ScheduleResult> {
    explore_strided(programs, keys, 1)
}

/// Like [`explore`] but runs every `stride`-th schedule — the big 3-writer
/// space (756 756 schedules) is sampled deterministically in the tier-1
/// run and swept exhaustively when `INTERLEAVE_EXHAUSTIVE=1` (nightly).
fn explore_strided(programs: &[Program], keys: &[u64], stride: usize) -> Vec<ScheduleResult> {
    let stride =
        if std::env::var("INTERLEAVE_EXHAUSTIVE").is_ok_and(|v| v == "1") { 1 } else { stride };
    let counts: Vec<usize> = programs.iter().map(|&p| steps_of(p)).collect();
    let all = schedules(&counts);
    assert!(!all.is_empty());
    all.iter().step_by(stride).map(|sched| run_schedule(programs, keys, sched)).collect()
}

#[test]
fn two_increments_same_key_never_lose_an_update() {
    let programs = [Program::Increment { key: 1 }, Program::Increment { key: 1 }];
    let mut saw_conflict = false;
    let mut saw_both_commit = false;
    for r in explore(&programs, &[1]) {
        let committed = r.outcomes.iter().filter(|o| matches!(o, Outcome::Committed(_))).count();
        // The key invariant: the final value counts exactly the committed
        // increments — overlapped snapshots abort rather than overwrite.
        assert_eq!(r.final_data[&1], committed as i64);
        saw_conflict |= committed == 1;
        saw_both_commit |= committed == 2;
    }
    assert!(saw_conflict, "some interleaving overlaps the two increments");
    assert!(saw_both_commit, "some interleaving serializes the two increments");
}

#[test]
fn disjoint_increments_always_both_commit() {
    let programs = [Program::Increment { key: 1 }, Program::Increment { key: 2 }];
    for r in explore(&programs, &[1, 2]) {
        assert!(
            r.outcomes.iter().all(|o| matches!(o, Outcome::Committed(_))),
            "disjoint writers never conflict (outcomes {:?})",
            r.outcomes
        );
        assert_eq!(r.final_data[&1], 1);
        assert_eq!(r.final_data[&2], 1);
    }
}

#[test]
fn read_only_sessions_always_commit_against_a_writer() {
    let programs = [Program::Increment { key: 1 }, Program::ReadOnly { key: 1 }];
    for r in explore(&programs, &[1]) {
        assert!(
            matches!(r.outcomes[1], Outcome::Committed(_)),
            "read-only commits must never abort"
        );
        assert!(matches!(r.outcomes[0], Outcome::Committed(_)));
        assert_eq!(r.final_data[&1], 1);
    }
}

/// Three writers, two sharing a key: every ordering of three commit
/// critical sections, publishes, and prunes. This is the scenario whose
/// prune races produced conservative aborts before `begin_at_checked`;
/// the `Validate` step asserts none ever happen now.
#[test]
fn three_writers_exhaustive() {
    let programs = [
        Program::Increment { key: 1 },
        Program::Increment { key: 1 },
        Program::Increment { key: 2 },
    ];
    let mut lone_writer_commits = 0usize;
    let mut total = 0usize;
    for r in explore_strided(&programs, &[1, 2], 13) {
        total += 1;
        let committed_on_1 =
            r.outcomes[..2].iter().filter(|o| matches!(o, Outcome::Committed(_))).count();
        assert_eq!(r.final_data[&1], committed_on_1 as i64);
        if matches!(r.outcomes[2], Outcome::Committed(_)) {
            lone_writer_commits += 1;
            assert_eq!(r.final_data[&2], 1);
        }
    }
    assert_eq!(
        lone_writer_commits, total,
        "a writer with a private key is never a conflict victim"
    );
}

/// The race `begin_at_checked` closes, demonstrated directly on the
/// manager: registering through the unchecked `begin_at` with a start the
/// log has been pruned past still commits read-only, but a *writing*
/// commit is conservatively aborted by the watermark. The checked begin
/// refuses the same stale start up front.
#[test]
fn unchecked_stale_begin_is_caught_by_the_watermark() {
    let tm = TransactionManager::new(TxnTime::EPOCH);
    let stale_start = TxnTime::EPOCH;

    // A full commit cycle with no other transaction active: prune clears
    // the log and advances the watermark past EPOCH.
    let t = tm.begin_at(stale_start);
    let w = set(&[slot(9)]);
    tm.commit(t, &w, &w).expect("unconstested commit");

    assert!(
        tm.begin_at_checked(stale_start).is_none(),
        "checked begin refuses a start below the watermark"
    );

    let racy = tm.begin_at(stale_start);
    let err = tm.commit(racy, &w, &w).expect_err("stale writer must abort");
    let msg = format!("{err:?}");
    assert!(msg.contains("pruned"), "the conservative watermark abort names the pruned log: {msg}");

    // And the retry the engine performs succeeds: the newer published
    // time is at or above the watermark.
    let now = tm.now();
    let t2 = tm.begin_at_checked(now).expect("fresh start is accepted");
    tm.commit(t2, &w, &w).expect("retried writer commits");
}
