//! Experiment C3: temporal access cost (§5.3 / §6).
//!
//! "The mapping from arbitrary times to value for an element can easily be
//! realized from this table" — measured: current reads stay O(1) regardless
//! of history length; as-of reads pay the association-table lookup (linear
//! for short histories, binary search past the directory threshold), so
//! latency grows logarithmically. Also measures the full-system path
//! `E ! balance @ T` through a session.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use gemstone_bench::fresh;
use gemstone_temporal::{History, TxnTime};

fn t(n: u64) -> TxnTime {
    TxnTime::from_ticks(n)
}

fn history_reads(c: &mut Criterion) {
    let mut group = c.benchmark_group("C3_history_reads");
    for &len in &[4usize, 64, 1024, 16384] {
        let h: History<u64> = (1..=len as u64).map(|i| (t(i * 2), i)).collect();
        group.bench_with_input(BenchmarkId::new("current", len), &h, |b, h| {
            b.iter(|| black_box(h.current()))
        });
        group.bench_with_input(BenchmarkId::new("as_of_mid", len), &h, |b, h| {
            let probe = t(len as u64); // middle of the range
            b.iter(|| black_box(h.as_of(probe)))
        });
        group.bench_with_input(BenchmarkId::new("as_of_oldest", len), &h, |b, h| {
            b.iter(|| black_box(h.as_of(t(2))))
        });
    }
    group.finish();
}

fn history_writes(c: &mut Criterion) {
    let mut group = c.benchmark_group("C3_history_append");
    // Appending to a long history must stay O(1) amortized: histories grow
    // forever (§6: "database objects in the past never go away").
    for &len in &[64usize, 16384] {
        group.bench_function(BenchmarkId::new("append_after", len), |b| {
            b.iter_with_setup(
                || (1..=len as u64).map(|i| (t(i), i)).collect::<History<u64>>(),
                |mut h| {
                    h.write_committed(t(len as u64 + 1), 0);
                    black_box(h)
                },
            )
        });
    }
    group.finish();
}

fn session_temporal_paths(c: &mut Criterion) {
    // Full-system: one account updated `n` times; read `balance @ t`
    // through OPAL paths.
    let mut group = c.benchmark_group("C3_session_as_of");
    group.sample_size(20);
    for &versions in &[8usize, 128, 1024] {
        let (_gs, mut s) = fresh();
        s.run("A := Dictionary new. A at: #balance put: 0").unwrap();
        s.commit().unwrap();
        for i in 0..versions {
            s.run(&format!("A at: #balance put: {i}")).unwrap();
            s.commit().unwrap();
        }
        let mid = (versions / 2).max(2);
        group.bench_function(BenchmarkId::new("path_at_mid", versions), |b| {
            b.iter(|| {
                let v = s.run(&format!("A ! balance @ {mid}")).unwrap();
                black_box(v)
            })
        });
        group.bench_function(BenchmarkId::new("path_current", versions), |b| {
            b.iter(|| {
                let v = s.run("A ! balance").unwrap();
                black_box(v)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, history_reads, history_writes, session_temporal_paths);
criterion_main!(benches);
