//! Experiments Q1 and C8: declarative vs procedural selection (§5.2's
//! claim that declarative syntax "allows much more access planning"), and
//! the directory's effect on equality selections.
//!
//! Expected shape: procedural and declarative scans are comparable (the
//! declarative path adds planning overhead but skips block dispatch); with
//! a directory, equality selections stop scaling with collection size.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use gemstone_bench::{build_employees, fresh};

fn selection(c: &mut Criterion) {
    let mut group = c.benchmark_group("C8_selection");
    group.sample_size(15);
    for &n in &[100usize, 1000, 4000] {
        // Procedural scan (block dispatch per element).
        let (_gs, mut s) = fresh();
        let salaries = build_employees(&mut s, n);
        let probe = salaries[n / 2];
        group.bench_function(BenchmarkId::new("procedural_scan", n), |b| {
            b.iter(|| {
                let v = s
                    .run(&format!(
                        "| out | out := OrderedCollection new.
                         Employees do: [:e | (e at: #Salary) = {probe} ifTrue: [out add: e]].
                         out size"
                    ))
                    .unwrap();
                black_box(v)
            })
        });
        // Declarative, no directory: planned scan.
        group.bench_function(BenchmarkId::new("declarative_scan", n), |b| {
            b.iter(|| {
                let v = s
                    .run(&format!("(Employees select: [:e | e Salary = {probe}]) size"))
                    .unwrap();
                black_box(v)
            })
        });
        // Declarative with a directory (§6 hint).
        s.run("System createIndexOn: Employees path: #Salary").unwrap();
        s.commit().unwrap();
        group.bench_function(BenchmarkId::new("declarative_indexed", n), |b| {
            b.iter(|| {
                let v = s
                    .run(&format!("(Employees select: [:e | e Salary = {probe}]) size"))
                    .unwrap();
                black_box(v)
            })
        });
    }
    group.finish();
}

fn section51_query(c: &mut Criterion) {
    // The paper's flagship query at a realistic size, end to end.
    let mut group = c.benchmark_group("Q1_section51");
    group.sample_size(10);
    let (_gs, mut s) = fresh();
    s.run(
        "| d |
         Departments := Set new.
         d := Dictionary new. d at: #Name put: 'Sales'. d at: #Budget put: 142000.
         d at: #Managers put: Set new. (d at: #Managers) add: 'Nathen'; add: 'Roberts'.
         Departments add: d.
         d := Dictionary new. d at: #Name put: 'Research'. d at: #Budget put: 256500.
         d at: #Managers put: Set new. (d at: #Managers) add: 'Carter'.
         Departments add: d",
    )
    .unwrap();
    s.run(
        "| e |
         Employees := Set new.
         1 to: 500 do: [:i |
             e := Dictionary new.
             e at: #Salary put: 10000 + ((i * 631) \\\\ 30000).
             e at: #Depts put: Set new.
             (e at: #Depts) add: ((i \\\\ 2) = 0 ifTrue: ['Sales'] ifFalse: ['Research']).
             Employees add: e]",
    )
    .unwrap();
    s.commit().unwrap();
    group.bench_function("procedural", |b| {
        b.iter(|| {
            let v = s
                .run(
                    "| n | n := 0.
                     Employees do: [:e |
                         Departments do: [:d |
                             (((e at: #Depts) includes: (d at: #Name))
                               and: [(e at: #Salary) > (0.10 * (d at: #Budget))])
                                 ifTrue: [n := n + ((d at: #Managers) size)]]].
                     n",
                )
                .unwrap();
            black_box(v)
        })
    });
    group.bench_function("declarative_inner_select", |b| {
        b.iter(|| {
            let v = s
                .run(
                    "| n | n := 0.
                     Departments do: [:d |
                         n := n + ((Employees select:
                               [:e | e Salary > (0.10 * (d at: #Budget))]) size)].
                     n",
                )
                .unwrap();
            black_box(v)
        })
    });
    group.finish();
}

criterion_group!(benches, selection, section51_query);
criterion_main!(benches);
