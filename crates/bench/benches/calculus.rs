//! Experiments Q1 and C8: declarative vs procedural selection (§5.2's
//! claim that declarative syntax "allows much more access planning"), and
//! the directory's effect on equality selections.
//!
//! Expected shape: procedural and declarative scans are comparable (the
//! declarative path adds planning overhead but skips block dispatch); with
//! a directory, equality selections stop scaling with collection size.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use gemstone_bench::{build_employees, build_join_collections, fresh, join_query};
use gemstone_calculus::{eval_algebra_stats, translate_with, IndexCatalog, PlanOptions, PlanStats};

fn selection(c: &mut Criterion) {
    let mut group = c.benchmark_group("C8_selection");
    group.sample_size(15);
    for &n in &[100usize, 1000, 4000] {
        // Procedural scan (block dispatch per element).
        let (_gs, mut s) = fresh();
        let salaries = build_employees(&mut s, n);
        let probe = salaries[n / 2];
        group.bench_function(BenchmarkId::new("procedural_scan", n), |b| {
            b.iter(|| {
                let v = s
                    .run(&format!(
                        "| out | out := OrderedCollection new.
                         Employees do: [:e | (e at: #Salary) = {probe} ifTrue: [out add: e]].
                         out size"
                    ))
                    .unwrap();
                black_box(v)
            })
        });
        // Declarative, no directory: planned scan.
        group.bench_function(BenchmarkId::new("declarative_scan", n), |b| {
            b.iter(|| {
                let v =
                    s.run(&format!("(Employees select: [:e | e Salary = {probe}]) size")).unwrap();
                black_box(v)
            })
        });
        // Declarative with a directory (§6 hint).
        s.run("System createIndexOn: Employees path: #Salary").unwrap();
        s.commit().unwrap();
        group.bench_function(BenchmarkId::new("declarative_indexed", n), |b| {
            b.iter(|| {
                let v =
                    s.run(&format!("(Employees select: [:e | e Salary = {probe}]) size")).unwrap();
                black_box(v)
            })
        });
    }
    group.finish();
}

fn section51_query(c: &mut Criterion) {
    // The paper's flagship query at a realistic size, end to end.
    let mut group = c.benchmark_group("Q1_section51");
    group.sample_size(10);
    let (_gs, mut s) = fresh();
    s.run(
        "| d |
         Departments := Set new.
         d := Dictionary new. d at: #Name put: 'Sales'. d at: #Budget put: 142000.
         d at: #Managers put: Set new. (d at: #Managers) add: 'Nathen'; add: 'Roberts'.
         Departments add: d.
         d := Dictionary new. d at: #Name put: 'Research'. d at: #Budget put: 256500.
         d at: #Managers put: Set new. (d at: #Managers) add: 'Carter'.
         Departments add: d",
    )
    .unwrap();
    s.run(
        "| e |
         Employees := Set new.
         1 to: 500 do: [:i |
             e := Dictionary new.
             e at: #Salary put: 10000 + ((i * 631) \\\\ 30000).
             e at: #Depts put: Set new.
             (e at: #Depts) add: ((i \\\\ 2) = 0 ifTrue: ['Sales'] ifFalse: ['Research']).
             Employees add: e]",
    )
    .unwrap();
    s.commit().unwrap();
    group.bench_function("procedural", |b| {
        b.iter(|| {
            let v = s
                .run(
                    "| n | n := 0.
                     Employees do: [:e |
                         Departments do: [:d |
                             (((e at: #Depts) includes: (d at: #Name))
                               and: [(e at: #Salary) > (0.10 * (d at: #Budget))])
                                 ifTrue: [n := n + ((d at: #Managers) size)]]].
                     n",
                )
                .unwrap();
            black_box(v)
        })
    });
    group.bench_function("declarative_inner_select", |b| {
        b.iter(|| {
            let v = s
                .run(
                    "| n | n := 0.
                     Departments do: [:d |
                         n := n + ((Employees select:
                               [:e | e Salary > (0.10 * (d at: #Budget))]) size)].
                     n",
                )
                .unwrap();
            black_box(v)
        })
    });
    group.finish();
}

fn equi_join(c: &mut Criterion) {
    // Experiment C-join: two independent 1k-element sets linked by an
    // equality. The hash plan must visit O(n + m) rows, the nested-loop
    // plan O(n·m), and both must produce the same tuples.
    let mut group = c.benchmark_group("Cjoin_equi_join");
    group.sample_size(10);
    let (n, m) = (1000usize, 1000usize);
    let (_gs, mut s) = fresh();
    build_join_collections(&mut s, n, m);
    let q = join_query(&mut s);
    let catalog = IndexCatalog::new();
    let hash_plan = translate_with(&q, &catalog, &PlanOptions { hash_joins: true, stats: None });
    let nested_plan = translate_with(&q, &catalog, &PlanOptions { hash_joins: false, stats: None });
    assert!(
        hash_plan.uses_hash_join(),
        "planner must pick the hash join: {}",
        hash_plan.describe()
    );
    assert!(!nested_plan.uses_hash_join(), "control plan must stay nested");

    // Counter-verified complexity: O(n + m) row visits vs O(n·m), with
    // identical result sets.
    let mut hash_stats = PlanStats::default();
    let mut hash_rows = eval_algebra_stats(&mut s, &hash_plan, &q, &mut hash_stats).unwrap();
    let mut nested_stats = PlanStats::default();
    let mut nested_rows = eval_algebra_stats(&mut s, &nested_plan, &q, &mut nested_stats).unwrap();
    assert_eq!(hash_stats.row_visits(), (n + m) as u64, "hash join must visit each set once");
    assert_eq!(
        nested_stats.row_visits(),
        (n + n * m) as u64,
        "nested loop rescans the inner set per outer row"
    );
    let key = |r: &Vec<gemstone::Oop>| r.iter().map(|o| o.bits()).collect::<Vec<_>>();
    hash_rows.sort_by_key(key);
    nested_rows.sort_by_key(key);
    assert_eq!(hash_rows, nested_rows, "plans must agree on the result");
    assert_eq!(hash_rows.len(), n, "each order joins exactly one part");

    group.bench_function(BenchmarkId::new("hash_join", n), |b| {
        b.iter(|| {
            let mut stats = PlanStats::default();
            let rows = eval_algebra_stats(&mut s, &hash_plan, &q, &mut stats).unwrap();
            black_box(rows)
        })
    });
    group.bench_function(BenchmarkId::new("nested_loop", n), |b| {
        b.iter(|| {
            let mut stats = PlanStats::default();
            let rows = eval_algebra_stats(&mut s, &nested_plan, &q, &mut stats).unwrap();
            black_box(rows)
        })
    });
    // End-to-end through the session (plans, evaluates, records explain()).
    group.bench_function(BenchmarkId::new("session_query", n), |b| {
        b.iter(|| {
            let rows = s.query(&q).unwrap();
            black_box(rows)
        })
    });
    let explain = s.explain().expect("session ran a query");
    assert!(explain.contains("hash-join"), "explain must show the hash join:\n{explain}");
    // Telemetry satellite: one session query moves the registry by exactly
    // its plan counters, and the collections' commit reached the disk via
    // commit-path cache fills (read-through fills would mean re-reading
    // tracks this very session just wrote).
    let before = s.metrics();
    let rows = s.query(&q).unwrap();
    let d = s.metrics().diff(&before);
    assert_eq!(d.counter("calculus.hash_probes"), n as u64, "one probe per left row");
    assert_eq!(d.counter("calculus.hash_builds"), m as u64, "right side is the build side");
    assert_eq!(d.counter("calculus.hash_matches"), rows.len() as u64);
    assert!(
        s.metrics().counter("storage.cache.fills_commit") > 0,
        "the workload committed through the cache's commit path"
    );
    group.finish();
}

criterion_group!(benches, selection, section51_query, equi_join);
criterion_main!(benches);
