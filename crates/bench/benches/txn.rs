//! Experiment C4: optimistic transaction throughput (§6's Transaction
//! Manager) — commit latency vs batch size, and validation-grain ablation
//! (DESIGN.md §4.5) at the Transaction Manager level.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use gemstone_bench::{build_accounts, fresh, rng};
use gemstone_object::{ElemName, Goop, SymbolId};
use gemstone_temporal::TxnTime;
use gemstone_txn::{AccessSet, SlotId, TransactionManager, ValidationGrain};
use rand::Rng;

fn commit_latency(c: &mut Criterion) {
    let mut group = c.benchmark_group("C4_commit_latency");
    group.sample_size(15);
    for &writes in &[1usize, 10, 100] {
        let (_gs, mut s) = fresh();
        build_accounts(&mut s, 200);
        let mut r = rng(7);
        group.bench_function(BenchmarkId::new("writes_per_txn", writes), |b| {
            b.iter(|| {
                let mut src = String::new();
                for _ in 0..writes {
                    let i = r.gen_range(0..200);
                    src.push_str(&format!(
                        "(Accounts at: {i}) at: #balance put: ((Accounts at: {i}) at: #balance) + 1.\n"
                    ));
                }
                s.run(&src).unwrap();
                black_box(s.commit().unwrap())
            })
        });
    }
    group.finish();
}

fn validation_grain(c: &mut Criterion) {
    // Pure Transaction-Manager microbench: validation cost and abort rate
    // at element vs whole-object grain under a skewed workload.
    let mut group = c.benchmark_group("C4_validation_grain");
    for grain in [ValidationGrain::Element, ValidationGrain::Object] {
        group.bench_function(BenchmarkId::new("validate", format!("{grain:?}")), |b| {
            b.iter_with_setup(
                || TransactionManager::with_grain(TxnTime::EPOCH, grain),
                |tm| {
                    let mut r = rng(3);
                    let mut aborts = 0u32;
                    for _ in 0..200 {
                        let t1 = tm.begin();
                        let t2 = tm.begin();
                        let obj = Goop(r.gen_range(0..10));
                        let e1 = ElemName::Sym(SymbolId(r.gen_range(0..4)));
                        let e2 = ElemName::Sym(SymbolId(r.gen_range(0..4)));
                        let mut s1 = AccessSet::new();
                        s1.record(SlotId::Elem(obj, e1));
                        let mut s2 = AccessSet::new();
                        s2.record(SlotId::Elem(obj, e2));
                        tm.commit(t1, &s1, &s1).unwrap();
                        if tm.commit(t2, &s2, &s2).is_err() {
                            aborts += 1;
                        }
                    }
                    black_box(aborts)
                },
            )
        });
    }
    group.finish();
}

fn read_only_throughput(c: &mut Criterion) {
    // Read-only transactions validate without consuming transaction times.
    let mut group = c.benchmark_group("C4_read_only");
    group.sample_size(20);
    let (_gs, mut s) = fresh();
    build_accounts(&mut s, 100);
    group.bench_function("read_100_commit", |b| {
        b.iter(|| {
            let v = s
                .run("Accounts __elements inject: 0 into: [:a :e | a + (e at: #balance)]")
                .unwrap();
            s.commit().unwrap();
            black_box(v)
        })
    });
    group.finish();
}

criterion_group!(benches, commit_latency, validation_grain, read_only_throughput);
criterion_main!(benches);
