//! Experiment C5 + the track-size ablation (DESIGN.md §4.2): cost of the
//! safe-write commit pipeline (Linker → Boxer → Commit Manager) as batch
//! size and track size vary.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use gemstone_object::{ClassId, ElemName, PRef, SegmentId};
use gemstone_storage::{ObjectDelta, PermanentStore, StoreConfig};
use gemstone_temporal::TxnTime;

fn delta(
    store: &mut PermanentStore,
    value: i64,
    is_new: bool,
    goop: gemstone_object::Goop,
) -> ObjectDelta {
    let _ = store;
    ObjectDelta {
        goop,
        class: ClassId(3),
        segment: SegmentId(0),
        alias_next: 0,
        elem_writes: vec![(ElemName::Int(0), PRef::int(value))],
        bytes_write: None,
        is_new,
    }
}

fn commit_batch_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("C5_commit_batch");
    group.sample_size(20);
    for &batch in &[1usize, 16, 256] {
        group.bench_function(BenchmarkId::new("objects", batch), |b| {
            b.iter_with_setup(
                || {
                    let mut store = PermanentStore::create(StoreConfig::default()).unwrap();
                    let deltas: Vec<ObjectDelta> = (0..batch)
                        .map(|i| {
                            let g = store.alloc_goop();
                            delta(&mut store, i as i64, true, g)
                        })
                        .collect();
                    (store, deltas)
                },
                |(store, deltas)| {
                    store.commit_batch(TxnTime::from_ticks(1), &deltas).unwrap();
                    black_box(store.disk_stats().track_writes)
                },
            )
        });
    }
    group.finish();
}

fn track_size_ablation(c: &mut Criterion) {
    // §6: "Disk access will always be by entire tracks" — what does track
    // size cost? Small tracks mean more writes per group; large tracks mean
    // more bytes per write.
    let mut group = c.benchmark_group("C5_track_size");
    group.sample_size(20);
    for &track_size in &[1024usize, 8192, 65536] {
        group.bench_function(BenchmarkId::new("bytes", track_size), |b| {
            b.iter_with_setup(
                || {
                    let cfg = StoreConfig { track_size, cache_tracks: 64, replicas: 1 };
                    let mut store = PermanentStore::create(cfg).unwrap();
                    let deltas: Vec<ObjectDelta> = (0..64)
                        .map(|i| {
                            let g = store.alloc_goop();
                            delta(&mut store, i as i64, true, g)
                        })
                        .collect();
                    (store, deltas)
                },
                |(store, deltas)| {
                    store.commit_batch(TxnTime::from_ticks(1), &deltas).unwrap();
                    black_box((store.disk_stats().track_writes, store.disk_stats().bytes_written))
                },
            )
        });
    }
    group.finish();
}

fn replication_cost(c: &mut Criterion) {
    // C10's write-path price: every track lands on every replica.
    let mut group = c.benchmark_group("C10_replication");
    group.sample_size(20);
    for &replicas in &[1usize, 2, 3] {
        group.bench_function(BenchmarkId::new("replicas", replicas), |b| {
            b.iter_with_setup(
                || {
                    let cfg = StoreConfig { track_size: 8192, cache_tracks: 64, replicas };
                    let mut store = PermanentStore::create(cfg).unwrap();
                    let deltas: Vec<ObjectDelta> = (0..32)
                        .map(|i| {
                            let g = store.alloc_goop();
                            delta(&mut store, i as i64, true, g)
                        })
                        .collect();
                    (store, deltas)
                },
                |(store, deltas)| {
                    store.commit_batch(TxnTime::from_ticks(1), &deltas).unwrap();
                    black_box(store.disk_stats().track_writes)
                },
            )
        });
    }
    group.finish();
}

criterion_group!(benches, commit_batch_size, track_size_ablation, replication_cost);
criterion_main!(benches);
