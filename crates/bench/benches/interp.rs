//! Interpreter dispatch cost (EXPERIMENTS: verifier note): install-time
//! verification lets the dispatch loop replace per-instruction trusting
//! panics with checked accessors, and this bench pins down what that run
//! time check discipline costs on bytecode-bound workloads.
//!
//! Expected shape: arithmetic/loop-bound doIts are dominated by dispatch
//! and slot traffic — exactly the opcodes whose bounds the verifier proves
//! statically — so their throughput measures the residual cost of the
//! checked accessors. Verification itself is a one-time cost per install,
//! measured separately.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use gemstone_bench::fresh;
use gemstone_opal::{compile_doit, verify, BasicWorld};

/// Tight loop: temp slot reads/writes, jumps, sends of primitive arithmetic.
const LOOP_SRC: &str = "| s i | s := 0. i := 0.
    [i < 2000] whileTrue: [i := i + 1. s := s + i]. s";

/// Closure-heavy: block creation, outer-slot traffic, non-local returns.
const BLOCK_SRC: &str = "| acc | acc := 0.
    1 to: 400 do: [:i | acc := acc + ([:x | x * 2] value: i)]. acc";

fn dispatch(c: &mut Criterion) {
    let mut group = c.benchmark_group("I1_dispatch");
    group.sample_size(20);
    let (_gs, mut s) = fresh();
    group.bench_function("arith_loop", |b| b.iter(|| black_box(s.run(LOOP_SRC).unwrap())));
    group.bench_function("block_loop", |b| b.iter(|| black_box(s.run(BLOCK_SRC).unwrap())));
    group.finish();
}

fn telemetry_overhead(c: &mut Criterion) {
    // E-obs: the same dispatch-bound workloads with telemetry fully off
    // (default: tracer disabled, counters still plain atomics) vs fully on
    // (span per statement, sampling 1). The instrument lives outside the
    // bytecode loop — interpreter counters are accumulated in locals and
    // flushed once per doIt — so on/off should be within noise; the
    // counter-based gate for the same claim lives in tests/telemetry.rs
    // (`telemetry_overhead_gate`), immune to wall-clock flake.
    let mut group = c.benchmark_group("I3_telemetry_overhead");
    group.sample_size(20);
    let (_gs_off, mut s_off) = fresh();
    group.bench_function("dispatch_telemetry_off", |b| {
        b.iter(|| black_box(s_off.run(LOOP_SRC).unwrap()))
    });
    let (_gs_on, mut s_on) = fresh();
    s_on.set_tracing(true);
    s_on.set_trace_sampling(1);
    group.bench_function("dispatch_telemetry_on", |b| {
        b.iter(|| black_box(s_on.run(LOOP_SRC).unwrap()))
    });
    group.finish();
}

fn verification(c: &mut Criterion) {
    // One-time install cost: full dataflow verification of a compiled doIt.
    let mut group = c.benchmark_group("I2_verify");
    group.sample_size(30);
    let mut w = BasicWorld::new();
    let small = compile_doit(&mut w, LOOP_SRC).unwrap();
    let blocks = compile_doit(&mut w, BLOCK_SRC).unwrap();
    assert!(verify::check(&small).is_ok());
    assert!(verify::check(&blocks).is_ok());
    group.bench_function("check_arith_loop", |b| {
        b.iter(|| black_box(verify::check(&small).is_ok()))
    });
    group.bench_function("check_block_loop", |b| {
        b.iter(|| black_box(verify::check(&blocks).is_ok()))
    });
    group.finish();
}

criterion_group!(benches, dispatch, verification, telemetry_overhead);
criterion_main!(benches);
