//! `lock_lint`: a dependency-free static lint that checks every engine
//! source file against the DESIGN §9 lock hierarchy.
//!
//! The concurrent engine's deadlock-freedom argument is an *ordering*
//! argument: no path acquires a lock further left in the hierarchy while
//! holding one further right. That invariant lives in prose (DESIGN §9)
//! and in reviewers' heads; this lint makes it executable. It scans
//! `crates/*/src` for acquisitions of the named engine locks and reports
//! any function that textually acquires an outer-ranked lock while a
//! guard on an inner-ranked one is still live.
//!
//! Scope and honesty: this is a line-oriented heuristic, not an alias
//! analysis. It sees guards bound with `let` in a single function and
//! their `drop(..)`/scope ends; it cannot see a lock acquired in a callee
//! while the caller holds a guard (the interleaving-model test and
//! ThreadSanitizer cover dynamic order). A heuristic that has caught one
//! inversion at review time has paid for itself; one that false-positives
//! gets deleted — so acquisitions that are not plainly `let`-bound guards
//! are treated as same-statement temporaries.
//!
//! ```sh
//! cargo run -p gemstone-bench --bin lock_lint            # lint the tree
//! cargo run -p gemstone-bench --bin lock_lint -- --self-test
//! ```

use std::path::{Path, PathBuf};

/// The DESIGN §9 hierarchy, outermost first. A lock's rank is its index;
/// acquiring rank *r* while holding rank *r' > r* is a violation.
/// Patterns are matched against comment-stripped source lines.
const HIERARCHY: &[(&str, &[&str])] = &[
    // The effect-summary cache is held across schema reads while the
    // interprocedural analysis walks the call graph, so it sits outside
    // even the commit lock (nothing holds a rightward lock and then
    // classifies).
    ("effects", &[".effects.lock("]),
    ("commit-lock", &["commit_lock.lock("]),
    ("schema", &[".schema.read(", ".schema.write("]),
    ("methods", &[".methods.read(", ".methods.write("]),
    ("txn-inner", &[".inner.lock("]),
    ("store-writer", &[".writer.lock("]),
    ("disk", &[".disk.lock("]),
    ("objects-shard", &[".shard(", ".shards["]),
    ("locations", &[".locations.read(", ".locations.write("]),
    ("root", &[".root.read(", ".root.write("]),
    ("evict", &[".evict.lock("]),
    ("committed-view", &[".committed.read(", ".committed.write("]),
];

/// Sanctioned inversions, `(held, acquired)`. The evict mutex takes
/// object-shard write locks inside it while enforcing the resident bound —
/// the one nesting DESIGN §9 blesses (shard guards are only ever
/// statement-temporaries elsewhere, so no cycle closes).
const SANCTIONED: &[(&str, &str)] = &[("evict", "objects-shard")];

/// A lock acquisition found on one source line.
struct Acquisition {
    rank: usize,
    /// `Some(guard_name)` when `let`-bound (live to scope end), `None`
    /// for a same-statement temporary.
    bound: Option<String>,
}

/// A still-live `let`-bound guard.
struct Held {
    rank: usize,
    name: String,
    depth: i32,
    line: usize,
}

fn rank_name(rank: usize) -> &'static str {
    HIERARCHY[rank].0
}

fn sanctioned(held: usize, acquired: usize) -> bool {
    SANCTIONED.iter().any(|&(h, a)| h == rank_name(held) && a == rank_name(acquired))
}

/// Strip a trailing `// …` comment (good enough for engine sources: lock
/// patterns never appear inside string literals there, and the self-test
/// guards this assumption against the real tree).
fn strip_comment(line: &str) -> &str {
    match line.find("//") {
        Some(i) => &line[..i],
        None => line,
    }
}

/// The acquisitions on one comment-stripped line, in pattern order.
fn acquisitions(code: &str) -> Vec<Acquisition> {
    let mut found = Vec::new();
    for (rank, (name, patterns)) in HIERARCHY.iter().enumerate() {
        let hit = match *name {
            // The object/track shard maps are guard-per-entry: only count
            // them when the line actually takes the shard's lock.
            "objects-shard" => {
                patterns.iter().any(|p| code.contains(p))
                    && (code.contains(".read()")
                        || code.contains(".write()")
                        || code.contains(".lock()"))
            }
            _ => patterns.iter().any(|p| code.contains(p)),
        };
        if !hit {
            continue;
        }
        let trimmed = code.trim_end();
        // `let guard = x.lock();` — the guard itself is bound and lives to
        // scope end. A longer chain (`.lock().stats()`) or a bare
        // expression releases within the statement.
        let bound = if code.contains("let ")
            && (trimmed.ends_with(".lock();")
                || trimmed.ends_with(".read();")
                || trimmed.ends_with(".write();"))
        {
            let after_let = &code[code.find("let ").unwrap() + 4..];
            let after_mut = after_let.strip_prefix("mut ").unwrap_or(after_let);
            let name: String =
                after_mut.chars().take_while(|c| c.is_alphanumeric() || *c == '_').collect();
            (!name.is_empty()).then_some(name)
        } else {
            None
        };
        found.push(Acquisition { rank, bound });
    }
    found
}

/// Lint one source text. `label` prefixes each finding (a path in real
/// runs, a fixture name in the self-test).
fn lint_source(label: &str, text: &str) -> Vec<String> {
    let mut findings = Vec::new();
    let mut held: Vec<Held> = Vec::new();
    let mut depth: i32 = 0;
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let code = strip_comment(raw);
        // A new function body never inherits guards (the depth rule
        // catches this too; this is belt-and-braces for one-line bodies).
        if code.trim_start().starts_with("fn ") || code.contains(" fn ") {
            held.clear();
        }
        for acq in acquisitions(code) {
            for h in &held {
                if acq.rank < h.rank && !sanctioned(h.rank, acq.rank) {
                    findings.push(format!(
                        "{label}:{lineno}: acquires `{}` while `{}` (guard `{}`, line {}) is \
                         held — DESIGN §9 orders {} before {}",
                        rank_name(acq.rank),
                        rank_name(h.rank),
                        h.name,
                        h.line,
                        rank_name(acq.rank),
                        rank_name(h.rank),
                    ));
                }
            }
            if let Some(name) = acq.bound {
                held.push(Held { rank: acq.rank, name, depth, line: lineno });
            }
        }
        // Explicit early release.
        if let Some(i) = code.find("drop(") {
            let name: String =
                code[i + 5..].chars().take_while(|c| c.is_alphanumeric() || *c == '_').collect();
            held.retain(|h| h.name != name);
        }
        let net = code.matches('{').count() as i32 - code.matches('}').count() as i32;
        depth += net;
        held.retain(|h| h.depth <= depth);
    }
    findings
}

fn rust_sources(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else { return };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            rust_sources(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

fn lint_tree(root: &Path) -> (usize, Vec<String>) {
    let mut files = Vec::new();
    let Ok(crates) = std::fs::read_dir(root.join("crates")) else {
        return (0, vec![format!("{}: no crates/ directory", root.display())]);
    };
    for entry in crates.flatten() {
        rust_sources(&entry.path().join("src"), &mut files);
    }
    files.sort();
    let mut findings = Vec::new();
    let mut scanned = 0usize;
    for path in files {
        // The lint's own pattern table would match itself.
        if path.ends_with("bin/lock_lint.rs") {
            continue;
        }
        let Ok(text) = std::fs::read_to_string(&path) else { continue };
        scanned += 1;
        let label = path.strip_prefix(root).unwrap_or(&path).display().to_string();
        findings.extend(lint_source(&label, &text));
    }
    (scanned, findings)
}

/// The negative test: a seeded inversion must be caught, a clean ordering
/// must not, and a `drop(..)` release must clear the guard.
fn self_test() -> bool {
    let inverted = r#"
fn bad(&self) {
    let mut schema = self.db.schema.write();
    let _commit = self.db.commit_lock.lock();
    schema.flush();
}
"#;
    let clean = r#"
fn good(&self) {
    let _commit = self.db.commit_lock.lock();
    let mut schema = self.db.schema.write();
    *self.db.committed.write() = view;
}
"#;
    let released = r#"
fn fine(&self) {
    let schema = self.db.schema.write();
    drop(schema);
    let _commit = self.db.commit_lock.lock();
}
"#;
    let scoped = r#"
fn scoped(&self) {
    {
        let schema = self.db.schema.read();
        let x = schema.peek();
    }
    let _commit = self.db.commit_lock.lock();
}
"#;
    let sanctioned_nesting = r#"
fn evictor(&self) {
    let mut ev = self.evict.lock();
    self.shard(candidate).write().remove(&candidate);
}
"#;
    let mut ok = true;
    let f = lint_source("inverted", inverted);
    if f.len() != 1 || !f[0].contains("commit-lock") {
        println!("self-test FAIL: seeded inversion not caught ({f:?})");
        ok = false;
    }
    for (name, fixture) in [
        ("clean", clean),
        ("released", released),
        ("scoped", scoped),
        ("evict", sanctioned_nesting),
    ] {
        let f = lint_source(name, fixture);
        if !f.is_empty() {
            println!("self-test FAIL: false positive on {name}: {f:?}");
            ok = false;
        }
    }
    if ok {
        println!("lock_lint self-test: seeded violation caught, clean fixtures pass");
    }
    ok
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--self-test") {
        if !self_test() {
            std::process::exit(1);
        }
        return;
    }
    // crates/bench/../../ = the workspace root.
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let root = root.canonicalize().unwrap_or(root);
    let (scanned, findings) = lint_tree(&root);
    for f in &findings {
        println!("FAIL {f}");
    }
    println!(
        "lock_lint: {scanned} files scanned against the {}-level hierarchy, {} violations",
        HIERARCHY.len(),
        findings.len()
    );
    if !findings.is_empty() {
        std::process::exit(1);
    }
}
