//! B6: the multi-session contention benchmark behind `BENCH_PR6.json`.
//!
//! §6 claims the design scales to "hundreds of users on relatively
//! conventional hardware" because sessions read private object spaces and
//! only meet at optimistic commit. This harness measures that claim on the
//! shattered-lock engine:
//!
//! * **read-only scaling** — N threads (1, 2, 4), each running OPAL read
//!   statements over disjoint key ranges with a commit per statement,
//!   against a *fault-bound* instance: tiny object/track caches force
//!   every statement through the disk fault path, and the store's
//!   simulated rotational latency (`set_read_stall_us`) is dialed up.
//!   Because no shared lock spans the fault path, concurrent sessions
//!   overlap their stalls and aggregate throughput scales with the thread
//!   count — even on a single core, which is what CI offers. (CPU-bound
//!   parallel speedup needs real cores; stall overlap only needs the
//!   lock-freedom this PR built, so it is the honest thing to gate.)
//!   Aborts must be exactly zero: read-only commits skip the commit lock.
//! * **mixed workload** — 4 threads running read-modify-write increments,
//!   with a conflict knob: each transaction targets a 4-account hot set
//!   with probability `p` (0%, 50%, 100%) and a thread-private account
//!   otherwise. The optimistic abort rate must track the knob: zero at
//!   p=0 (disjoint writes), nonzero under full contention.
//!
//! * **conflict forensics** (PR 9) — the mixed workload re-run on a fresh
//!   instance with the flight recorder on from birth: every optimistic
//!   abort must surface as exactly one journaled `TxnConflict` event
//!   (conservation against the `txn.conflicts` counter), fully attributed
//!   (kind + culprit commit + overlapping objects + home tracks), and the
//!   `CommitTimeline` stream must be 1:1 with the writing commits.
//!   Results land in `BENCH_PR9.json`.
//!
//! Deterministic counts (threads, ops, zero-abort invariants) are gated by
//! `perf_gate` against the committed `BENCH_PR6.json` / `BENCH_PR9.json`;
//! wall-clock derived fields carry the `info_` prefix and are bounded, not
//! diffed, via `floor_`/`ceil_` fields (see perf_gate).
//!
//! ```sh
//! cargo run -p gemstone-bench --bin contention --release          # writes BENCH_PR6.json
//! CONTENTION_OPS=40 CONTENTION_TXNS=30 cargo run ... --bin contention  # CI-sized
//! ```

use gemstone::{GemStone, Journal, JournalConfig, JournalEvent, StoreConfig};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Accounts in the committed working set (disjointly partitionable by 1,
/// 2, and 4 threads).
const ACCOUNTS: usize = 64;
/// Size of the mixed workload's contended hot set.
const HOT: usize = 4;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Deterministic per-thread stream (xorshift64*); no timing dependence.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }
}

fn populate(gs: &GemStone) {
    let mut s = gs.login("system").expect("login");
    let mut src = String::from("| t | Accounts := Dictionary new.\n");
    for i in 0..ACCOUNTS {
        src.push_str(&format!(
            "t := Dictionary new. t at: #bal put: {}. Accounts at: {i} put: t.\n",
            i * 100
        ));
    }
    s.run(&src).expect("populate");
    s.commit().expect("populate commit");
}

struct PhaseResult {
    ops: u64,
    aborts: u64,
    wall: std::time::Duration,
}

/// N sessions reading disjoint account ranges, one read-only commit per
/// statement. Touches the full snapshot-read path: txn begin (snapshot
/// refresh), statement compile, interpretation, object faults, commit.
fn read_only(gs: &GemStone, threads: usize, ops_per_thread: usize) -> PhaseResult {
    let aborts = Arc::new(AtomicU64::new(0));
    // Per-thread working set is FIXED (16 accounts) regardless of thread
    // count: the session workspace refreshes every held object at txn
    // begin, so a thread's stall count per op tracks its working-set
    // size. Equal per-thread work is what makes 1-vs-4-thread wall time a
    // scaling measurement rather than a working-set-size comparison.
    let per = ACCOUNTS / 4;
    let start = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..threads {
            let mut s = gs.login("system").expect("login");
            let aborts = aborts.clone();
            scope.spawn(move || {
                let mut rng = Rng(0x9e37_79b9 + t as u64);
                for _ in 0..ops_per_thread {
                    let k = t * per + (rng.next() as usize % per);
                    let v = s.run(&format!("(Accounts at: {k}) at: #bal")).expect("read");
                    assert!(v.as_int().is_some(), "balance reads answer integers");
                    if s.commit().is_err() {
                        aborts.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    PhaseResult {
        ops: (threads * ops_per_thread) as u64,
        aborts: aborts.load(Ordering::Relaxed),
        wall: start.elapsed(),
    }
}

/// 4 sessions doing read-modify-write increments; each transaction reads
/// the balance it overwrites, so overlapping commits really conflict under
/// backward validation. `hot_pct` is the probability of targeting the
/// shared hot set instead of a thread-private range. Conflicted
/// transactions retry until committed (aborts counted, work conserved).
fn mixed(gs: &GemStone, threads: usize, txns_per_thread: usize, hot_pct: u64) -> PhaseResult {
    let aborts = Arc::new(AtomicU64::new(0));
    let per = (ACCOUNTS - HOT) / threads;
    let start = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..threads {
            let mut s = gs.login("system").expect("login");
            let aborts = aborts.clone();
            scope.spawn(move || {
                let mut rng = Rng(0xdead_beef + t as u64);
                for _ in 0..txns_per_thread {
                    let k = if rng.next() % 100 < hot_pct {
                        rng.next() as usize % HOT
                    } else {
                        HOT + t * per + (rng.next() as usize % per)
                    };
                    loop {
                        s.run(&format!(
                            "(Accounts at: {k}) at: #bal \
                             put: (((Accounts at: {k}) at: #bal) + 1)"
                        ))
                        .expect("increment");
                        // Think time between the last read and the commit.
                        // On a single core a short transaction otherwise
                        // runs begin→commit without ever being preempted,
                        // and the conflict knob would measure the
                        // scheduler's quantum instead of validation.
                        std::thread::yield_now();
                        match s.commit() {
                            Ok(_) => break,
                            Err(_) => {
                                aborts.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                }
            });
        }
    });
    PhaseResult {
        ops: (threads * txns_per_thread) as u64,
        aborts: aborts.load(Ordering::Relaxed),
        wall: start.elapsed(),
    }
}

fn ops_per_sec(r: &PhaseResult) -> u64 {
    (r.ops as f64 / r.wall.as_secs_f64().max(1e-9)) as u64
}

fn abort_rate_pct(r: &PhaseResult) -> u64 {
    if r.ops + r.aborts == 0 {
        return 0;
    }
    r.aborts * 100 / (r.ops + r.aborts)
}

fn main() {
    let ops = env_usize("CONTENTION_OPS", 300);
    let txns = env_usize("CONTENTION_TXNS", 150);
    let stall_us = env_usize("CONTENTION_STALL_US", 100) as u64;

    // Fault-bound instance for the read-scaling phase: caches sized far
    // below the working set so every statement faults, plus simulated
    // rotational latency so the faults cost something overlappable.
    let gs_read = GemStone::create(StoreConfig { track_size: 256, cache_tracks: 4, replicas: 1 })
        .expect("create fault-bound db");
    populate(&gs_read);
    gs_read.database().store().set_object_cache_limit(Some(1));
    gs_read.database().store().set_read_stall_us(stall_us);

    // Unstalled in-memory instance for the mixed/conflict phase (it
    // measures validation behavior, not I/O overlap).
    let gs = GemStone::in_memory();
    populate(&gs);

    let mut records: Vec<String> = Vec::new();
    let mut failures = 0usize;

    // ---- read-only scaling ------------------------------------------
    let mut rates = Vec::new();
    for &threads in &[1usize, 2, 4] {
        let r = read_only(&gs_read, threads, ops);
        let rate = ops_per_sec(&r);
        rates.push(rate);
        println!(
            "read-only t={threads}: {} ops in {:?} ({rate} ops/s, {} aborts)",
            r.ops, r.wall, r.aborts
        );
        if r.aborts != 0 {
            println!("FAIL read-only t={threads}: {} aborts (must be 0)", r.aborts);
            failures += 1;
        }
        records.push(format!(
            "{{\"id\": \"contention-readonly-t{threads}\", \"threads\": {threads}, \
             \"ops\": {}, \"aborts\": {}, \"info_stall_us\": {stall_us}, \
             \"info_ops_per_sec\": {rate}}}",
            r.ops, r.aborts
        ));
    }
    let scaling_x1000 = rates[2] * 1000 / rates[0].max(1);
    println!("read-only scaling 1→4 threads: {:.3}x", scaling_x1000 as f64 / 1000.0);
    records.push(format!(
        "{{\"id\": \"contention-readonly-scaling\", \
         \"info_scaling_1to4_x1000\": {scaling_x1000}, \
         \"floor_info_scaling_1to4_x1000\": 2000}}"
    ));

    // ---- mixed workload, conflict knob ------------------------------
    let mut p100_aborts = 0;
    for &hot_pct in &[0u64, 50, 100] {
        let r = mixed(&gs, 4, txns, hot_pct);
        let rate = abort_rate_pct(&r);
        if hot_pct == 100 {
            p100_aborts = r.aborts;
        }
        println!(
            "mixed p={hot_pct}%: {} txns, {} aborts ({rate}% abort rate, {} txn/s)",
            r.ops,
            r.aborts,
            ops_per_sec(&r)
        );
        if hot_pct == 0 && r.aborts != 0 {
            println!("FAIL mixed p=0: {} aborts (disjoint writes must never conflict)", r.aborts);
            failures += 1;
        }
        let bounds = match hot_pct {
            // Disjoint writes: aborts are deterministic and gated exactly.
            0 => format!("\"aborts\": {}", r.aborts),
            // Contended: the count is timing-dependent; bound it instead.
            100 => format!(
                "\"info_aborts\": {}, \"info_abort_rate_pct\": {rate}, \
                 \"floor_info_aborts\": 1, \"ceil_info_abort_rate_pct\": 95",
                r.aborts
            ),
            _ => format!(
                "\"info_aborts\": {}, \"info_abort_rate_pct\": {rate}, \
                 \"ceil_info_abort_rate_pct\": 95",
                r.aborts
            ),
        };
        records.push(format!(
            "{{\"id\": \"contention-mixed-p{hot_pct}\", \"threads\": 4, \"txns\": {}, {bounds}}}",
            r.ops
        ));
    }
    if p100_aborts == 0 {
        println!("FAIL mixed p=100: zero aborts — the conflict knob had no effect");
        failures += 1;
    }

    // Every optimistic increment eventually landed exactly once.
    let mut s = gs.login("system").expect("login");
    let mut total = 0i64;
    for i in 0..ACCOUNTS {
        total += s
            .run(&format!("(Accounts at: {i}) at: #bal"))
            .expect("sum read")
            .as_int()
            .expect("int");
    }
    let expected: i64 = (0..ACCOUNTS as i64).map(|i| i * 100).sum::<i64>() + (3 * 4 * txns) as i64;
    if total != expected {
        println!("FAIL conservation: balances sum to {total}, expected {expected}");
        failures += 1;
    } else {
        println!("conservation: {} committed increments all present", 3 * 4 * txns);
    }

    // ---- conflict forensics (journaled mixed phase, PR 9) -----------
    let mut pr9: Vec<String> = Vec::new();
    {
        let dir = std::env::temp_dir().join(format!("gemstone-forensics-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("forensics journal dir");
        let gs_f = GemStone::in_memory();
        gs_f.database().start_journal(JournalConfig::at(&dir)).expect("start journal");
        populate(&gs_f);
        let rf = mixed(&gs_f, 4, txns, 100);
        gs_f.telemetry().journal.flush();
        let snap = gs_f.database().metrics_snapshot();
        let conflicts_counter = snap.counter("txn.conflicts");
        let readout = Journal::read_from(&dir).expect("read journal");
        let mut journaled = 0u64;
        let mut unattributed = 0u64;
        let mut timeline_events = 0u64;
        for e in &readout.events {
            match e {
                JournalEvent::TxnConflict {
                    kind,
                    culprit_time,
                    culprit_session,
                    goops,
                    tracks,
                    ..
                } => {
                    journaled += 1;
                    // An overlap conflict must name its killer and the
                    // contested objects; a watermark refusal's culprit is
                    // pruned by definition.
                    let attributed = kind.as_str() != "overlap"
                        || (*culprit_time > 0
                            && *culprit_session > 0
                            && !goops.is_empty()
                            && !tracks.is_empty());
                    if !attributed {
                        unattributed += 1;
                    }
                }
                JournalEvent::CommitTimeline { .. } => timeline_events += 1,
                _ => {}
            }
        }
        let cs = gs_f.database().conflict_stats();
        println!(
            "forensics p=100: {} aborts, {} journaled TxnConflict, counter {}, \
             stats overlap {} watermark {}",
            rf.aborts, journaled, conflicts_counter, cs.overlap, cs.watermark
        );
        if journaled != conflicts_counter || rf.aborts != conflicts_counter {
            println!(
                "FAIL forensics conservation: {} aborts, {} journaled, counter {}",
                rf.aborts, journaled, conflicts_counter
            );
            failures += 1;
        }
        if unattributed != 0 {
            println!("FAIL forensics attribution: {unattributed} overlap events incomplete");
            failures += 1;
        }
        // One CommitTimeline per writing commit: populate + every retried
        // increment that eventually landed. Aborted prepares record none.
        let commits_expected = 1 + rf.ops;
        println!("forensics: {timeline_events} commit timelines ({commits_expected} expected)");
        if timeline_events != commits_expected {
            println!(
                "FAIL forensics timeline: {timeline_events} CommitTimeline events, \
                 expected {commits_expected}"
            );
            failures += 1;
        }
        let p99 = |name: &str| snap.histogram(name).map(|h| h.quantile(0.99)).unwrap_or(0);
        pr9.push(format!(
            "{{\"id\": \"forensics-conservation\", \"txns\": {}, \"conservation_ok\": 1, \
             \"attribution_complete\": 1, \"watermark\": {}, \"info_conflicts\": {journaled}, \
             \"floor_info_conflicts\": 1}}",
            rf.ops, cs.watermark
        ));
        pr9.push(format!(
            "{{\"id\": \"forensics-timeline\", \"commits\": {commits_expected}, \
             \"timeline_events\": {timeline_events}, \
             \"info_snapshot_age_p99_us\": {}, \"info_validation_p99_us\": {}, \
             \"info_safe_write_p99_us\": {}, \"info_publish_p99_us\": {}}}",
            p99("commit.phase.snapshot_age_us"),
            p99("commit.phase.validation_us"),
            p99("commit.phase.safe_write_us"),
            p99("commit.phase.publish_us")
        ));
        pr9.push(format!(
            "{{\"id\": \"forensics-fsync\", \"info_fsyncs\": {}, \"info_fsync_p99_us\": {}, \
             \"info_commit_fsync_p99_us\": {}}}",
            snap.counter("storage.disk.fsyncs"),
            p99("storage.disk.fsync_us"),
            p99("commit.phase.fsync_us")
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    let body = records.join(",\n  ");
    std::fs::write("BENCH_PR6.json", format!("[\n  {body}\n]\n")).expect("write BENCH_PR6.json");
    println!("wrote BENCH_PR6.json ({} records)", records.len());
    let body9 = pr9.join(",\n  ");
    std::fs::write("BENCH_PR9.json", format!("[\n  {body9}\n]\n")).expect("write BENCH_PR9.json");
    println!("wrote BENCH_PR9.json ({} records)", pr9.len());

    if failures > 0 {
        println!("contention: {failures} FAILURES");
        std::process::exit(1);
    }
}
