//! B8: the file-backend I/O benchmark behind `BENCH_PR8.json`.
//!
//! PR 8 put the database on a real preallocated file with group commit:
//! one safe-write group per transaction, exactly two fsyncs per group (a
//! data barrier before the root page, an ack barrier after it). This
//! harness gates the protocol with deterministic counters:
//!
//! * **group commit** — N committing transactions on the file backend;
//!   `storage.disk.fsyncs` must grow by exactly `2 * commits` (plus the
//!   volume-format commit at create), never per-track.
//! * **write batching** — tracks per fsync on a multi-object workload:
//!   writes/fsyncs stays a ratio, not 1:1; the exact writes and fsyncs
//!   counts are gated.
//! * **reopen recovery** — drop the store, reopen from the file, count
//!   root-scan reads; every committed object answers. Wall-clock recovery
//!   time is reported as `info_` only.
//!
//! Counter-derived fields are deterministic and gated exactly by
//! `perf_gate` against the committed `BENCH_PR8.json`; wall-clock derived
//! fields carry the `info_` prefix.
//!
//! ```sh
//! cargo run -p gemstone-bench --bin io_bench --release    # writes BENCH_PR8.json
//! IO_BENCH_COMMITS=10 cargo run ... --bin io_bench        # CI-sized
//! ```

use gemstone::{GemStone, MetricsSnapshot, StoreConfig};
use std::time::Instant;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn snap(gs: &GemStone) -> MetricsSnapshot {
    gs.telemetry().registry.snapshot()
}

fn main() {
    let commits = env_usize("IO_BENCH_COMMITS", 32);

    let dir = std::env::temp_dir().join(format!("gemstone-io-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("bench dir");
    let db = dir.join("bench.gem");

    let mut records: Vec<String> = Vec::new();
    let mut failures = 0usize;

    // ---- group commit: fsyncs per committing transaction -------------
    let cfg = StoreConfig { track_size: 2048, cache_tracks: 64, replicas: 1 };
    let gs = GemStone::create_file(&db, cfg).expect("create file db");
    let mut s = gs.login("system").expect("login");
    s.run("Log := OrderedCollection new").expect("schema");
    s.commit().expect("schema commit");

    let before = snap(&gs);
    let wall = Instant::now();
    for i in 0..commits {
        s.run(&format!("Log add: {i}")).expect("append");
        s.commit().expect("commit");
    }
    let commit_wall = wall.elapsed();
    let d = snap(&gs).diff(&before);
    let fsyncs = d.counter("storage.disk.fsyncs");
    let writes = d.counter("storage.disk.writes");
    let n = commits as u64;
    let per_commit = fsyncs as f64 / n as f64;
    println!(
        "group-commit: {n} commits, {fsyncs} fsyncs ({per_commit:.1}/commit), {writes} track \
         writes, {:?} wall",
        commit_wall
    );
    if fsyncs != 2 * n {
        println!("FAIL group-commit: {fsyncs} fsyncs for {n} commits (want exactly 2 per group)");
        failures += 1;
    }
    records.push(format!(
        "{{\"id\": \"io-group-commit\", \"commits\": {n}, \"fsyncs\": {fsyncs}, \
         \"fsyncs_per_commit\": {}, \"track_writes\": {writes}, \"info_commit_wall_us\": {}}}",
        fsyncs / n,
        commit_wall.as_micros()
    ));

    // ---- write batching: many objects, still two fsyncs --------------
    let before = snap(&gs);
    s.run(
        "| t | Wide := OrderedCollection new.
         1 to: 40 do: [:i | t := Dictionary new. t at: #n put: i. Wide add: t]",
    )
    .expect("wide txn");
    s.commit().expect("wide commit");
    drop(s);
    let d = snap(&gs).diff(&before);
    let wide_fsyncs = d.counter("storage.disk.fsyncs");
    let wide_writes = d.counter("storage.disk.writes");
    let tracks_per_fsync = wide_writes as f64 / wide_fsyncs.max(1) as f64;
    println!(
        "write-batching: 1 wide commit, {wide_writes} track writes over {wide_fsyncs} fsyncs \
         ({tracks_per_fsync:.1} tracks/fsync)"
    );
    if wide_fsyncs != 2 {
        println!("FAIL write-batching: {wide_fsyncs} fsyncs for one commit group");
        failures += 1;
    }
    if wide_writes < 4 {
        println!("FAIL write-batching: only {wide_writes} track writes — workload too narrow");
        failures += 1;
    }
    records.push(format!(
        "{{\"id\": \"io-write-batching\", \"fsyncs\": {wide_fsyncs}, \
         \"track_writes\": {wide_writes}, \"tracks_per_fsync\": {}}}",
        wide_writes / wide_fsyncs.max(1)
    ));

    // ---- reopen recovery ---------------------------------------------
    drop(gs);
    let wall = Instant::now();
    let gs = GemStone::open_file(&db, 64).expect("reopen");
    let recovery_wall = wall.elapsed();
    let d = snap(&gs);
    let recovery_reads = d.counter("storage.disk.reads");
    let mut s = gs.login("system").expect("login");
    let log_size = s.run("Log size").expect("Log size").as_int().expect("int") as u64;
    let wide_size = s.run("Wide size").expect("Wide size").as_int().expect("int") as u64;
    println!(
        "reopen-recovery: {recovery_reads} reads to recover, log {log_size}, wide {wide_size}, \
         {recovery_wall:?} wall"
    );
    if log_size != n || wide_size != 40 {
        println!("FAIL reopen-recovery: committed state incomplete after reopen");
        failures += 1;
    }
    records.push(format!(
        "{{\"id\": \"io-reopen-recovery\", \"recovered_log\": {log_size}, \
         \"recovered_wide\": {wide_size}, \"info_recovery_reads\": {recovery_reads}, \
         \"info_recovery_wall_us\": {}}}",
        recovery_wall.as_micros()
    ));
    drop(s);
    drop(gs);
    let _ = std::fs::remove_dir_all(&dir);

    let body = records.join(",\n  ");
    std::fs::write("BENCH_PR8.json", format!("[\n  {body}\n]\n")).expect("write BENCH_PR8.json");
    println!("wrote BENCH_PR8.json ({} records)", records.len());

    if failures > 0 {
        println!("io_bench: {failures} FAILURES");
        std::process::exit(1);
    }
}
