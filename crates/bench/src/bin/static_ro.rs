//! B7: the static read-only commit-path benchmark behind `BENCH_PR7.json`.
//!
//! PR 7's effect analysis classifies every statement *before* execution;
//! a transaction whose statements all prove Pure/ReadOnly commits through
//! the lock-free fast path — no dirty-object walk, no write-set
//! construction, no commit lock. This harness gates that claim with
//! deterministic counters from the metrics registry:
//!
//! * **static read-only scaling** — N threads (1, 2, 4) running OPAL read
//!   statements over disjoint account ranges, one commit per statement.
//!   Every commit must be a static fast-path commit
//!   (`opal.effects.static_ro_commits` == commits) and aborts must be
//!   exactly zero: the path never touches the commit lock.
//! * **classification coverage** — every statement run is classified
//!   (`opal.effects.stmts_classified` == statements) and every read
//!   statement proves statically read-only, with zero `Unknown`
//!   summaries on the workload.
//! * **mixed discrimination** — alternating read and write transactions:
//!   exactly the read transactions take the fast path, the writes fall
//!   back to the full path and still commit. The analysis must neither
//!   leak a writer onto the fast path (soundness — also debug-asserted in
//!   the session) nor strand a reader on the slow one (precision).
//!
//! Counter-derived fields are deterministic and gated exactly by
//! `perf_gate` against the committed `BENCH_PR7.json`; wall-clock derived
//! fields carry the `info_` prefix.
//!
//! ```sh
//! cargo run -p gemstone-bench --bin static_ro --release       # writes BENCH_PR7.json
//! STATIC_RO_OPS=40 cargo run ... --bin static_ro              # CI-sized
//! ```

use gemstone::{GemStone, MetricsSnapshot};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Accounts in the committed working set (disjointly partitionable).
const ACCOUNTS: usize = 64;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Deterministic per-thread stream (xorshift64*); no timing dependence.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }
}

fn populate(gs: &GemStone) {
    let mut s = gs.login("system").expect("login");
    let mut src = String::from("| t | Accounts := Dictionary new.\n");
    for i in 0..ACCOUNTS {
        src.push_str(&format!(
            "t := Dictionary new. t at: #bal put: {}. Accounts at: {i} put: t.\n",
            i * 100
        ));
    }
    s.run(&src).expect("populate");
    s.commit().expect("populate commit");
}

fn snap(gs: &GemStone) -> MetricsSnapshot {
    gs.telemetry().registry.snapshot()
}

struct PhaseResult {
    ops: u64,
    aborts: u64,
    wall: std::time::Duration,
}

/// N sessions, each running single-read transactions over a disjoint
/// account range with a commit per statement. Every statement classifies
/// ReadOnly before execution, so every commit must take the static path.
fn read_only(gs: &GemStone, threads: usize, ops_per_thread: usize) -> PhaseResult {
    let aborts = Arc::new(AtomicU64::new(0));
    let per = ACCOUNTS / 4;
    let start = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..threads {
            let mut s = gs.login("system").expect("login");
            let aborts = aborts.clone();
            scope.spawn(move || {
                let mut rng = Rng(0x9e37_79b9 + t as u64);
                for _ in 0..ops_per_thread {
                    let k = t * per + (rng.next() as usize % per);
                    let v = s.run(&format!("(Accounts at: {k}) at: #bal")).expect("read");
                    assert!(v.as_int().is_some(), "balance reads answer integers");
                    if s.commit().is_err() {
                        aborts.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    PhaseResult {
        ops: (threads * ops_per_thread) as u64,
        aborts: aborts.load(Ordering::Relaxed),
        wall: start.elapsed(),
    }
}

fn ops_per_sec(r: &PhaseResult) -> u64 {
    (r.ops as f64 / r.wall.as_secs_f64().max(1e-9)) as u64
}

fn main() {
    let ops = env_usize("STATIC_RO_OPS", 300);

    let gs = GemStone::in_memory();
    populate(&gs);

    let mut records: Vec<String> = Vec::new();
    let mut failures = 0usize;

    // ---- static read-only scaling -----------------------------------
    for &threads in &[1usize, 2, 4] {
        let before = snap(&gs);
        let r = read_only(&gs, threads, ops);
        let d = snap(&gs).diff(&before);
        let fast = d.counter("opal.effects.static_ro_commits");
        let classified = d.counter("opal.effects.stmts_classified");
        let static_ro = d.counter("opal.effects.stmts_static_ro");
        let unknown = d.counter("opal.effects.unknown");
        let rate = ops_per_sec(&r);
        println!(
            "static-ro t={threads}: {} ops in {:?} ({rate} ops/s, {} aborts, \
             {fast} fast-path commits, {static_ro}/{classified} statements static-RO)",
            r.ops, r.wall, r.aborts
        );
        if r.aborts != 0 {
            println!("FAIL static-ro t={threads}: {} aborts (fast path never conflicts)", r.aborts);
            failures += 1;
        }
        if fast != r.ops {
            println!(
                "FAIL static-ro t={threads}: {fast} fast-path commits for {} read-only txns",
                r.ops
            );
            failures += 1;
        }
        if static_ro != r.ops || classified != r.ops {
            println!(
                "FAIL static-ro t={threads}: classified {classified}, static-RO {static_ro}, \
                 expected {} of each",
                r.ops
            );
            failures += 1;
        }
        if unknown != 0 {
            println!(
                "FAIL static-ro t={threads}: {unknown} Unknown summaries on a static workload"
            );
            failures += 1;
        }
        records.push(format!(
            "{{\"id\": \"static-ro-t{threads}\", \"threads\": {threads}, \"ops\": {}, \
             \"aborts\": {}, \"static_ro_commits\": {fast}, \"stmts_classified\": {classified}, \
             \"stmts_static_ro\": {static_ro}, \"unknown_summaries\": {unknown}, \
             \"info_ops_per_sec\": {rate}}}",
            r.ops, r.aborts
        ));
    }

    // ---- mixed discrimination ---------------------------------------
    // One session alternating read-only and writing transactions: the
    // fast-path count must equal exactly the read half — no writer leaks
    // onto it, no reader misses it.
    let mixed_txns = ops.min(100);
    let before = snap(&gs);
    let mut s = gs.login("system").expect("login");
    for i in 0..mixed_txns {
        let k = i % ACCOUNTS;
        if i % 2 == 0 {
            s.run(&format!("(Accounts at: {k}) at: #bal")).expect("read");
        } else {
            s.run(&format!("(Accounts at: {k}) at: #bal put: (((Accounts at: {k}) at: #bal) + 1)"))
                .expect("write");
        }
        s.commit().expect("mixed commit");
    }
    drop(s);
    let d = snap(&gs).diff(&before);
    let fast = d.counter("opal.effects.static_ro_commits");
    let reads = (mixed_txns as u64).div_ceil(2);
    println!(
        "mixed: {mixed_txns} txns ({reads} read-only), {fast} fast-path commits, \
         {} statements static-RO",
        d.counter("opal.effects.stmts_static_ro")
    );
    if fast != reads {
        println!("FAIL mixed: {fast} fast-path commits, expected exactly the {reads} read txns");
        failures += 1;
    }
    records.push(format!(
        "{{\"id\": \"static-ro-mixed\", \"txns\": {mixed_txns}, \"read_txns\": {reads}, \
         \"static_ro_commits\": {fast}, \"stmts_static_ro\": {}}}",
        d.counter("opal.effects.stmts_static_ro")
    ));

    // The write half landed: balances moved by exactly one increment per
    // writing transaction.
    let mut s = gs.login("system").expect("login");
    let mut total = 0i64;
    for i in 0..ACCOUNTS {
        total += s
            .run(&format!("(Accounts at: {i}) at: #bal"))
            .expect("sum read")
            .as_int()
            .expect("int");
    }
    let expected: i64 =
        (0..ACCOUNTS as i64).map(|i| i * 100).sum::<i64>() + (mixed_txns as i64 / 2);
    if total != expected {
        println!("FAIL conservation: balances sum to {total}, expected {expected}");
        failures += 1;
    } else {
        println!("conservation: {} committed increments all present", mixed_txns / 2);
    }

    let body = records.join(",\n  ");
    std::fs::write("BENCH_PR7.json", format!("[\n  {body}\n]\n")).expect("write BENCH_PR7.json");
    println!("wrote BENCH_PR7.json ({} records)", records.len());

    if failures > 0 {
        println!("static_ro: {failures} FAILURES");
        std::process::exit(1);
    }
}
