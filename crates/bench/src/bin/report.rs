//! The experiment report harness: prints the counted series for every
//! claim-driven experiment in DESIGN.md §3 that is about *counts* (faults,
//! aborts, disk traffic, redundancy) rather than latency. EXPERIMENTS.md
//! records a captured run.
//!
//! ```sh
//! cargo run -p gemstone-bench --bin report --release
//! ```
//!
//! Every run also writes `BENCH_PR5.json` — the committed perf trajectory:
//! one flat JSON record per line for each *deterministic* counted result
//! (join plan shapes and operator counters, flattening byte counts, and the
//! full metrics scrape of the join session). CI regenerates the file and
//! diffs it against the committed copy with `perf_gate`. Pass
//! `--trajectory-only` to skip the timing-shaped and contention experiments
//! and produce just the trajectory (what the CI perf job runs).

use gemstone::{GemError, GemStone, StoreConfig};
use gemstone_bench::{build_employees, build_join_collections, fresh, join_query, rng};
use gemstone_calculus::{eval_algebra_stats, translate_with, IndexCatalog, PlanOptions, PlanStats};
use gemstone_loom::LoomMemory;
use gemstone_stdm::encode::{flatten_children, flattened_bytes, payload_bytes};
use gemstone_stdm::{LabeledSet, SValue};
use rand::Rng;
use std::time::Instant;

fn main() {
    let trajectory_only = std::env::args().any(|a| a == "--trajectory-only");
    let mut trajectory: Vec<String> = Vec::new();
    if !trajectory_only {
        c4_abort_rate();
        c6_directory_crossover();
        c7_loom_vs_object_manager();
        c9_history_growth();
    }
    t2_redundancy(&mut trajectory);
    c_join_plans(&mut trajectory);
    write_trajectory(&trajectory);
}

/// Write the perf trajectory: a JSON array, one flat record per line, in
/// the shape `perf_gate` parses. Only deterministic counts are gated —
/// wall-clock fields (`*_us`) ride along for humans.
fn write_trajectory(records: &[String]) {
    let json = format!("[\n{}\n]\n", records.join(",\n"));
    match std::fs::write("BENCH_PR5.json", &json) {
        Ok(()) => println!("── perf trajectory: {} records → BENCH_PR5.json ──", records.len()),
        Err(e) => println!("── could not write BENCH_PR5.json: {e} ──"),
    }
}

/// C4: abort rate vs contention (uniform vs hot-key writes).
fn c4_abort_rate() {
    println!("── C4: optimistic concurrency — abort rate vs contention ──");
    println!("{:<22} {:>10} {:>10} {:>12}", "workload", "commits", "aborts", "abort rate");
    for (label, n_keys) in
        [("hot (1 key)", 1usize), ("skewed (4 keys)", 4), ("uniform (256 keys)", 256)]
    {
        let gs = GemStone::in_memory();
        let mut setup = gs.login("system").unwrap();
        setup.run("Accounts := Dictionary new").unwrap();
        setup
            .run(&format!(
                "| a | 0 to: {} do: [:i | a := Dictionary new. a at: #v put: 0. Accounts at: i put: a]",
                n_keys.max(256) - 1
            ))
            .unwrap();
        setup.commit().unwrap();
        drop(setup);
        crossbeam::scope(|scope| {
            for t in 0..4 {
                let gs = gs.clone();
                scope.spawn(move |_| {
                    let mut s = gs.login("system").unwrap();
                    let mut r = rng(t as u64);
                    for _ in 0..100 {
                        let key = r.gen_range(0..n_keys);
                        // Read-compute-write with the transaction held open
                        // across the "computation" — the realistic window in
                        // which optimistic conflicts arise.
                        s.run(&format!("Tmp := (Accounts at: {key}) at: #v")).unwrap();
                        s.run("| x | x := 0. 1 to: 400 do: [:i | x := x + i]. x").unwrap();
                        s.run(&format!("(Accounts at: {key}) at: #v put: Tmp + 1")).unwrap();
                        match s.commit() {
                            Ok(_) | Err(GemError::TransactionConflict { .. }) => {}
                            Err(e) => panic!("{e}"),
                        }
                    }
                });
            }
        })
        .unwrap();
        let (commits, aborts) = gs.database().txn_counts();
        println!(
            "{label:<22} {commits:>10} {aborts:>10} {:>11.1}%",
            100.0 * aborts as f64 / (commits + aborts) as f64
        );
    }
    println!();
}

/// C6: directory lookup vs scan — crossover on collection size.
fn c6_directory_crossover() {
    println!("── C6: equality selection — scan vs directory (median of runs) ──");
    println!("{:>8} {:>14} {:>14} {:>9}", "size", "scan µs", "directory µs", "speedup");
    for &n in &[100usize, 500, 2000, 8000] {
        let (_gs, mut s) = fresh();
        let salaries = build_employees(&mut s, n);
        let probe = salaries[n / 2];
        let query = format!("(Employees select: [:e | e Salary = {probe}]) size");
        let scan_us = median_us(9, || {
            s.run(&query).unwrap();
        });
        s.run("System createIndexOn: Employees path: #Salary").unwrap();
        s.commit().unwrap();
        let idx_us = median_us(9, || {
            s.run(&query).unwrap();
        });
        println!("{n:>8} {scan_us:>14.1} {idx_us:>14.1} {:>8.1}x", scan_us / idx_us);
    }
    println!();
}

fn median_us(runs: usize, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..runs)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64() * 1e6
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[runs / 2]
}

/// C7: LOOM two-level memory vs the GemStone Object Manager — disk reads
/// to serve a random access sweep, across resident-cache sizes. Both run at
/// the storage layer on identical object graphs.
fn c7_loom_vs_object_manager() {
    use gemstone_object::{ClassId, ElemName, Goop, PRef, SegmentId};
    use gemstone_storage::{ObjectDelta, PermanentStore};
    use gemstone_temporal::TxnTime;

    println!("── C7: LOOM vs GemStone Object Manager — track reads per 1000 accesses ──");
    println!(
        "{:>14} {:>12} {:>12} {:>14}",
        "cache(objects)", "LOOM reads", "OM reads", "OM advantage"
    );
    const N: usize = 800;
    const ACCESSES: usize = 1000;
    for &cache in &[50usize, 200, 800] {
        // LOOM: objects written one-by-one, no clustering; every fault is
        // that object's own track I/O.
        let mut loom = LoomMemory::new(8192, cache);
        let loom_oops: Vec<_> = (0..N).map(|i| loom.create(vec![i as u32]).unwrap()).collect();
        loom.flush().unwrap();
        loom.reset_stats();
        let mut r = rng(11);
        for _ in 0..ACCESSES {
            let i = r.gen_range(0..N);
            loom.read_field(loom_oops[i], 0).unwrap();
        }
        let loom_reads = loom.disk_stats().track_reads;

        // GemStone OM: the same graph committed in batches of 100 — the
        // Boxer clusters each batch onto shared tracks — with the object
        // cache bounded to the same resident count.
        let store =
            PermanentStore::create(StoreConfig { track_size: 8192, cache_tracks: 8, replicas: 1 })
                .unwrap();
        let goops: Vec<Goop> = (0..N).map(|_| store.alloc_goop()).collect();
        for (batch_no, chunk) in goops.chunks(100).enumerate() {
            let deltas: Vec<ObjectDelta> = chunk
                .iter()
                .map(|g| ObjectDelta {
                    goop: *g,
                    class: ClassId(3),
                    segment: SegmentId(0),
                    alias_next: 0,
                    elem_writes: vec![(ElemName::Int(0), PRef::int(g.0 as i64))],
                    bytes_write: None,
                    is_new: true,
                })
                .collect();
            store.commit_batch(TxnTime::from_ticks(batch_no as u64 + 1), &deltas).unwrap();
        }
        store.set_object_cache_limit(Some(cache));
        store.reset_stats();
        let mut r = rng(11);
        for _ in 0..ACCESSES {
            let i = r.gen_range(0..N);
            store.get(goops[i]).unwrap();
        }
        let om_reads = store.disk_stats().track_reads;
        println!(
            "{cache:>14} {loom_reads:>12} {om_reads:>12} {:>13.1}x",
            loom_reads as f64 / om_reads.max(1) as f64
        );
    }
    println!("  (LOOM pays one fault per object — §7's clustering critique; the OM\n   amortizes faults across commit-clustered tracks and its track cache.)\n");
}

/// C9: history growth — disk traffic as updates accumulate, and the DBA
/// prune operation.
fn c9_history_growth() {
    println!("── C9: history growth — bytes written per commit as history accumulates ──");
    println!("{:>12} {:>16} {:>18}", "updates", "object assoc.", "bytes/commit");
    let gs =
        GemStone::create(StoreConfig { track_size: 2048, cache_tracks: 64, replicas: 1 }).unwrap();
    let mut s = gs.login("system").unwrap();
    s.run("A := Dictionary new. A at: #v put: 0").unwrap();
    s.commit().unwrap();
    let mut total_updates = 0u64;
    for round in 0..4 {
        let updates = 10usize * 10usize.pow(round);
        gs.database().reset_storage_stats();
        for i in 0..updates {
            s.run(&format!("A at: #v put: {i}")).unwrap();
            s.commit().unwrap();
        }
        total_updates += updates as u64;
        let (_, disk) = gs.database().storage_stats();
        println!(
            "{total_updates:>12} {:>16} {:>18.0}",
            total_updates + 1,
            disk.bytes_written as f64 / updates as f64
        );
    }
    println!("  (each commit rewrites the object's full association table — the\n   growth the paper's DBA archive operation exists to bound)\n");
}

/// C-join: hash join vs nested loop on the equi-join workload — the plan
/// text, the operator counters, and median wall time per evaluation. Also
/// captures the run as machine-readable JSON in `BENCH_report.json`.
fn c_join_plans(traj: &mut Vec<String>) {
    println!("── C-join: equi-join — hash plan vs nested loop ──");
    println!(
        "{:>6} {:>6} {:>13} {:>15} {:>12} {:>12}",
        "n", "m", "hash visits", "nested visits", "hash µs", "nested µs"
    );
    let mut runs = Vec::new();
    let mut metrics_json = String::from("[]");
    for &(n, m) in &[(200usize, 200usize), (1000, 1000)] {
        let (_gs, mut s) = fresh();
        build_join_collections(&mut s, n, m);
        let q = join_query(&mut s);
        let catalog = IndexCatalog::new();
        let hash_plan =
            translate_with(&q, &catalog, &PlanOptions { hash_joins: true, stats: None });
        let nested_plan =
            translate_with(&q, &catalog, &PlanOptions { hash_joins: false, stats: None });
        let mut hash_stats = PlanStats::default();
        eval_algebra_stats(&mut s, &hash_plan, &q, &mut hash_stats).unwrap();
        let mut nested_stats = PlanStats::default();
        eval_algebra_stats(&mut s, &nested_plan, &q, &mut nested_stats).unwrap();
        let hash_us = median_us(5, || {
            let mut st = PlanStats::default();
            eval_algebra_stats(&mut s, &hash_plan, &q, &mut st).unwrap();
        });
        let nested_us = median_us(5, || {
            let mut st = PlanStats::default();
            eval_algebra_stats(&mut s, &nested_plan, &q, &mut st).unwrap();
        });
        println!(
            "{n:>6} {m:>6} {:>13} {:>15} {hash_us:>12.1} {nested_us:>12.1}",
            hash_stats.row_visits(),
            nested_stats.row_visits()
        );
        traj.push(join_record("hash", n, m, &hash_plan.describe(), &hash_stats, hash_us));
        traj.push(join_record("nested", n, m, &nested_plan.describe(), &nested_stats, nested_us));
        if (n, m) == (1000, 1000) {
            // The end-to-end path: plan through the session and show what
            // `explain` reports.
            s.query(&q).unwrap();
            for line in s.explain().expect("explain after query").lines() {
                println!("    {line}");
            }
            // Full registry snapshot for the run — every layer's counters
            // (storage, txn, interpreter, planner) in one scrape, one JSON
            // object per metric.
            let snap = s.metrics();
            let lines: Vec<String> =
                snap.to_json_lines().lines().map(|l| format!("    {l}")).collect();
            metrics_json = format!("[\n{}\n  ]", lines.join(",\n"));
            // Every counter the join session moved, gated individually.
            // Durations (`*_ns` histograms are not counters; `*_ns` counter
            // names would be wall-clock) stay out of the trajectory.
            for (name, value) in &snap.counters {
                if name.ends_with("_ns") {
                    continue;
                }
                traj.push(format!("  {{\"id\": \"metric-{name}\", \"value\": {value}}}"));
            }
        }
        runs.push(format!(
            "    {{\"n\": {n}, \"m\": {m}, \"plan\": \"{}\",\n     \"hash\": {}, \"hash_median_us\": {hash_us:.1},\n     \"nested\": {}, \"nested_median_us\": {nested_us:.1}}}",
            json_escape(&hash_plan.describe()),
            stats_json(&hash_stats),
            stats_json(&nested_stats),
        ));
    }
    let json = format!(
        "{{\n  \"experiment\": \"c_join\",\n  \"runs\": [\n{}\n  ],\n  \"metrics\": {}\n}}\n",
        runs.join(",\n"),
        metrics_json
    );
    match std::fs::write("BENCH_report.json", &json) {
        Ok(()) => println!("  (counters written to BENCH_report.json)\n"),
        Err(e) => println!("  (could not write BENCH_report.json: {e})\n"),
    }
}

/// One flat trajectory record for a join plan evaluation.
fn join_record(
    kind: &str,
    n: usize,
    m: usize,
    plan: &str,
    s: &PlanStats,
    median_us: f64,
) -> String {
    format!(
        "  {{\"id\": \"join-{kind}-{n}x{m}\", \"plan\": \"{}\", \"row_visits\": {}, \
         \"rows_scanned\": {}, \"index_rows\": {}, \"index_hits\": {}, \"index_fallbacks\": {}, \
         \"select_in\": {}, \"select_out\": {}, \"nest_loops\": {}, \"hash_builds\": {}, \
         \"hash_probes\": {}, \"hash_matches\": {}, \"rows_out\": {}, \"median_us\": {median_us:.1}}}",
        json_escape(plan),
        s.row_visits(),
        s.rows_scanned,
        s.index_rows,
        s.index_hits,
        s.index_fallbacks,
        s.select_in,
        s.select_out,
        s.nest_loops,
        s.hash_builds,
        s.hash_probes,
        s.hash_matches,
        s.rows_out,
    )
}

/// Hand-rolled JSON for [`PlanStats`] (the harness has no serde).
fn stats_json(s: &PlanStats) -> String {
    format!(
        "{{\"row_visits\": {}, \"rows_scanned\": {}, \"index_rows\": {}, \
         \"index_hits\": {}, \"index_fallbacks\": {}, \"select_in\": {}, \
         \"select_out\": {}, \"nest_loops\": {}, \"hash_builds\": {}, \
         \"hash_probes\": {}, \"hash_matches\": {}, \"rows_out\": {}}}",
        s.row_visits(),
        s.rows_scanned,
        s.index_rows,
        s.index_hits,
        s.index_fallbacks,
        s.select_in,
        s.select_out,
        s.nest_loops,
        s.hash_builds,
        s.hash_probes,
        s.hash_matches,
        s.rows_out,
    )
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// T2: the flattening redundancy of §5.2, swept over family size.
fn t2_redundancy(traj: &mut Vec<String>) {
    println!("── T2: §5.2 flattening — repeated bytes vs number of children ──");
    println!(
        "{:>10} {:>14} {:>16} {:>12}",
        "children", "nested bytes", "flattened bytes", "overhead"
    );
    for n in [1usize, 3, 10, 50] {
        let children: Vec<String> = (0..n).map(|i| format!("child{i:02}")).collect();
        let emp = LabeledSet::of([
            ("Name", SValue::Set(LabeledSet::of([("First", "Robert"), ("Last", "Peters")]))),
            ("Children", SValue::Set(LabeledSet::values(children.iter().map(|c| c.as_str())))),
        ]);
        let nested = payload_bytes(&SValue::Set(emp.clone()));
        let flat = flattened_bytes(&flatten_children(&emp));
        println!(
            "{n:>10} {nested:>14} {flat:>16} {:>11.0}%",
            100.0 * (flat as f64 - nested as f64) / nested as f64
        );
        traj.push(format!(
            "  {{\"id\": \"flatten-{n:02}\", \"children\": {n}, \
             \"nested_bytes\": {nested}, \"flat_bytes\": {flat}}}"
        ));
    }
    println!();
}
