//! `gemtop` — a top-style live view of a GemStone engine under load.
//!
//! Drives the pull-based observatory ring (PR 9): an embedded
//! multi-session increment workload runs in the background while the
//! main thread ticks the observatory once per refresh and renders the
//! windowed rates, commit-phase latencies, cache health and conflict
//! forensics as one ANSI-refreshed frame.
//!
//! ```sh
//! cargo run -p gemstone-bench --bin gemtop --release
//! cargo run -p gemstone-bench --bin gemtop --release -- \
//!     --threads 4 --hot-pct 100 --interval-ms 500 --frames 20
//! cargo run ... --bin gemtop -- --capture     # one plain frame, no ANSI
//! ```
//!
//! `--capture` renders a single final frame without terminal control
//! sequences (what EXPERIMENTS.md E-obs3 embeds); the default mode
//! clears and redraws the terminal every interval like `top`.

use gemstone::{Anomaly, GemStone, ObservatoryConfig};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Accounts in the shared working set.
const ACCOUNTS: usize = 64;
/// The contended hot set targeted with probability `hot_pct`.
const HOT: usize = 4;

struct Args {
    threads: usize,
    hot_pct: u64,
    interval_ms: u64,
    frames: usize,
    capture: bool,
}

fn parse_args() -> Args {
    let mut a = Args { threads: 4, hot_pct: 100, interval_ms: 500, frames: 0, capture: false };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let num = |it: &mut dyn Iterator<Item = String>| {
            it.next().and_then(|v| v.parse::<u64>().ok()).unwrap_or_else(|| {
                eprintln!("gemtop: {flag} needs a numeric argument");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--threads" => a.threads = num(&mut it) as usize,
            "--hot-pct" => a.hot_pct = num(&mut it).min(100),
            "--interval-ms" => a.interval_ms = num(&mut it).max(1),
            "--frames" => a.frames = num(&mut it) as usize,
            "--capture" => a.capture = true,
            _ => {
                eprintln!(
                    "usage: gemtop [--threads N] [--hot-pct P] [--interval-ms M] \
                     [--frames K] [--capture]"
                );
                std::process::exit(2);
            }
        }
    }
    if a.frames == 0 {
        a.frames = if a.capture { 6 } else { 24 };
    }
    a
}

/// Deterministic per-thread stream (xorshift64*).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }
}

fn populate(gs: &GemStone) {
    let mut s = gs.login("system").expect("login");
    let mut src = String::from("| t | Accounts := Dictionary new.\n");
    for i in 0..ACCOUNTS {
        src.push_str(&format!(
            "t := Dictionary new. t at: #bal put: {}. Accounts at: {i} put: t.\n",
            i * 100
        ));
    }
    s.run(&src).expect("populate");
    s.commit().expect("populate commit");
}

fn render_frame(
    gs: &GemStone,
    args: &Args,
    frame: usize,
    committed: u64,
    fired: &[(Anomaly, Option<std::path::PathBuf>)],
) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let obs = &gs.telemetry().observatory;
    let _ = writeln!(
        out,
        "gemtop — GemStone live observatory · {} writer sessions (hot {}%) · frame {}/{}",
        args.threads, args.hot_pct, frame, args.frames
    );
    match obs.window(8) {
        Some(w) if w.samples >= 2 => {
            let _ = writeln!(out, "window {:.1}s ({} samples)", w.span_us as f64 / 1e6, w.samples);
            let _ = writeln!(
                out,
                "  txn/s {:8.1}   abort {:5.1}% ({} aborts)   stmts/s {:8.1}",
                w.commits_per_s, w.abort_pct, w.aborts, w.statements_per_s
            );
            let _ = writeln!(
                out,
                "  cache hit {:5.1}% ({} hits / {} misses)   fsyncs {} (p50 {}µs p99 {}µs)",
                w.cache_hit_pct,
                w.cache_hits,
                w.cache_misses,
                w.fsyncs,
                w.fsync_p50_us,
                w.fsync_p99_us
            );
        }
        _ => {
            let _ = writeln!(out, "window: warming up ({} samples)", obs.len());
        }
    }
    let snap = gs.database().metrics_snapshot();
    let p99 = |name: &str| snap.histogram(name).map(|h| h.quantile(0.99)).unwrap_or(0);
    let _ = writeln!(
        out,
        "commit phases p99 (µs): snapshot-age {} · validation {} · safe-write {} · \
         fsync {} · publish {}",
        p99("commit.phase.snapshot_age_us"),
        p99("commit.phase.validation_us"),
        p99("commit.phase.safe_write_us"),
        p99("commit.phase.fsync_us"),
        p99("commit.phase.publish_us")
    );
    let shards: Vec<String> = (0..64)
        .filter_map(|i| {
            let h = snap.counter(&format!("storage.cache.shard{i}.hits"));
            let m = snap.counter(&format!("storage.cache.shard{i}.misses"));
            if h + m == 0 {
                None
            } else {
                Some(format!("s{i} {:.0}%", h as f64 / (h + m) as f64 * 100.0))
            }
        })
        .collect();
    if !shards.is_empty() {
        let _ = writeln!(out, "cache shards: {}", shards.join("  "));
    }
    let c = gs.database().conflict_stats();
    let _ = writeln!(
        out,
        "conflicts: {} total (overlap {}, watermark {}) · {} committed increments",
        c.total(),
        c.overlap,
        c.watermark,
        committed
    );
    let heat = |pairs: &[(u64, u64)], what: &str| {
        pairs.iter().take(6).map(|(k, n)| format!("{what} {k} ×{n}")).collect::<Vec<_>>().join(", ")
    };
    if !c.by_object.is_empty() {
        let _ = writeln!(out, "  top conflict objects: {}", heat(&c.by_object, "goop"));
    }
    if !c.by_track.is_empty() {
        let _ = writeln!(out, "  top conflict tracks:  {}", heat(&c.by_track, "track"));
    }
    let active = obs.active_anomalies();
    if active.is_empty() && fired.is_empty() {
        let _ = writeln!(out, "anomalies: none");
    } else {
        let _ = writeln!(out, "anomalies: active [{}]", active.join(", "));
        for (a, bundle) in fired {
            let _ = writeln!(
                out,
                "  NEW {} — {}{}",
                a.slug(),
                a.describe(),
                bundle.as_ref().map(|p| format!(" (bundle: {})", p.display())).unwrap_or_default()
            );
        }
    }
    out
}

fn main() {
    let args = parse_args();
    let gs = GemStone::in_memory();
    populate(&gs);
    gs.database().enable_observatory(ObservatoryConfig {
        interval_us: args.interval_ms.saturating_mul(1000) / 2,
        ..ObservatoryConfig::default()
    });

    let stop = Arc::new(AtomicBool::new(false));
    let committed = Arc::new(AtomicU64::new(0));
    let mut workers = Vec::new();
    for t in 0..args.threads {
        let mut s = gs.login("system").expect("login");
        let stop = stop.clone();
        let committed = committed.clone();
        let hot_pct = args.hot_pct;
        let per = ((ACCOUNTS - HOT) / args.threads.max(1)).max(1);
        workers.push(std::thread::spawn(move || {
            let mut rng = Rng(0xdead_beef + t as u64);
            while !stop.load(Ordering::Relaxed) {
                let k = if rng.next() % 100 < hot_pct {
                    rng.next() as usize % HOT
                } else {
                    HOT + (t * per + rng.next() as usize % per) % (ACCOUNTS - HOT)
                };
                s.run(&format!(
                    "(Accounts at: {k}) at: #bal put: (((Accounts at: {k}) at: #bal) + 1)"
                ))
                .expect("increment");
                std::thread::yield_now();
                if s.commit().is_ok() {
                    committed.fetch_add(1, Ordering::Relaxed);
                }
            }
        }));
    }

    let mut last_frame = String::new();
    for frame in 1..=args.frames {
        std::thread::sleep(std::time::Duration::from_millis(args.interval_ms));
        let fired = gs.database().observatory_tick();
        last_frame = render_frame(&gs, &args, frame, committed.load(Ordering::Relaxed), &fired);
        if !args.capture {
            // Clear + home, like top(1).
            print!("\x1b[2J\x1b[H{last_frame}");
            use std::io::Write as _;
            std::io::stdout().flush().ok();
        }
    }
    stop.store(true, Ordering::Relaxed);
    for w in workers {
        w.join().expect("worker");
    }
    if args.capture {
        print!("{last_frame}");
    } else {
        println!();
    }
}
