//! The diagnostic doctor: turn a flight-recorder journal directory into a
//! rendered diagnostic bundle — track heat map with the clustering-locality
//! score, the cache hit-rate-vs-size replay sweep, the slow-statement log,
//! and the recovery report if one was journaled.
//!
//! ```sh
//! cargo run -p gemstone-bench --bin doctor --release -- <journal-dir>
//! cargo run -p gemstone-bench --bin doctor --release -- <journal-dir> --out bundle.json
//! ```
//!
//! The same analysis runs automatically inside the database on structured
//! failures (`Database::capture_bundle`); this binary is the offline path —
//! point it at the segments a crashed or remote process left behind.

use gemstone_telemetry::{DiagnosticBundle, Journal};
use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut dir: Option<&str> = None;
    let mut out: Option<&str> = None;
    let mut reason = "doctor";
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => match it.next() {
                Some(p) => out = Some(p),
                None => return usage("--out needs a file path"),
            },
            "--reason" => match it.next() {
                Some(r) => reason = r,
                None => return usage("--reason needs a value"),
            },
            "--help" | "-h" => return usage(""),
            other if dir.is_none() => dir = Some(other),
            other => return usage(&format!("unexpected argument {other:?}")),
        }
    }
    let Some(dir) = dir else {
        return usage("missing journal directory");
    };

    let readout = match Journal::read_from(Path::new(dir)) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("doctor: {e}");
            return ExitCode::FAILURE;
        }
    };
    // No live registry offline: the bundle's "replayed" section IS the
    // authoritative reconstruction (replay determinism is CI-enforced).
    let bundle = DiagnosticBundle::build(&readout, None, reason);
    print!("{}", bundle.render());
    if let Some(path) = out {
        if let Err(e) = std::fs::write(path, bundle.to_json()) {
            eprintln!("doctor: could not write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("bundle JSON written to {path}");
    }
    if bundle.complete {
        ExitCode::SUCCESS
    } else {
        // Rotation dropped the oldest segments: the numbers are a suffix of
        // history, not the whole run. Signal it for scripted callers.
        eprintln!("doctor: journal incomplete (rotation dropped early segments)");
        ExitCode::FAILURE
    }
}

fn usage(err: &str) -> ExitCode {
    if !err.is_empty() {
        eprintln!("doctor: {err}");
    }
    eprintln!("usage: doctor <journal-dir> [--out <bundle.json>] [--reason <label>]");
    if err.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
