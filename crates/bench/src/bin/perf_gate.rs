//! The perf-trajectory gate: diff a freshly generated `BENCH_PR5.json`
//! against the committed snapshot and fail CI when the counted performance
//! model drifts.
//!
//! ```sh
//! cargo run -p gemstone-bench --bin report --release -- --trajectory-only
//! cargo run -p gemstone-bench --bin perf_gate --release -- BENCH_PR5.committed.json BENCH_PR5.json
//! ```
//!
//! Gate rules (counts are deterministic; wall time is not):
//! - every record in the committed file must exist in the fresh file
//!   (matched by `"id"`) — a missing record fails;
//! - string fields (plan shapes) must match exactly;
//! - numeric fields must agree within `max(8, 10%)` of the committed
//!   value — headroom for environmental jitter, tight enough to catch a
//!   plan regression or a counter leak;
//! - fields ending in `_us` / `_ns` and fields prefixed `info_` are
//!   informational only (wall-clock or otherwise nondeterministic);
//! - a committed field `floor_X` / `ceil_X` bounds the fresh record's
//!   field `X` from below / above instead of diffing it — how wall-derived
//!   results (thread-scaling ratios, contended abort rates) get enforced
//!   without flaking on exact values;
//! - records only in the fresh file are reported but do not fail (new
//!   experiments land before their snapshot is re-committed).

use gemstone_telemetry::{parse_flat, FlatObject, JsonValue};
use std::collections::BTreeMap;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [committed_path, fresh_path] = args.as_slice() else {
        eprintln!("usage: perf_gate <committed.json> <fresh.json>");
        return ExitCode::FAILURE;
    };
    let committed = match load_trajectory(committed_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("perf_gate: {committed_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let fresh = match load_trajectory(fresh_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("perf_gate: {fresh_path}: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut failures = 0usize;
    let mut checks = 0usize;
    for (id, want) in &committed {
        let Some(got) = fresh.get(id) else {
            println!("FAIL {id}: record missing from fresh run");
            failures += 1;
            continue;
        };
        for key in want.keys() {
            if let Some(target) = key.strip_prefix("floor_").or_else(|| key.strip_prefix("ceil_")) {
                checks += 1;
                if let Some(msg) = bound_violation(key, target, want.get(key), got.get(target)) {
                    println!("FAIL {id}: {msg}");
                    failures += 1;
                }
                continue;
            }
            if key == "id" || is_informational(key) {
                continue;
            }
            checks += 1;
            match (want.get(key), got.get(key)) {
                (Some(w), Some(g)) => {
                    if let Some(msg) = field_drift(key, w, g) {
                        println!("FAIL {id}: {msg}");
                        failures += 1;
                    }
                }
                (_, None) => {
                    println!("FAIL {id}: field {key:?} missing from fresh record");
                    failures += 1;
                }
                (None, _) => unreachable!("key came from this record"),
            }
        }
    }
    for id in fresh.keys() {
        if !committed.contains_key(id) {
            println!("note {id}: new record not yet in the committed trajectory");
        }
    }

    println!("perf gate: {} records, {checks} gated fields, {failures} failures", committed.len());
    if failures == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Wall-clock and `info_`-prefixed fields ride along for humans; only
/// counts (and explicit `floor_`/`ceil_` bounds) are gated.
fn is_informational(key: &str) -> bool {
    key.ends_with("_us") || key.ends_with("_ns") || key.ends_with("_ms") || key.starts_with("info_")
}

/// `Some(message)` when the fresh record's `target` field violates the
/// committed bound named `key` (`floor_X` ⇒ fresh X ≥ bound; `ceil_X` ⇒
/// fresh X ≤ bound).
fn bound_violation(
    key: &str,
    target: &str,
    bound: Option<&JsonValue>,
    fresh: Option<&JsonValue>,
) -> Option<String> {
    let Some(JsonValue::Num(b)) = bound else {
        return Some(format!("bound {key:?} is not numeric"));
    };
    let Some(JsonValue::Num(f)) = fresh else {
        return Some(format!("{key}: fresh record has no numeric field {target:?}"));
    };
    if key.starts_with("floor_") && f < b {
        return Some(format!("{target} = {f}, below committed floor {b}"));
    }
    if key.starts_with("ceil_") && f > b {
        return Some(format!("{target} = {f}, above committed ceiling {b}"));
    }
    None
}

/// `Some(message)` when the fresh value drifts outside the gate.
fn field_drift(key: &str, want: &JsonValue, got: &JsonValue) -> Option<String> {
    match (want, got) {
        (JsonValue::Num(w), JsonValue::Num(g)) => {
            let tolerance = (w.abs() / 10).max(8);
            let delta = (g - w).abs();
            (delta > tolerance).then(|| {
                format!("{key} = {g}, committed {w} (|Δ|={delta} > max(8, 10%)={tolerance})")
            })
        }
        (w, g) if w == g => None,
        (w, g) => Some(format!("{key} = {g:?}, committed {w:?}")),
    }
}

/// Parse a trajectory file: a JSON array with one flat object per line
/// (exactly what `report --trajectory-only` writes).
fn load_trajectory(path: &str) -> Result<BTreeMap<String, FlatObject>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    let mut records = BTreeMap::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim().trim_end_matches(',');
        if line.is_empty() || line == "[" || line == "]" {
            continue;
        }
        let obj = parse_flat(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        let id = obj.str("id").map_err(|e| format!("line {}: {e}", lineno + 1))?;
        if records.insert(id.clone(), obj).is_some() {
            return Err(format!("duplicate record id {id:?}"));
        }
    }
    if records.is_empty() {
        return Err("no records found".into());
    }
    Ok(records)
}
