//! B10: the plan-trajectory benchmark behind `BENCH_PR10.json`.
//!
//! Two deterministic planner experiments, self-enforcing and then gated by
//! `perf_gate` against the committed snapshot:
//!
//! * **skewed 3-way join** — the acceptance skew from the planner suite:
//!   declaration order joins the explosive Regions pair first, the
//!   cost-based planner reorders the selective Customers join ahead of it.
//!   The record carries both canonical plan strings (exact-matched by the
//!   gate — a silent plan change fails CI) plus the exact row-visit
//!   counters proving the reorder is cheaper.
//! * **drift → replan** — statistics trained on a tiny Orders set, frozen,
//!   the set grown 100x with non-matching keys. Execution 1 must journal
//!   exactly one `PlanDrift`; execution 2 must re-plan (`replan = true`)
//!   to a different, cheaper plan. Both plan strings and both visit
//!   counts land in the record.
//!
//! All gated fields are counted, not timed: the planner prices plans in
//! row visits and the engine counts them exactly, so the gate tolerates
//! zero nondeterminism.
//!
//! ```sh
//! cargo run -p gemstone-bench --bin plan_bench --release   # writes BENCH_PR10.json
//! cargo run -p gemstone-bench --bin perf_gate --release -- BENCH_PR10.committed.json BENCH_PR10.json
//! ```

use gemstone::{GemStone, Session};
use gemstone_calculus::{CmpOp, Pred, Query, Range, Term, VarId};
use gemstone_object::ElemName;
use gemstone_opal::OpalWorld;

/// Total row traffic the last query caused: rows scanned + directory rows
/// visited + hash build/probe work — the currency plans are priced in.
fn row_visits(s: &Session) -> u64 {
    let p = s.last_plan_stats().expect("a planned query");
    p.rows_scanned + p.index_rows + p.hash_builds + p.hash_probes
}

/// The acceptance skew: 40 orders over 5 customers (selective join) all
/// bunched into one region shared by 5 region rows (explosive join), every
/// join path indexed. Declaration order puts the explosive join first.
fn build_skew(s: &mut Session) -> Query {
    s.run(
        "| t | Orders := Bag new. Customers := Bag new. Regions := Bag new.
         1 to: 8 do: [:r |
             1 to: 5 do: [:c |
                 t := Dictionary new.
                 t at: #Cust put: c. t at: #Region put: 7.
                 Orders add: t]].
         1 to: 5 do: [:c |
             t := Dictionary new. t at: #Cust put: c. Customers add: t].
         1 to: 5 do: [:i |
             t := Dictionary new. t at: #Region put: 7. Regions add: t].",
    )
    .expect("populate");
    s.commit().expect("commit data");
    s.run("System createIndexOn: Orders path: #Cust").expect("index");
    s.run("System createIndexOn: Orders path: #Region").expect("index");
    s.run("System createIndexOn: Customers path: #Cust").expect("index");
    s.run("System createIndexOn: Regions path: #Region").expect("index");
    s.commit().expect("commit indexes");

    let (o_sym, r_sym, c_sym) = (s.intern("Orders"), s.intern("Regions"), s.intern("Customers"));
    let o = s.get_global(o_sym).expect("Orders");
    let r = s.get_global(r_sym).expect("Regions");
    let c = s.get_global(c_sym).expect("Customers");
    let cust = ElemName::Sym(s.intern("Cust"));
    let region = ElemName::Sym(s.intern("Region"));
    let label = s.intern("Cust");
    let (v0, v1, v2) = (VarId(0), VarId(1), VarId(2));
    Query {
        result: vec![(label, Term::Path(v0, vec![cust]))],
        ranges: vec![
            Range { var: v0, domain: Term::Const(o) },
            Range { var: v1, domain: Term::Const(r) },
            Range { var: v2, domain: Term::Const(c) },
        ],
        pred: Pred::Cmp(Term::Path(v0, vec![region]), CmpOp::Eq, Term::Path(v1, vec![region]))
            .and(Pred::Cmp(Term::Path(v0, vec![cust]), CmpOp::Eq, Term::Path(v2, vec![cust]))),
    }
}

fn main() {
    let mut failures = 0usize;
    let mut records: Vec<String> = Vec::new();

    // ------------------------------------------- skewed 3-way join order
    {
        let gs = GemStone::in_memory();
        let mut s = gs.login("system").expect("login");
        let q = build_skew(&mut s);

        let fixed_rows = s.query(&q).expect("fixed plan").len();
        let fixed = s.last_decision().expect("decision").clone();
        let fixed_visits = row_visits(&s);

        let trained = gs.database().enable_stats().expect("enable stats");
        let chosen_rows = s.query(&q).expect("cost-based plan").len();
        let chosen = s.last_decision().expect("decision").clone();
        let chosen_visits = row_visits(&s);
        let stats = s.last_plan_stats().expect("plan stats");

        println!(
            "skew3: fixed {fixed_visits} visits [{}] vs cost-based {chosen_visits} visits [{}]",
            fixed.canon, chosen.canon
        );
        if fixed_rows != 200 || chosen_rows != 200 {
            println!("FAIL skew3: expected 200 rows, got {fixed_rows}/{chosen_rows}");
            failures += 1;
        }
        if !chosen.cost_based || chosen.canon == fixed.canon {
            println!("FAIL skew3: statistics did not change the plan");
            failures += 1;
        }
        if chosen_visits >= fixed_visits {
            println!(
                "FAIL skew3: cost-based order ({chosen_visits}) must beat declaration \
                 order ({fixed_visits})"
            );
            failures += 1;
        }
        records.push(format!(
            "{{\"id\": \"plan-skew3\", \"rows\": {chosen_rows}, \"stats_trained\": {trained}, \
             \"fixed_plan\": \"{}\", \"chosen_plan\": \"{}\", \"fixed_visits\": {fixed_visits}, \
             \"chosen_visits\": {chosen_visits}, \"hash_builds\": {}, \"hash_probes\": {}, \
             \"alternatives\": {}, \"cost_based\": 1}}",
            fixed.canon,
            chosen.canon,
            stats.hash_builds,
            stats.hash_probes,
            chosen.alternatives.len()
        ));
    }

    // ----------------------------------------------------- drift → replan
    {
        let gs = GemStone::in_memory();
        let mut s = gs.login("system").expect("login");
        s.run(
            "| t | Orders := Bag new. Customers := Bag new.
             1 to: 4 do: [:c |
                 t := Dictionary new. t at: #Cust put: c. Orders add: t].
             1 to: 40 do: [:c |
                 t := Dictionary new. t at: #Cust put: c. Customers add: t].",
        )
        .expect("populate");
        s.commit().expect("commit");
        s.run("System createIndexOn: Orders path: #Cust").expect("index");
        s.run("System createIndexOn: Customers path: #Cust").expect("index");
        s.commit().expect("commit indexes");

        let (o_sym, c_sym) = (s.intern("Orders"), s.intern("Customers"));
        let o = s.get_global(o_sym).expect("Orders");
        let c = s.get_global(c_sym).expect("Customers");
        let cust = ElemName::Sym(s.intern("Cust"));
        let label = s.intern("Cust");
        let (v0, v1) = (VarId(0), VarId(1));
        let q = Query {
            result: vec![(label, Term::Path(v0, vec![cust]))],
            ranges: vec![
                Range { var: v0, domain: Term::Const(o) },
                Range { var: v1, domain: Term::Const(c) },
            ],
            pred: Pred::Cmp(Term::Path(v0, vec![cust]), CmpOp::Eq, Term::Path(v1, vec![cust])),
        };

        gs.database().enable_stats().expect("enable stats");
        gs.database().set_stats_maintenance(false);
        s.run(
            "| t | 1 to: 396 do: [:i |
                 t := Dictionary new. t at: #Cust put: i + 100. Orders add: t]",
        )
        .expect("grow");
        s.commit().expect("commit growth");

        let before = s.metrics();
        s.query_analyzed(&q).expect("stale plan");
        let stale = s.last_decision().expect("decision").clone();
        let stale_visits = row_visits(&s);
        let drifts = s.metrics().diff(&before).counter("calculus.plan.drift");

        let before = s.metrics();
        let rows = s.query_analyzed(&q).expect("fresh plan").len();
        let fresh = s.last_decision().expect("decision").clone();
        let fresh_visits = row_visits(&s);
        let replans = s.metrics().diff(&before).counter("calculus.plan.replans");

        println!(
            "drift: stale {stale_visits} visits [{}] → fresh {fresh_visits} visits [{}]",
            stale.canon, fresh.canon
        );
        if drifts != 1 || replans != 1 {
            println!("FAIL drift: expected 1 drift + 1 replan, got {drifts}/{replans}");
            failures += 1;
        }
        if !fresh.replan || fresh.canon == stale.canon || fresh_visits >= stale_visits {
            println!("FAIL drift: the re-plan must change the plan and do less work");
            failures += 1;
        }
        records.push(format!(
            "{{\"id\": \"plan-drift-replan\", \"rows\": {rows}, \"drift_events\": {drifts}, \
             \"replans\": {replans}, \"stale_plan\": \"{}\", \"fresh_plan\": \"{}\", \
             \"stale_visits\": {stale_visits}, \"fresh_visits\": {fresh_visits}}}",
            stale.canon, fresh.canon
        ));
    }

    let body = records.join(",\n  ");
    std::fs::write("BENCH_PR10.json", format!("[\n  {body}\n]\n")).expect("write BENCH_PR10.json");
    println!("wrote BENCH_PR10.json ({} records)", records.len());

    if failures > 0 {
        println!("plan_bench: {failures} FAILURES");
        std::process::exit(1);
    }
    println!("plan_bench: all invariants hold");
}
