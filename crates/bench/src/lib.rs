//! Shared workload builders for the GemStone benchmark harness.
//!
//! Every experiment in DESIGN.md §3 maps either to a Criterion bench in
//! `benches/` (latency-shaped results) or to a counted series printed by
//! `src/bin/report.rs` (fault counts, abort rates, disk traffic — the
//! quantities the paper's architectural claims are about).

use gemstone::{GemStone, Session, StoreConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A deterministic RNG for workloads.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// A fresh in-memory GemStone plus a logged-in session.
pub fn fresh() -> (GemStone, Session) {
    let gs = GemStone::create(StoreConfig::default()).expect("db");
    let s = gs.login("system").expect("login");
    (gs, s)
}

/// Populate `Employees` (a committed Set global) with `n` synthetic staff
/// carrying `Salary`, `Dept` and `Name` elements. Returns the salary values
/// used, in insertion order.
pub fn build_employees(s: &mut Session, n: usize) -> Vec<i64> {
    let mut r = rng(42);
    s.run("Employees := Set new").expect("create");
    let mut salaries = Vec::with_capacity(n);
    for chunk in (0..n).collect::<Vec<_>>().chunks(500) {
        let mut src = String::from("| e |\n");
        for &i in chunk {
            let salary = 18_000 + r.gen_range(0..20_000) as i64;
            salaries.push(salary);
            src.push_str(&format!(
                "e := Dictionary new. e at: #Salary put: {salary}. \
                 e at: #Dept put: {}. e at: #Name put: 'emp{i}'. Employees add: e.\n",
                i % 7
            ));
        }
        s.run(&src).expect("populate");
        s.commit().expect("commit");
    }
    salaries
}

/// Build an `Accounts` dictionary of `n` accounts for contention workloads.
pub fn build_accounts(s: &mut Session, n: usize) {
    for chunk in (0..n).collect::<Vec<_>>().chunks(500) {
        let mut src = String::from("| a |\n");
        if chunk[0] == 0 {
            src.push_str("Accounts := Dictionary new.\n");
        }
        for &i in chunk {
            src.push_str(&format!(
                "a := Dictionary new. a at: #balance put: 1000. Accounts at: {i} put: a.\n"
            ));
        }
        s.run(&src).expect("accounts");
        s.commit().expect("commit");
    }
}
