//! Shared workload builders for the GemStone benchmark harness.
//!
//! Every experiment in DESIGN.md §3 maps either to a Criterion bench in
//! `benches/` (latency-shaped results) or to a counted series printed by
//! `src/bin/report.rs` (fault counts, abort rates, disk traffic — the
//! quantities the paper's architectural claims are about).

use gemstone::{ElemName, GemStone, Session, StoreConfig};
use gemstone_calculus::{CmpOp, Pred, Query, Range, Term, VarId};
use gemstone_opal::OpalWorld;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A deterministic RNG for workloads.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// A fresh in-memory GemStone plus a logged-in session.
pub fn fresh() -> (GemStone, Session) {
    let gs = GemStone::create(StoreConfig::default()).expect("db");
    let s = gs.login("system").expect("login");
    (gs, s)
}

/// Populate `Employees` (a committed Set global) with `n` synthetic staff
/// carrying `Salary`, `Dept` and `Name` elements. Returns the salary values
/// used, in insertion order.
pub fn build_employees(s: &mut Session, n: usize) -> Vec<i64> {
    let mut r = rng(42);
    s.run("Employees := Set new").expect("create");
    let mut salaries = Vec::with_capacity(n);
    for chunk in (0..n).collect::<Vec<_>>().chunks(500) {
        let mut src = String::from("| e |\n");
        for &i in chunk {
            let salary = 18_000 + r.gen_range(0..20_000) as i64;
            salaries.push(salary);
            src.push_str(&format!(
                "e := Dictionary new. e at: #Salary put: {salary}. \
                 e at: #Dept put: {}. e at: #Name put: 'emp{i}'. Employees add: e.\n",
                i % 7
            ));
        }
        s.run(&src).expect("populate");
        s.commit().expect("commit");
    }
    salaries
}

/// Populate two independent committed sets for the join experiments:
/// `Orders` (`n` elements, each with `#Part`/`#Qty`) and `Parts` (`m`
/// elements with distinct `#PartNo` plus `#Weight`). Order `i` references
/// part `i % m`, so every order joins with exactly one part.
pub fn build_join_collections(s: &mut Session, n: usize, m: usize) {
    s.run("Orders := Set new. Parts := Set new").expect("create");
    for chunk in (0..n).collect::<Vec<_>>().chunks(500) {
        let mut src = String::from("| o |\n");
        for &i in chunk {
            src.push_str(&format!(
                "o := Dictionary new. o at: #Part put: {}. o at: #Qty put: {}. Orders add: o.\n",
                i % m,
                1 + (i % 9)
            ));
        }
        s.run(&src).expect("orders");
        s.commit().expect("commit");
    }
    for chunk in (0..m).collect::<Vec<_>>().chunks(500) {
        let mut src = String::from("| p |\n");
        for &i in chunk {
            src.push_str(&format!(
                "p := Dictionary new. p at: #PartNo put: {i}. p at: #Weight put: {}. Parts add: p.\n",
                10 + (i % 90)
            ));
        }
        s.run(&src).expect("parts");
        s.commit().expect("commit");
    }
}

/// The calculus equi-join over [`build_join_collections`]'s sets:
/// `{(o!Qty, p!Weight) | o ∈ Orders, p ∈ Parts, o!Part = p!PartNo}`.
/// The two ranges are independent and linked only by the equality, so the
/// planner is free to choose a hash join.
pub fn join_query(s: &mut Session) -> Query {
    let orders_sym = s.intern("Orders");
    let parts_sym = s.intern("Parts");
    let orders = s.get_global(orders_sym).expect("Orders global");
    let parts = s.get_global(parts_sym).expect("Parts global");
    let part = ElemName::Sym(s.intern("Part"));
    let part_no = ElemName::Sym(s.intern("PartNo"));
    let qty = s.intern("Qty");
    let weight = s.intern("Weight");
    let (v0, v1) = (VarId(0), VarId(1));
    Query {
        result: vec![
            (qty, Term::Path(v0, vec![ElemName::Sym(qty)])),
            (weight, Term::Path(v1, vec![ElemName::Sym(weight)])),
        ],
        ranges: vec![
            Range { var: v0, domain: Term::Const(orders) },
            Range { var: v1, domain: Term::Const(parts) },
        ],
        pred: Pred::Cmp(Term::Path(v0, vec![part]), CmpOp::Eq, Term::Path(v1, vec![part_no])),
    }
}

/// Build an `Accounts` dictionary of `n` accounts for contention workloads.
pub fn build_accounts(s: &mut Session, n: usize) {
    for chunk in (0..n).collect::<Vec<_>>().chunks(500) {
        let mut src = String::from("| a |\n");
        if chunk[0] == 0 {
            src.push_str("Accounts := Dictionary new.\n");
        }
        for &i in chunk {
            src.push_str(&format!(
                "a := Dictionary new. a at: #balance put: 1000. Accounts at: {i} put: a.\n"
            ));
        }
        s.run(&src).expect("accounts");
        s.commit().expect("commit");
    }
}
