//! Property tests for the association-table invariants of §6.

use gemstone_temporal::{History, TxnTime};
use proptest::prelude::*;

fn t(n: u64) -> TxnTime {
    TxnTime::from_ticks(n)
}

/// An arbitrary committed history: strictly increasing times with values.
fn committed_history() -> impl Strategy<Value = History<u64>> {
    prop::collection::vec(1u64..50, 0..40).prop_map(|gaps| {
        let mut time = 0u64;
        gaps.iter()
            .enumerate()
            .map(|(i, g)| {
                time += g;
                (t(time), i as u64)
            })
            .collect()
    })
}

proptest! {
    /// as-of returns the association with the greatest time <= t — i.e. the
    /// same answer a naive backwards scan gives, for every probe time.
    #[test]
    fn as_of_matches_naive_scan(h in committed_history(), probe in 0u64..3000) {
        let naive = h
            .entries()
            .iter()
            .rev()
            .find(|e| e.time <= t(probe))
            .map(|e| e.value);
        prop_assert_eq!(h.as_of(t(probe)).copied(), naive);
    }

    /// Committing a pending write makes it visible exactly from the commit
    /// time onwards and never perturbs older states.
    #[test]
    fn commit_changes_only_the_future(h in committed_history(), v in 0u64..1000, probe in 0u64..3000) {
        let last = h.entries().last().map(|e| e.time.ticks()).unwrap_or(0);
        let commit_at = t(last + 1);
        let before = h.as_of(t(probe)).copied();
        let mut h2 = h.clone();
        h2.write_pending(v);
        h2.commit_pending(commit_at);
        let after = h2.as_of(t(probe)).copied();
        if t(probe) < commit_at {
            prop_assert_eq!(after, before, "past states are immutable");
        } else {
            prop_assert_eq!(after, Some(v));
        }
    }

    /// write_pending + rollback is the identity on observable state.
    #[test]
    fn rollback_is_identity(h in committed_history(), v in 0u64..1000, probe in 0u64..3000) {
        let mut h2 = h.clone();
        h2.write_pending(v);
        h2.rollback_pending();
        prop_assert_eq!(h2.as_of(t(probe)), h.as_of(t(probe)));
        prop_assert_eq!(h2.current(), h.current());
        prop_assert_eq!(h2.committed_len(), h.committed_len());
    }

    /// Pruning at time k preserves every state at or after k.
    #[test]
    fn prune_preserves_visible_states(h in committed_history(), cut in 0u64..2500, probe in 0u64..3000) {
        let mut h2 = h.clone();
        let _ = h2.prune_before(t(cut));
        if probe >= cut {
            prop_assert_eq!(h2.as_of(t(probe)), h.as_of(t(probe)));
        }
    }

    /// committed_len never counts the pending entry; current sees it.
    #[test]
    fn pending_bookkeeping(h in committed_history(), v in 0u64..1000) {
        let mut h2 = h.clone();
        let before = h2.committed_len();
        h2.write_pending(v);
        prop_assert_eq!(h2.committed_len(), before);
        prop_assert!(h2.is_dirty());
        prop_assert_eq!(h2.current(), Some(&v));
    }
}
