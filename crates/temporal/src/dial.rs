//! The OPAL time dial (§5.4).
//!
//! "In OPAL, we have eschewed the !-notation for navigating through object
//! histories in favor of a time dial. … Setting the time dial to time T is
//! the same as appending @T to each component in a path expression. A useful
//! feature of the time dial is the system variable SafeTime."

use crate::time::TxnTime;

/// A session's time dial. When set, every fetch the Object Manager performs
/// on behalf of the session is conducted in the database state at the dialed
/// time; when unset, fetches see the current state (plus the session's own
/// uncommitted writes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TimeDial {
    setting: Option<TxnTime>,
}

impl TimeDial {
    /// A dial reading the present.
    pub const fn now() -> TimeDial {
        TimeDial { setting: None }
    }

    /// A dial fixed at `t`.
    pub const fn at(t: TxnTime) -> TimeDial {
        TimeDial { setting: Some(t) }
    }

    /// Set the dial to `t`. Pending is not a database state.
    pub fn set(&mut self, t: TxnTime) {
        assert!(!t.is_pending());
        self.setting = Some(t);
    }

    /// Return the dial to the present.
    pub fn reset(&mut self) {
        self.setting = None;
    }

    /// The dialed time, or `None` when reading the present.
    pub fn setting(&self) -> Option<TxnTime> {
        self.setting
    }

    /// True when the dial is set to a past state. A session whose dial is in
    /// the past is read-only: past states are immutable.
    pub fn in_past(&self) -> bool {
        self.setting.is_some()
    }

    /// Resolve an explicit `@T` against this dial: an explicit time on a path
    /// component overrides the dial for that component (§5.3.2 examples mix
    /// both).
    pub fn resolve(&self, explicit: Option<TxnTime>) -> Option<TxnTime> {
        explicit.or(self.setting)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(n: u64) -> TxnTime {
        TxnTime::from_ticks(n)
    }

    #[test]
    fn defaults_to_now() {
        let d = TimeDial::default();
        assert!(!d.in_past());
        assert_eq!(d.resolve(None), None);
    }

    #[test]
    fn set_and_reset() {
        let mut d = TimeDial::now();
        d.set(t(7));
        assert!(d.in_past());
        assert_eq!(d.setting(), Some(t(7)));
        d.reset();
        assert!(!d.in_past());
    }

    #[test]
    fn explicit_time_overrides_dial() {
        let d = TimeDial::at(t(7));
        assert_eq!(d.resolve(Some(t(10))), Some(t(10)));
        assert_eq!(d.resolve(None), Some(t(7)));
    }

    #[test]
    #[should_panic]
    fn cannot_dial_pending() {
        let mut d = TimeDial::now();
        d.set(TxnTime::PENDING);
    }
}
