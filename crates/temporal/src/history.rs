//! The per-element association table.
//!
//! §6 of the paper: "An element is represented as an element name and a table
//! of associations. The associations are pairs of transaction times and
//! object pointers, each representing that the element acquired the object as
//! its value at the time given by the transaction time. The mapping from
//! arbitrary times to value for an element can easily be realized from this
//! table."

use crate::time::TxnTime;

/// One association: the element acquired `value` at `time`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistoryEntry<V> {
    pub time: TxnTime,
    pub value: V,
}

/// Threshold beyond which as-of lookups use binary search instead of a
/// backwards linear scan. §6 notes that "a directory may be interposed
/// between the object header and the participating elements … useful when an
/// object has a long history"; the sorted association table *is* that
/// directory, and short histories avoid its overhead. Benchmark C3 shows the
/// knee.
const BSEARCH_THRESHOLD: usize = 8;

/// The history of a single element: an association table ordered by
/// transaction time, with at most one trailing *pending* (uncommitted) entry.
///
/// Invariants:
/// * committed entries are strictly increasing in time;
/// * at most one entry has `TxnTime::PENDING`, and it is last;
/// * a history is never empty once written to.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct History<V> {
    entries: Vec<HistoryEntry<V>>,
}

impl<V> History<V> {
    /// An empty history (an element that has never existed).
    pub const fn new() -> History<V> {
        History { entries: Vec::new() }
    }

    /// A history born with one committed value at `time`.
    pub fn with_initial(time: TxnTime, value: V) -> History<V> {
        assert!(!time.is_pending());
        History { entries: vec![HistoryEntry { time, value }] }
    }

    /// Record an uncommitted write. If an uncommitted write is already
    /// pending, it is *replaced*: within one transaction only the final value
    /// is recorded, because transaction time stamps the commit, not each
    /// store (§5.3.1).
    pub fn write_pending(&mut self, value: V) {
        match self.entries.last_mut() {
            Some(last) if last.time.is_pending() => last.value = value,
            _ => self.entries.push(HistoryEntry { time: TxnTime::PENDING, value }),
        }
    }

    /// Install a committed value directly at `time` (used by the Linker when
    /// applying a validated transaction's write set, and by bootstrap).
    ///
    /// Panics if `time` does not advance the history or a pending entry is in
    /// the way — the Transaction Manager's validation must prevent both.
    pub fn write_committed(&mut self, time: TxnTime, value: V) {
        assert!(!time.is_pending());
        if let Some(last) = self.entries.last() {
            assert!(!last.time.is_pending(), "commit over a pending entry");
            assert!(
                last.time <= time,
                "history must advance: last {:?}, new {:?}",
                last.time,
                time
            );
            // Two writers in the same transaction group: last write wins.
            if last.time == time {
                self.entries.last_mut().unwrap().value = value;
                return;
            }
        }
        self.entries.push(HistoryEntry { time, value });
    }

    /// Stamp the pending entry (if any) with the commit time `time`.
    pub fn commit_pending(&mut self, time: TxnTime) {
        assert!(!time.is_pending());
        if let Some(last) = self.entries.last_mut() {
            if last.time.is_pending() {
                debug_assert!(
                    self.entries.len() < 2 || self.entries[self.entries.len() - 2].time < time
                );
                self.entries.last_mut().unwrap().time = time;
            }
        }
    }

    /// Discard the pending entry, if any (transaction abort).
    pub fn rollback_pending(&mut self) {
        if self.entries.last().is_some_and(|e| e.time.is_pending()) {
            self.entries.pop();
        }
    }

    /// The current value: the pending value if one exists, else the most
    /// recently committed value.
    pub fn current(&self) -> Option<&V> {
        self.entries.last().map(|e| &e.value)
    }

    /// Mutable access to the current value. This does **not** advance
    /// history: it is for values that are themselves containers with their
    /// own histories ("Objects themselves do not have time. Only their
    /// relationships with their elements are indexed by time", §5.3.2).
    pub fn current_mut(&mut self) -> Option<&mut V> {
        self.entries.last_mut().map(|e| &mut e.value)
    }

    /// The most recently committed value, ignoring any pending write.
    pub fn committed_current(&self) -> Option<&V> {
        let mut it = self.entries.iter().rev();
        match it.next() {
            Some(e) if e.time.is_pending() => it.next().map(|e| &e.value),
            Some(e) => Some(&e.value),
            None => None,
        }
    }

    /// The value the element had in the database state at time `t`: the value
    /// of the association with the greatest time `<= t`. Pending entries are
    /// invisible to as-of reads. `None` means the element did not yet exist.
    ///
    /// This is `E!Salary@T` from §5.3.2.
    pub fn as_of(&self, t: TxnTime) -> Option<&V> {
        let committed = match self.entries.last() {
            Some(e) if e.time.is_pending() => &self.entries[..self.entries.len() - 1],
            _ => &self.entries[..],
        };
        if committed.len() <= BSEARCH_THRESHOLD {
            return committed.iter().rev().find(|e| e.time <= t).map(|e| &e.value);
        }
        // partition_point: first index with time > t; the entry before it is
        // the association in force at t.
        let idx = committed.partition_point(|e| e.time <= t);
        if idx == 0 {
            None
        } else {
            Some(&committed[idx - 1].value)
        }
    }

    /// The time the current committed association began, if any.
    pub fn committed_since(&self) -> Option<TxnTime> {
        self.entries.iter().rev().find(|e| !e.time.is_pending()).map(|e| e.time)
    }

    /// True if an uncommitted write is pending.
    pub fn is_dirty(&self) -> bool {
        self.entries.last().is_some_and(|e| e.time.is_pending())
    }

    /// Number of committed associations.
    pub fn committed_len(&self) -> usize {
        let n = self.entries.len();
        if self.is_dirty() {
            n - 1
        } else {
            n
        }
    }

    /// True if the history holds no associations at all.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// All associations, oldest first (pending last if present).
    pub fn entries(&self) -> &[HistoryEntry<V>] {
        &self.entries
    }

    /// Drop committed associations strictly older than the one in force at
    /// `keep_from`. This is the database-administrator operation of §6:
    /// "A database administrator can explicitly move objects to other media
    /// … some objects in it may become temporarily or permanently
    /// inaccessible." Returns the pruned associations, oldest first, so the
    /// caller can archive them.
    pub fn prune_before(&mut self, keep_from: TxnTime) -> Vec<HistoryEntry<V>> {
        // Find the entry in force at keep_from; everything before it goes.
        let committed_len = self.committed_len();
        let idx = self.entries[..committed_len].partition_point(|e| e.time <= keep_from);
        let cut = idx.saturating_sub(1);
        self.entries.drain(..cut).collect()
    }
}

impl<V> FromIterator<(TxnTime, V)> for History<V> {
    /// Build a history from committed `(time, value)` pairs, oldest first.
    fn from_iter<I: IntoIterator<Item = (TxnTime, V)>>(iter: I) -> Self {
        let mut h = History::new();
        for (t, v) in iter {
            h.write_committed(t, v);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(n: u64) -> TxnTime {
        TxnTime::from_ticks(n)
    }

    #[test]
    fn empty_history() {
        let h: History<u32> = History::new();
        assert!(h.is_empty());
        assert_eq!(h.current(), None);
        assert_eq!(h.as_of(t(100)), None);
        assert_eq!(h.committed_len(), 0);
    }

    #[test]
    fn pending_write_then_commit() {
        let mut h = History::new();
        h.write_pending(10);
        assert!(h.is_dirty());
        assert_eq!(h.current(), Some(&10));
        assert_eq!(h.committed_current(), None);
        assert_eq!(h.as_of(t(99)), None, "pending invisible to as-of");
        h.commit_pending(t(5));
        assert!(!h.is_dirty());
        assert_eq!(h.as_of(t(5)), Some(&10));
        assert_eq!(h.as_of(t(4)), None);
    }

    #[test]
    fn two_writes_in_one_txn_collapse() {
        let mut h = History::new();
        h.write_pending(1);
        h.write_pending(2);
        h.commit_pending(t(3));
        assert_eq!(h.committed_len(), 1);
        assert_eq!(h.current(), Some(&2));
    }

    #[test]
    fn rollback_discards_pending_only() {
        let mut h = History::with_initial(t(1), 7);
        h.write_pending(8);
        h.rollback_pending();
        assert_eq!(h.current(), Some(&7));
        assert_eq!(h.committed_len(), 1);
        // rollback on a clean history is a no-op
        h.rollback_pending();
        assert_eq!(h.committed_len(), 1);
    }

    #[test]
    fn figure1_president_history() {
        // Figure 1: president is 'Ayn Rand' from t5, 'Milton Friedman' from t8.
        let mut h = History::new();
        h.write_committed(t(5), "Ayn Rand");
        h.write_committed(t(8), "Milton Friedman");
        assert_eq!(h.as_of(t(10)), Some(&"Milton Friedman"));
        assert_eq!(h.as_of(t(7)), Some(&"Ayn Rand"));
        assert_eq!(h.as_of(t(5)), Some(&"Ayn Rand"));
        assert_eq!(h.as_of(t(4)), None, "no president before t5");
        assert_eq!(h.current(), Some(&"Milton Friedman"));
        assert_eq!(h.committed_since(), Some(t(8)));
    }

    #[test]
    fn same_time_group_commit_last_write_wins() {
        let mut h = History::new();
        h.write_committed(t(3), 1);
        h.write_committed(t(3), 2);
        assert_eq!(h.committed_len(), 1);
        assert_eq!(h.current(), Some(&2));
    }

    #[test]
    #[should_panic(expected = "history must advance")]
    fn committed_writes_must_advance() {
        let mut h = History::new();
        h.write_committed(t(5), 1);
        h.write_committed(t(4), 2);
    }

    #[test]
    fn long_history_binary_search() {
        let mut h = History::new();
        for i in 1..=1000u64 {
            h.write_committed(t(i * 2), i);
        }
        assert_eq!(h.as_of(t(1)), None);
        assert_eq!(h.as_of(t(2)), Some(&1));
        assert_eq!(h.as_of(t(3)), Some(&1));
        assert_eq!(h.as_of(t(2000)), Some(&1000));
        assert_eq!(h.as_of(t(1999)), Some(&999));
        assert_eq!(h.as_of(t(777)), Some(&388)); // 777/2 = 388.5 -> time 776
    }

    #[test]
    fn as_of_sees_through_pending() {
        let mut h = History::with_initial(t(1), 10);
        h.write_pending(99);
        assert_eq!(h.as_of(t(1)), Some(&10));
        assert_eq!(h.committed_current(), Some(&10));
        assert_eq!(h.current(), Some(&99));
    }

    #[test]
    fn prune_keeps_state_at_cut() {
        let mut h: History<u64> = (1..=10u64).map(|i| (t(i * 10), i)).collect();
        let archived = h.prune_before(t(55)); // in force at 55: entry at t50
        assert_eq!(archived.len(), 4); // t10..t40 archived
        assert_eq!(h.as_of(t(55)), Some(&5));
        assert_eq!(h.as_of(t(100)), Some(&10));
        assert_eq!(h.as_of(t(15)), None, "archived past no longer visible");
    }

    #[test]
    fn from_iter_builds_committed() {
        let h: History<&str> = vec![(t(2), "a"), (t(8), "b")].into_iter().collect();
        assert_eq!(h.committed_len(), 2);
        assert_eq!(h.as_of(t(5)), Some(&"a"));
    }
}
