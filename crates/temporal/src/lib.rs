//! Transaction-time support for the GemStone data model (§5.3 of Copeland &
//! Maier, SIGMOD 1984).
//!
//! The paper replaces deletion with *object history*: every element of an
//! object maps its element name to a **table of associations** — pairs of
//! transaction times and values — rather than to a single value. This crate
//! provides the building blocks for that temporal extension:
//!
//! * [`TxnTime`] — a system-generated transaction timestamp. The paper argues
//!   (§5.3.1) for transaction time over event time because its semantics are
//!   application independent and it cannot be forged by users.
//! * [`Clock`] — the monotonic source of transaction times.
//! * [`History`] — the per-element association table, supporting writes that
//!   are *pending* until a transaction commits, current reads, and as-of
//!   reads (`E!Salary@T` in the paper's path syntax).
//! * [`TimeDial`] — the OPAL "time dial": setting it to `T` is the same as
//!   appending `@T` to each component of a path expression (§5.4).

mod dial;
mod history;
mod time;

pub use dial::TimeDial;
pub use history::{History, HistoryEntry};
pub use time::{Clock, TxnTime};
