//! Transaction timestamps and the clock that issues them.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// A transaction time: the moment an update was recorded in the database.
///
/// Transaction times are totally ordered and issued by the system at commit
/// (§5.3.1: "transaction time is system-generated, and cannot be modified by
/// users, \[so\] it provides high integrity"). The value `u64::MAX` is reserved
/// internally for the *pending* sentinel used by uncommitted writes inside a
/// session workspace.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TxnTime(u64);

impl TxnTime {
    /// The time before any transaction has committed. The bootstrap image is
    /// stamped with this time.
    pub const EPOCH: TxnTime = TxnTime(0);

    /// Sentinel stamped on writes whose transaction has not yet committed.
    /// Greater than every real time, so a pending entry always sorts last in
    /// a history.
    pub const PENDING: TxnTime = TxnTime(u64::MAX);

    /// Construct a transaction time from its raw tick count.
    pub const fn from_ticks(t: u64) -> TxnTime {
        TxnTime(t)
    }

    /// The raw tick count.
    pub const fn ticks(self) -> u64 {
        self.0
    }

    /// True for the `PENDING` sentinel.
    pub const fn is_pending(self) -> bool {
        self.0 == u64::MAX
    }

    /// The latest time strictly before this one. Saturates at `EPOCH`.
    pub const fn pred(self) -> TxnTime {
        TxnTime(self.0.saturating_sub(1))
    }

    /// The earliest time strictly after this one. Panics on `PENDING`.
    pub fn succ(self) -> TxnTime {
        assert!(!self.is_pending(), "PENDING has no successor");
        TxnTime(self.0 + 1)
    }
}

impl fmt::Debug for TxnTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_pending() {
            write!(f, "t<pending>")
        } else {
            write!(f, "t{}", self.0)
        }
    }
}

impl fmt::Display for TxnTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// The monotonic transaction clock.
///
/// One clock is shared by the whole system (it lives in the Transaction
/// Manager, which §6 says "is shared by all invocations of the Object
/// Manager"). Ticks are dense integers rather than wall-clock readings; the
/// paper's Figure 1 uses exactly such small dense times (2, 5, 8, 10, 12).
#[derive(Debug)]
pub struct Clock {
    next: AtomicU64,
}

impl Clock {
    /// A clock whose first issued time is `t1`.
    pub fn new() -> Clock {
        Clock { next: AtomicU64::new(1) }
    }

    /// A clock whose first issued time follows `last` (used at recovery).
    pub fn resume_after(last: TxnTime) -> Clock {
        assert!(!last.is_pending());
        Clock { next: AtomicU64::new(last.ticks() + 1) }
    }

    /// Issue the next transaction time.
    pub fn tick(&self) -> TxnTime {
        let t = self.next.fetch_add(1, Ordering::SeqCst);
        assert!(t != u64::MAX, "transaction clock exhausted");
        TxnTime(t)
    }

    /// The most recently issued time, or `EPOCH` if none has been issued.
    pub fn last_issued(&self) -> TxnTime {
        TxnTime(self.next.load(Ordering::SeqCst) - 1)
    }
}

impl Default for Clock {
    fn default() -> Self {
        Clock::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_and_sentinel() {
        assert!(TxnTime::EPOCH < TxnTime::from_ticks(1));
        assert!(TxnTime::from_ticks(7) < TxnTime::from_ticks(8));
        assert!(TxnTime::from_ticks(u64::MAX - 1) < TxnTime::PENDING);
        assert!(TxnTime::PENDING.is_pending());
        assert!(!TxnTime::EPOCH.is_pending());
    }

    #[test]
    fn pred_and_succ() {
        assert_eq!(TxnTime::from_ticks(8).pred(), TxnTime::from_ticks(7));
        assert_eq!(TxnTime::EPOCH.pred(), TxnTime::EPOCH);
        assert_eq!(TxnTime::from_ticks(8).succ(), TxnTime::from_ticks(9));
    }

    #[test]
    #[should_panic(expected = "no successor")]
    fn pending_has_no_successor() {
        let _ = TxnTime::PENDING.succ();
    }

    #[test]
    fn clock_is_monotonic() {
        let c = Clock::new();
        let a = c.tick();
        let b = c.tick();
        assert!(a < b);
        assert_eq!(c.last_issued(), b);
    }

    #[test]
    fn clock_resumes_after_recovery() {
        let c = Clock::resume_after(TxnTime::from_ticks(41));
        assert_eq!(c.tick(), TxnTime::from_ticks(42));
    }

    #[test]
    fn clock_is_threadsafe() {
        let c = std::sync::Arc::new(Clock::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let c = c.clone();
            handles.push(std::thread::spawn(move || {
                (0..1000).map(|_| c.tick().ticks()).collect::<Vec<_>>()
            }));
        }
        let mut all: Vec<u64> = handles.into_iter().flat_map(|h| h.join().unwrap()).collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 8000, "ticks must be unique across threads");
    }
}
