//! Verification at the session boundary: methods install through the single
//! verified choke point, corrupt bytecode surfaces as a structured error the
//! session survives, and compile-time lints ride along with `run`.

use gemstone::{GemError, GemStone};
use gemstone_opal::verify;
use gemstone_opal::{Bc, CompiledMethod, Interpreter, LintKind, LintSite, OpalWorld};

#[test]
fn select_blocks_compile_verified_through_full_stack() {
    let gs = GemStone::in_memory();
    let mut s = gs.login("system").unwrap();
    s.run("Object subclass: 'Emp' instVarNames: #('name' 'salary')").unwrap();
    s.run(
        "Emps := OrderedCollection new.
         Emps add: (Emp new name: 'a'; salary: 10; yourself).
         Emps add: (Emp new name: 'b'; salary: 30; yourself)",
    )
    .unwrap();
    let n = s.run("(Emps select: [:e | e salary > 20]) size").unwrap();
    assert_eq!(n.as_int(), Some(1));
    // Captured outer values substitute correctly (arity was verified).
    let n = s.run("| cut | cut := 5. (Emps select: [:e | e salary > cut]) size").unwrap();
    assert_eq!(n.as_int(), Some(2));
}

#[test]
fn corrupt_bytecode_is_refused_and_session_survives() {
    let gs = GemStone::in_memory();
    let mut s = gs.login("system").unwrap();
    s.run("K := 41").unwrap();
    let bad = CompiledMethod {
        selector: s.intern("zork"),
        n_params: 0,
        n_temps: 0,
        literals: Vec::new(),
        code: vec![Bc::Pop, Bc::PushNil, Bc::ReturnTop],
        blocks: Vec::new(),
    };
    match s.add_method_code(bad) {
        Err(GemError::CorruptMethod(msg)) => {
            assert!(msg.contains("underflow"), "got {msg:?}");
            assert!(msg.contains("pc 0"), "got {msg:?}");
        }
        other => panic!("expected CorruptMethod, got {other:?}"),
    }
    // The refusal left the session fully usable.
    assert_eq!(s.run("K + 1").unwrap().as_int(), Some(42));
}

#[test]
fn verified_methods_carry_token_and_run() {
    let gs = GemStone::in_memory();
    let mut s = gs.login("system").unwrap();
    let ok = CompiledMethod {
        selector: s.intern("fortyTwo"),
        n_params: 0,
        n_temps: 0,
        literals: vec![gemstone_opal::Literal::Int(42)],
        code: vec![Bc::PushLit(0), Bc::ReturnTop],
        blocks: Vec::new(),
    };
    let _token: verify::Verified = verify::check(&ok).unwrap();
    let id = s.add_method_code(ok).unwrap();
    let v = Interpreter::new(&mut s).run_doit(id).unwrap();
    assert_eq!(v.as_int(), Some(42));
}

#[test]
fn lints_accumulate_on_run_and_never_block() {
    let gs = GemStone::in_memory();
    let mut s = gs.login("system").unwrap();
    // Unused temp: runs fine, lint recorded with the declaration's span.
    let v = s.run("| unused x | x := 4. x + 1").unwrap();
    assert_eq!(v.as_int(), Some(5));
    let lints = s.last_lints();
    assert!(
        lints.iter().any(|l| matches!(
            &l.kind,
            LintKind::UnusedTemp { name } if name == "unused"
        )),
        "expected UnusedTemp lint, got {lints:?}"
    );
    let Some(lint) = lints.first() else { panic!("no lints") };
    match &lint.site {
        LintSite::Source(span) => assert_eq!((span.line, span.col), (1, 3)),
        other => panic!("expected source span, got {other:?}"),
    }
    // Unreachable code after ^ inside a later run replaces the lint set.
    s.run("D := OrderedCollection new. D add: 3. D add: 9").unwrap();
    let v = s.run("(D select: [:e | D add: e. e > 1]) size").unwrap();
    assert!(v.as_int().is_some());
    assert!(
        s.last_lints().iter().any(
            |l| matches!(&l.kind, LintKind::SelectBlockImpure { selector, .. } if selector == "add:")
        ),
        "expected SelectBlockImpure lint, got {:?}",
        s.last_lints()
    );
    // A clean program clears the lint list.
    s.run("3 + 4").unwrap();
    assert!(s.last_lints().is_empty());
}
