//! Concurrent crash smoke test: a multi-threaded mixed workload is cut
//! down mid-run by a disk crash, the volume is reopened, and recovery must
//! present an all-or-nothing, serializable prefix of the concurrent
//! history — the single-session crash matrix's invariants, re-checked
//! under real thread interleaving on the shattered-lock engine.
//!
//! Each thread owns a disjoint set of account *pairs* and increments both
//! halves of a pair inside one transaction. Pairing makes per-transaction
//! atomicity observable: after any crash and recovery, the two halves must
//! agree, no matter how commits from four threads interleaved with the
//! torn safe-write group.

use gemstone::{FaultPlan, GemError, GemStone, StoreConfig};
use std::sync::atomic::{AtomicU64, Ordering};

/// Account pairs per thread.
const PAIRS_PER_THREAD: usize = 2;
const THREADS: usize = 4;
const PAIRS: usize = THREADS * PAIRS_PER_THREAD;

fn txns_per_thread() -> usize {
    std::env::var("CONCURRENT_CRASH_TXNS").ok().and_then(|v| v.parse().ok()).unwrap_or(25)
}

fn populate(gs: &GemStone) {
    let mut s = gs.login("system").expect("login");
    let mut src = String::from("| t | Pairs := Dictionary new.\n");
    for i in 0..PAIRS * 2 {
        src.push_str(&format!("t := Dictionary new. t at: #v put: 0. Pairs at: {i} put: t.\n"));
    }
    s.run(&src).expect("populate");
    s.commit().expect("populate commit");
}

fn balance(s: &mut gemstone::Session, account: usize) -> i64 {
    s.run(&format!("(Pairs at: {account}) at: #v"))
        .expect("read balance")
        .as_int()
        .expect("balances are integers")
}

#[test]
fn concurrent_workload_survives_crash_with_atomic_pairs() {
    let txns = txns_per_thread();
    let gs = GemStone::create(StoreConfig { track_size: 512, cache_tracks: 64, replicas: 1 })
        .expect("create");
    populate(&gs);

    // Arm the crash before the threads start: after ~40% of the workload's
    // expected writes, the next write tears in half and the disk dies.
    // From that point every commit fails; threads drain and stop.
    let total_commits = (THREADS * txns) as u64;
    gs.database()
        .store()
        .with_disk(|d| d.replica_mut(0).set_fault_plan(FaultPlan::crash_after(total_commits)));

    let committed: Vec<AtomicU64> = (0..PAIRS).map(|_| AtomicU64::new(0)).collect();
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let mut s = gs.login("system").expect("login");
            let committed = &committed;
            scope.spawn(move || {
                'work: for i in 0..txns {
                    let pair = t * PAIRS_PER_THREAD + (i % PAIRS_PER_THREAD);
                    let (a, b) = (pair * 2, pair * 2 + 1);
                    loop {
                        let ran = s.run(&format!(
                            "(Pairs at: {a}) at: #v put: (((Pairs at: {a}) at: #v) + 1). \
                             (Pairs at: {b}) at: #v put: (((Pairs at: {b}) at: #v) + 1)"
                        ));
                        if ran.is_err() {
                            // The dead disk can surface as a read fault
                            // mid-statement; the transaction never commits.
                            break 'work;
                        }
                        match s.commit() {
                            Ok(_) => {
                                committed[pair].fetch_add(1, Ordering::Relaxed);
                                break;
                            }
                            // Pairs are thread-private, but a conservative
                            // abort is always a legal optimistic outcome:
                            // retry like any OPAL client would.
                            Err(GemError::TransactionConflict { .. }) => continue,
                            Err(_) => break 'work,
                        }
                    }
                }
            });
        }
    });

    // Reopen the torn volume.
    let mut disk = gs.shutdown().expect("shutdown tears down cleanly");
    disk.replica_mut(0).revive();
    let gs2 = GemStone::open(disk, 64).expect("recovery succeeds");
    let mut s = gs2.login("system").expect("login");

    let mut recovered_total = 0i64;
    for (pair, acked_count) in committed.iter().enumerate() {
        let a = balance(&mut s, pair * 2);
        let b = balance(&mut s, pair * 2 + 1);
        // All-or-nothing per transaction: both halves of a pair move
        // together or not at all.
        assert_eq!(a, b, "pair {pair} recovered torn: {a} vs {b}");
        let acked = acked_count.load(Ordering::Relaxed) as i64;
        // Durability: every acknowledged commit survives. The one commit
        // whose root landed before its acknowledgment write can exceed the
        // count by exactly one.
        assert!(
            a == acked || a == acked + 1,
            "pair {pair}: recovered {a} increments, {acked} were acknowledged"
        );
        recovered_total += a;
    }
    let acked_total: i64 = committed.iter().map(|c| c.load(Ordering::Relaxed) as i64).sum();
    assert!(
        recovered_total >= acked_total,
        "recovery lost acknowledged work: {recovered_total} < {acked_total}"
    );
    assert!(acked_total > 0, "the crash fired before any transaction committed");
    assert!(
        recovered_total <= acked_total + 1,
        "at most the single in-flight commit may exceed the acknowledged count"
    );

    // The recovered store accepts new work from a fresh concurrent batch.
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let mut s = gs2.login("system").expect("login");
            scope.spawn(move || {
                let pair = t * PAIRS_PER_THREAD;
                let (a, b) = (pair * 2, pair * 2 + 1);
                loop {
                    s.run(&format!(
                        "(Pairs at: {a}) at: #v put: (((Pairs at: {a}) at: #v) + 1). \
                         (Pairs at: {b}) at: #v put: (((Pairs at: {b}) at: #v) + 1)"
                    ))
                    .expect("post-recovery statement");
                    match s.commit() {
                        Ok(_) => break,
                        Err(GemError::TransactionConflict { .. }) => continue,
                        Err(e) => panic!("post-recovery commit failed: {e:?}"),
                    }
                }
            });
        }
    });
    let mut s = gs2.login("system").expect("login");
    for t in 0..THREADS {
        let pair = t * PAIRS_PER_THREAD;
        let a = balance(&mut s, pair * 2);
        let b = balance(&mut s, pair * 2 + 1);
        assert_eq!(a, b, "post-recovery increments stay atomic");
    }
}
