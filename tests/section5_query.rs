//! Experiment Q1: the §5.1 set-calculus query, run through the full system —
//! declaratively (compiled select blocks planned through the set algebra)
//! and procedurally — with identical answers.
//!
//! ```text
//! {{Emp: e, Mgr: m} where (e ∈ X!Employees) and (d ∈ X!Departments)
//!   [(m ∈ d!Managers) and (d!Name ∈ e!Depts)
//!    and (e!Salary > 0.10 * d!Budget)]}
//! ```

use gemstone::{GemStone, Session};

/// The §5.1 example database, exactly as printed.
fn build_acme(s: &mut Session) {
    s.run(
        "| a12 a16 e62 e83 |
         Departments := Set new.
         Employees := Set new.
         a12 := Dictionary new.
         a12 at: #Name put: 'Sales'.
         a12 at: #Managers put: Set new.
         (a12 at: #Managers) add: 'Nathen'; add: 'Roberts'.
         a12 at: #Budget put: 142000.
         Departments add: a12.
         a16 := Dictionary new.
         a16 at: #Name put: 'Research'.
         a16 at: #Managers put: Set new.
         (a16 at: #Managers) add: 'Carter'.
         a16 at: #Budget put: 256500.
         Departments add: a16.
         e62 := Dictionary new.
         e62 at: #Name put: (Dictionary new).
         (e62 at: #Name) at: #First put: 'Ellen'. (e62 at: #Name) at: #Last put: 'Burns'.
         e62 at: #Salary put: 24650.
         e62 at: #Depts put: Set new.
         (e62 at: #Depts) add: 'Marketing'.
         Employees add: e62.
         e83 := Dictionary new.
         e83 at: #Name put: (Dictionary new).
         (e83 at: #Name) at: #First put: 'Robert'. (e83 at: #Name) at: #Last put: 'Peters'.
         e83 at: #Salary put: 24000.
         e83 at: #Depts put: Set new.
         (e83 at: #Depts) add: 'Sales'; add: 'Planning'.
         e83 at: #Phones put: Set new.
         (e83 at: #Phones) add: 3949; add: 3862.
         Employees add: e83",
    )
    .unwrap();
    s.commit().unwrap();
}

/// The procedural form: nested do: loops.
const PROCEDURAL: &str = "
    | result |
    result := OrderedCollection new.
    Employees do: [:e |
        Departments do: [:d |
            ((d at: #Managers) __elements) do: [:m |
                (((e at: #Depts) includes: (d at: #Name))
                  and: [(e at: #Salary) > (0.10 * (d at: #Budget))])
                    ifTrue: [result add: ((e at: #Name) at: #Last), '/', m]]]].
    result";

#[test]
fn procedural_answer_matches_paper() {
    let gs = GemStone::in_memory();
    let mut s = gs.login("system").unwrap();
    build_acme(&mut s);
    let shown = s.run_display(PROCEDURAL).unwrap();
    // Robert Peters (24000 > 14200, in Sales) pairs with both Sales
    // managers; Ellen pairs with nobody (Marketing has no dept object).
    assert!(shown.contains("'Peters/Nathen'"), "{shown}");
    assert!(shown.contains("'Peters/Roberts'"), "{shown}");
    assert!(!shown.contains("Burns"), "{shown}");
    let n = s.run(&format!("{PROCEDURAL} size")).unwrap();
    assert_eq!(n.as_int(), Some(2));
}

#[test]
fn declarative_select_agrees_with_procedural() {
    let gs = GemStone::in_memory();
    let mut s = gs.login("system").unwrap();
    build_acme(&mut s);
    // Declarative inner selection per department: employees in d with
    // salary above the threshold. The select block compiles to a calculus
    // query (captured: dName, threshold).
    let declarative = "
        | result |
        result := OrderedCollection new.
        Departments do: [:d | | hits |
            hits := Employees select: [:e | e Salary > (0.10 * (d at: #Budget))].
            hits do: [:e |
                ((e at: #Depts) includes: (d at: #Name)) ifTrue: [
                    ((d at: #Managers) __elements) do: [:m |
                        result add: ((e at: #Name) at: #Last), '/', m]]]].
        result size";
    let n = s.run(declarative).unwrap();
    assert_eq!(n.as_int(), Some(2));
}

#[test]
fn declarative_equality_select_uses_directory() {
    let gs = GemStone::in_memory();
    let mut s = gs.login("system").unwrap();
    build_acme(&mut s);
    s.run("System createIndexOn: Employees path: #Salary").unwrap();
    s.commit().unwrap();
    let n = s.run("(Employees select: [:e | e Salary = 24000]) size").unwrap();
    assert_eq!(n.as_int(), Some(1));
    let n = s.run("(Employees select: [:e | e Salary = 99999]) size").unwrap();
    assert_eq!(n.as_int(), Some(0));
}

#[test]
fn select_with_captured_outer_values() {
    let gs = GemStone::in_memory();
    let mut s = gs.login("system").unwrap();
    build_acme(&mut s);
    let n = s.run("| cut | cut := 24500. (Employees select: [:e | e Salary > cut]) size").unwrap();
    assert_eq!(n.as_int(), Some(1), "only Ellen above 24500");
}

#[test]
fn subset_condition_on_entities() {
    // §5.2's subset stipulated in one message, against stored sets.
    let gs = GemStone::in_memory();
    let mut s = gs.login("system").unwrap();
    build_acme(&mut s);
    let v = s
        .run(
            "| robert all |
             robert := Employees detect: [:e | ((e at: #Name) at: #Last) = 'Peters'].
             all := Set new. all add: 'Sales'; add: 'Planning'; add: 'Research'.
             all includesAll: (robert at: #Depts)",
        )
        .unwrap();
    assert_eq!(v.as_bool(), Some(true));
}

#[test]
fn query_against_past_state() {
    // Temporal + declarative: raise Robert's salary, then query both states.
    let gs = GemStone::in_memory();
    let mut s = gs.login("system").unwrap();
    build_acme(&mut s);
    let before = s.run("System currentTime").unwrap().as_int().unwrap();
    s.run(
        "| robert | robert := Employees detect: [:e | (e at: #Salary) = 24000].
         robert at: #Salary put: 30000",
    )
    .unwrap();
    s.commit().unwrap();
    let n = s.run("(Employees select: [:e | e Salary > 25000]) size").unwrap();
    assert_eq!(n.as_int(), Some(1), "current state: the raise is visible");
    s.run(&format!("System timeDial: {before}")).unwrap();
    let n = s.run("(Employees select: [:e | e Salary > 25000]) size").unwrap();
    assert_eq!(n.as_int(), Some(0), "past state: no salary above 25000");
}
