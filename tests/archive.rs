//! Experiment C9's administrator side: "while conceptually the entire
//! history of the database exists, some objects in it may become temporarily
//! or permanently inaccessible" (§6) — the DBA archive operation prunes old
//! associations while preserving every state at or after the cut.

use gemstone::{GemError, GemStone, StoreConfig};

#[test]
fn archive_prunes_old_states_and_keeps_recent_ones() {
    let gs = GemStone::in_memory();
    let mut s = gs.login("system").unwrap();
    s.run("A := Dictionary new. A at: #v put: 0").unwrap();
    s.commit().unwrap();
    let mut times = Vec::new();
    for i in 1..=10 {
        s.run(&format!("A at: #v put: {}", i * 100)).unwrap();
        times.push(s.commit().unwrap().ticks());
    }
    let cut = times[5]; // keep the state in force at times[5] and later
    let archived = s.run(&format!("System archiveHistoryBefore: {cut}")).unwrap();
    assert!(archived.as_int().unwrap() > 0, "associations were archived");

    // Recent history intact.
    for (i, t) in times.iter().enumerate().skip(5) {
        let v = s.run(&format!("A ! v @ {t}")).unwrap();
        assert_eq!(v.as_int(), Some((i as i64 + 1) * 100), "state at t{t}");
    }
    // Probes before the cut: the archived past is gone — "some objects in
    // it may become temporarily or permanently inaccessible" (§6).
    let v = s.run(&format!("A ! v @ {}", times[0])).unwrap();
    assert!(v.is_nil(), "archived states read as nonexistent");
    // The oldest retained association is the state at the cut.
    let v = s.run(&format!("A ! v @ {cut}")).unwrap();
    assert_eq!(v.as_int(), Some(600));
    assert_eq!(s.run("A at: #v").unwrap().as_int(), Some(1000));
}

#[test]
fn archive_shrinks_the_recovered_image() {
    let cfg = StoreConfig { track_size: 1024, cache_tracks: 16, replicas: 1 };
    let gs = GemStone::create(cfg).unwrap();
    let mut s = gs.login("system").unwrap();
    s.run("A := Dictionary new").unwrap();
    s.commit().unwrap();
    for i in 0..100 {
        s.run(&format!("A at: #v put: {i}")).unwrap();
        s.commit().unwrap();
    }
    let now = s.run("System currentTime").unwrap().as_int().unwrap();
    let archived = s.run(&format!("System archiveHistoryBefore: {now}")).unwrap();
    assert!(archived.as_int().unwrap() >= 99);
    // The pruned image survives restart, with only the retained state.
    drop(s);
    let disk = gs.shutdown().unwrap();
    let gs2 = GemStone::open(disk, 16).unwrap();
    let mut s = gs2.login("system").unwrap();
    assert_eq!(s.run("A at: #v").unwrap().as_int(), Some(99));
    assert!(
        s.run("A ! v @ 3").unwrap().is_nil(),
        "the archived past is inaccessible after recovery too"
    );
}

#[test]
fn only_the_dba_may_archive() {
    let gs = GemStone::in_memory();
    gs.create_user("ellen");
    let mut dba = gs.login("system").unwrap();
    dba.run("A := Dictionary new. A at: #v put: 1").unwrap();
    dba.commit().unwrap();
    let mut ellen = gs.login("ellen").unwrap();
    let err = ellen.run("System archiveHistoryBefore: 1");
    assert!(matches!(err, Err(GemError::AuthorizationDenied { .. })), "{err:?}");
}
