//! The optimized join pipeline checked against the STDM calculus semantics.
//!
//! `gemstone_stdm::Query` evaluates the §5.1 set calculus by its *defining*
//! nested loop; the `gemstone_calculus` planner is supposed to be a pure
//! optimization of those semantics. These tests run the same randomized
//! equi-joins through both — the full Session pipeline (OPAL data, planner,
//! hash join) and the STDM oracle — and require identical answers.

use gemstone::{GemStone, Session};
use gemstone_calculus::{CmpOp, Pred, Query, Range, Term, VarId};
use gemstone_object::ElemName;
use gemstone_opal::OpalWorld;
use gemstone_stdm::{
    CmpOp as SCmpOp, LabeledSet, Pred as SPred, Query as SQuery, Range as SRange, SValue,
    Term as STerm,
};
use proptest::prelude::*;
use std::collections::HashMap;

/// One row of a randomized input set: a (possibly repeated) join key plus a
/// payload distinguishing the row.
type Row = (i64, i64);

/// The STDM oracle answer: the multiset of (left payload, right payload)
/// pairs whose keys match, by the calculus' nested-loop semantics.
fn stdm_oracle(lefts: &[Row], rights: &[Row]) -> Vec<(i64, i64)> {
    let l_set = LabeledSet::values(
        lefts.iter().map(|&(k, v)| SValue::Set(LabeledSet::of([("K", k), ("V", v)]))),
    );
    let r_set = LabeledSet::values(
        rights.iter().map(|&(k, w)| SValue::Set(LabeledSet::of([("K", k), ("W", w)]))),
    );
    let query = SQuery {
        result: vec![
            ("A".to_string(), STerm::path("l", ["V"])),
            ("B".to_string(), STerm::path("r", ["W"])),
        ],
        ranges: vec![
            SRange { var: "l".to_string(), domain: STerm::Const(SValue::Set(l_set)) },
            SRange { var: "r".to_string(), domain: STerm::Const(SValue::Set(r_set)) },
        ],
        pred: SPred::Cmp(STerm::path("l", ["K"]), SCmpOp::Eq, STerm::path("r", ["K"])),
    };
    let out = query.eval(&HashMap::new()).expect("oracle eval");
    let mut pairs: Vec<(i64, i64)> = out
        .iter()
        .map(|(_, tuple)| {
            let t = tuple.as_set().expect("tuple");
            let get = |name: &str| {
                t.iter()
                    .find(|(l, _)| format!("{l}") == name)
                    .and_then(|(_, v)| v.as_number())
                    .expect("field") as i64
            };
            (get("A"), get("B"))
        })
        .collect();
    pairs.sort_unstable();
    pairs
}

/// Load the same rows as committed GemStone sets and return the equivalent
/// calculus query `{(l!V, r!W) | l ∈ L, r ∈ R, l!K = r!K}`.
fn build_session_query(s: &mut Session, lefts: &[Row], rights: &[Row]) -> Query {
    // Bags, not Sets: `Set add:` dedupes structurally-equal members, while
    // the STDM LabeledSet keeps every row under a fresh alias. Randomized
    // inputs repeat rows, so the collection must keep duplicates too.
    let mut src = String::from("| t | L := Bag new. R := Bag new.\n");
    for &(k, v) in lefts {
        src.push_str(&format!(
            "t := Dictionary new. t at: #K put: {k}. t at: #V put: {v}. L add: t.\n"
        ));
    }
    for &(k, w) in rights {
        src.push_str(&format!(
            "t := Dictionary new. t at: #K put: {k}. t at: #W put: {w}. R add: t.\n"
        ));
    }
    s.run(&src).expect("populate");
    s.commit().expect("commit");
    let l_sym = s.intern("L");
    let r_sym = s.intern("R");
    let l = s.get_global(l_sym).expect("L");
    let r = s.get_global(r_sym).expect("R");
    let key = ElemName::Sym(s.intern("K"));
    let (a, b) = (s.intern("A"), s.intern("B"));
    let (val, w) = (ElemName::Sym(s.intern("V")), ElemName::Sym(s.intern("W")));
    let (v0, v1) = (VarId(0), VarId(1));
    Query {
        result: vec![(a, Term::Path(v0, vec![val])), (b, Term::Path(v1, vec![w]))],
        ranges: vec![
            Range { var: v0, domain: Term::Const(l) },
            Range { var: v1, domain: Term::Const(r) },
        ],
        pred: Pred::Cmp(Term::Path(v0, vec![key]), CmpOp::Eq, Term::Path(v1, vec![key])),
    }
}

fn session_pairs(s: &mut Session, q: &Query) -> Vec<(i64, i64)> {
    let mut pairs: Vec<(i64, i64)> = s
        .query(q)
        .expect("session query")
        .into_iter()
        .map(|row| {
            assert_eq!(row.len(), 2);
            (row[0].as_int().expect("int"), row[1].as_int().expect("int"))
        })
        .collect();
    pairs.sort_unstable();
    pairs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Randomized equi-joins: the planned (hash-join) pipeline agrees with
    /// the STDM nested-loop semantics on every input, including duplicate
    /// keys on both sides and keys that match nothing.
    #[test]
    fn planned_join_matches_stdm_semantics(
        lefts in prop::collection::vec((0i64..5, 0i64..1000), 1..10),
        rights in prop::collection::vec((0i64..5, 0i64..1000), 1..10),
    ) {
        let gs = GemStone::in_memory();
        let mut s = gs.login("system").unwrap();
        let q = build_session_query(&mut s, &lefts, &rights);
        let got = session_pairs(&mut s, &q);
        let want = stdm_oracle(&lefts, &rights);
        prop_assert_eq!(&got, &want, "lefts={:?} rights={:?}", lefts, rights);
        // The planner must have used the hash join for this shape, and its
        // match counter must equal the oracle's result cardinality.
        let explain = s.explain().expect("explain");
        prop_assert!(explain.contains("hash-join"), "plan was not a hash join:\n{}", explain);
        let stats = s.last_plan_stats().expect("stats");
        prop_assert_eq!(stats.hash_matches as usize, want.len());
        prop_assert_eq!(stats.row_visits() as usize, lefts.len() + rights.len());
    }
}

/// Acceptance: a §5.1-style query — employees × departments, linked by an
/// equality on the department name plus the paper's salary/budget residual —
/// plans as a hash join with the residual selected above it, and `explain`
/// says so.
#[test]
fn section51_style_join_explains_hash_join() {
    let gs = GemStone::in_memory();
    let mut s = gs.login("system").unwrap();
    s.run(
        "| d e |
         Departments := Set new.
         d := Dictionary new. d at: #Name put: 'Sales'. d at: #Budget put: 142000.
         Departments add: d.
         d := Dictionary new. d at: #Name put: 'Research'. d at: #Budget put: 256500.
         Departments add: d.
         Employees := Set new.
         e := Dictionary new. e at: #Dept put: 'Sales'. e at: #Salary put: 24000.
         Employees add: e.
         e := Dictionary new. e at: #Dept put: 'Sales'. e at: #Salary put: 9000.
         Employees add: e.
         e := Dictionary new. e at: #Dept put: 'Research' . e at: #Salary put: 30000.
         Employees add: e",
    )
    .unwrap();
    s.commit().unwrap();
    let employees_sym = s.intern("Employees");
    let departments_sym = s.intern("Departments");
    let employees = s.get_global(employees_sym).unwrap();
    let departments = s.get_global(departments_sym).unwrap();
    let dept = ElemName::Sym(s.intern("Dept"));
    let name = ElemName::Sym(s.intern("Name"));
    let salary = s.intern("Salary");
    let budget = s.intern("Budget");
    let (v0, v1) = (VarId(0), VarId(1));
    // {(e!Salary, d!Budget) | e ∈ Employees, d ∈ Departments,
    //   e!Dept = d!Name and e!Salary > 0.10 * d!Budget}
    let q = Query {
        result: vec![
            (salary, Term::Path(v0, vec![ElemName::Sym(salary)])),
            (budget, Term::Path(v1, vec![ElemName::Sym(budget)])),
        ],
        ranges: vec![
            Range { var: v0, domain: Term::Const(employees) },
            Range { var: v1, domain: Term::Const(departments) },
        ],
        pred: Pred::Cmp(Term::Path(v0, vec![dept]), CmpOp::Eq, Term::Path(v1, vec![name])).and(
            Pred::Cmp(
                Term::Path(v0, vec![ElemName::Sym(salary)]),
                CmpOp::Gt,
                Term::Mul(
                    Box::new(Term::Const(gemstone::Oop::float(0.10))),
                    Box::new(Term::Path(v1, vec![ElemName::Sym(budget)])),
                ),
            ),
        ),
    };
    let mut rows: Vec<(i64, i64)> = s
        .query(&q)
        .unwrap()
        .into_iter()
        .map(|r| (r[0].as_int().unwrap(), r[1].as_int().unwrap()))
        .collect();
    rows.sort_unstable();
    // 24000 > 14200 in Sales; 30000 > 25650 in Research; 9000 fails.
    assert_eq!(rows, vec![(24000, 142000), (30000, 256500)]);
    let explain = s.explain().expect("explain after query");
    assert!(explain.contains("hash-join"), "string-keyed equality must hash-join:\n{explain}");
    assert!(explain.starts_with("plan: "), "{explain}");
    let stats = s.last_plan_stats().unwrap();
    assert_eq!(stats.row_visits(), 5, "three employees + two departments, each visited once");
    assert_eq!(stats.hash_matches, 3, "every employee's dept exists");
    assert_eq!(stats.rows_out, 2, "residual salary filter drops one match");
}
