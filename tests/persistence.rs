//! PR 8 acceptance ground truth: `create → commit → drop → open` against
//! the real file backend round-trips every committed object — including
//! temporal `@` reads at transaction times recorded before the process
//! boundary — with uncommitted work gone.

mod common;
use common::scratch_dir;

use gemstone::{GemError, GemStone, StoreConfig};

fn small_cfg() -> StoreConfig {
    StoreConfig { track_size: 2048, cache_tracks: 16, replicas: 1 }
}

/// Every committed object kind survives the process boundary; the
/// uncommitted tail does not.
#[test]
fn file_database_round_trips_committed_state() {
    let dir = scratch_dir("target/durability", "roundtrip");
    std::fs::create_dir_all(&dir).unwrap();
    let db = dir.join("round.gem");

    {
        let gs = GemStone::create_file(&db, small_cfg()).unwrap();
        let mut s = gs.login("system").unwrap();
        s.run(
            "| e | Object subclass: 'Employee' instVarNames: #('name' 'salary').
             Staff := OrderedCollection new.
             e := Employee new. e name: 'Peters'. e salary: 24650. Staff add: e.
             Dept := Dictionary new. Dept at: #Name put: 'Sales'. Dept at: #Floor put: 1.
             Tags := Set new. Tags add: 'fast'; add: 'safe'",
        )
        .unwrap();
        s.commit().unwrap();
        // A second commit mutates state, then an uncommitted change dangles.
        s.run("(Staff at: 1) salary: 30000").unwrap();
        s.commit().unwrap();
        s.run("Dept at: #Floor put: 99").unwrap();
        // No commit: the floor change must NOT survive.
        drop(s);
        drop(gs); // process boundary (same process, but the store is gone)
    }

    let gs = GemStone::open_file(&db, 16).unwrap();
    let mut s = gs.login("system").unwrap();
    assert_eq!(s.run("Staff size").unwrap().as_int(), Some(1));
    assert_eq!(s.run_display("(Staff at: 1) name").unwrap(), "'Peters'");
    assert_eq!(s.run("(Staff at: 1) salary").unwrap().as_int(), Some(30000));
    assert_eq!(s.run_display("Dept at: #Name").unwrap(), "'Sales'");
    assert_eq!(s.run("Dept at: #Floor").unwrap().as_int(), Some(1), "uncommitted write discarded");
    assert_eq!(s.run("Tags size").unwrap().as_int(), Some(2));
    // The recovered database accepts new work.
    s.run("Staff add: (Employee new name: 'Burns'; yourself)").unwrap();
    s.commit().unwrap();
    assert_eq!(s.run("Staff size").unwrap().as_int(), Some(2));
}

/// Temporal `@` reads work across the process boundary: transaction times
/// recorded before the drop still answer historical values after reopen.
#[test]
fn temporal_reads_survive_reopen() {
    let dir = scratch_dir("target/durability", "temporal");
    std::fs::create_dir_all(&dir).unwrap();
    let db = dir.join("temporal.gem");

    let (t1, t2);
    {
        let gs = GemStone::create_file(&db, small_cfg()).unwrap();
        let mut s = gs.login("system").unwrap();
        s.run("Car := Dictionary new").unwrap();
        s.commit().unwrap();
        s.run("Car at: #assignedTo put: 'Milton'").unwrap();
        t1 = s.commit().unwrap().ticks();
        s.run("Car at: #assignedTo put: 'Sales'").unwrap();
        t2 = s.commit().unwrap().ticks();
    }

    let gs = GemStone::open_file(&db, 16).unwrap();
    let mut s = gs.login("system").unwrap();
    assert_eq!(s.run_display("Car at: #assignedTo").unwrap(), "'Sales'");
    assert_eq!(s.run_display(&format!("Car ! assignedTo @ {t1}")).unwrap(), "'Milton'");
    assert_eq!(s.run_display(&format!("Car ! assignedTo @ {t2}")).unwrap(), "'Sales'");
    // The time dial rolls the whole session view back, too.
    s.run(&format!("System timeDial: {t1}")).unwrap();
    assert_eq!(s.run_display("Car at: #assignedTo").unwrap(), "'Milton'");
}

/// Reopening a path that never held a database is an error, not a crash;
/// creating over an existing database is refused.
#[test]
fn open_and_create_guard_their_paths() {
    let dir = scratch_dir("target/durability", "guards");
    std::fs::create_dir_all(&dir).unwrap();

    match GemStone::open_file(dir.join("absent.gem"), 16) {
        Err(GemError::DiskFailure(msg)) => assert!(msg.contains("open"), "unexpected: {msg}"),
        Err(other) => panic!("opening a missing file must fail cleanly, got {other:?}"),
        Ok(_) => panic!("opening a missing file must fail"),
    }

    let db = dir.join("dup.gem");
    GemStone::create_file(&db, small_cfg()).unwrap();
    assert!(
        GemStone::create_file(&db, small_cfg()).is_err(),
        "create_new semantics: refusing to clobber an existing database"
    );
}
