//! §6 authorization: users, segments, privilege checks on element access.

use gemstone::{Access, GemError, GemStone, SegmentId};

#[test]
fn unknown_users_cannot_log_in() {
    let gs = GemStone::in_memory();
    assert!(gs.login("intruder").is_err());
    gs.create_user("ellen");
    assert!(gs.login("ellen").is_ok());
}

#[test]
fn segment_protection_blocks_reads_and_writes() {
    let gs = GemStone::in_memory();
    gs.create_user("ellen");

    // DBA creates a protected object.
    let mut dba = gs.login("system").unwrap();
    let seg = {
        let db = gs.database();
        let mut inner_seg = None;
        db.with_auth(|auth| inner_seg = Some(auth.create_segment()));
        inner_seg.unwrap()
    };
    dba.run("Secret := Dictionary new. Secret at: #code put: 1234").unwrap();
    let secret = dba.run("Secret").unwrap();
    dba.set_segment(secret, seg).unwrap();
    dba.commit().unwrap();

    // Ellen cannot read it.
    let mut ellen = gs.login("ellen").unwrap();
    let err = ellen.run("Secret at: #code");
    assert!(matches!(err, Err(GemError::AuthorizationDenied { .. })), "{err:?}");

    // Granted read, she can read but not write.
    gs.database().with_auth(|auth| auth.grant("ellen", seg, Access::Read).unwrap());
    ellen.abort();
    assert_eq!(ellen.run("Secret at: #code").unwrap().as_int(), Some(1234));
    let err = ellen.run("Secret at: #code put: 9");
    assert!(matches!(err, Err(GemError::AuthorizationDenied { .. })), "{err:?}");

    // Granted write, everything works.
    gs.database().with_auth(|auth| auth.grant("ellen", seg, Access::Write).unwrap());
    ellen.abort();
    ellen.run("Secret at: #code put: 9").unwrap();
    ellen.commit().unwrap();
    assert_eq!(ellen.run("Secret at: #code").unwrap().as_int(), Some(9));
}

#[test]
fn world_segment_is_open_to_all_users() {
    let gs = GemStone::in_memory();
    gs.create_user("bob");
    let mut dba = gs.login("system").unwrap();
    dba.run("Board := Dictionary new. Board at: #msg put: 'hello'").unwrap();
    dba.commit().unwrap();
    let mut bob = gs.login("bob").unwrap();
    assert_eq!(bob.run_display("Board at: #msg").unwrap(), "'hello'");
    bob.run("Board at: #msg put: 'hi'").unwrap();
    bob.commit().unwrap();
}

#[test]
fn dba_bypasses_segment_checks() {
    let gs = GemStone::in_memory();
    let mut dba = gs.login("system").unwrap();
    let seg = {
        let mut out = SegmentId(0);
        gs.database().with_auth(|auth| out = auth.create_segment());
        out
    };
    dba.run("S := Dictionary new").unwrap();
    let s = dba.run("S").unwrap();
    dba.set_segment(s, seg).unwrap();
    dba.commit().unwrap();
    assert!(dba.run("S at: #x put: 1").is_ok());
}
