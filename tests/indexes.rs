//! Experiment C6 through the full system: directories created by the OPAL
//! hint, maintained across commits, serving current and as-of lookups,
//! nested discriminators, and correctness against scans.

use gemstone::{GemStone, Session};

fn setup_staff(s: &mut Session, n: usize) {
    s.run("Staff := Set new").unwrap();
    let mut src = String::from("| e |\n");
    for i in 0..n {
        src.push_str(&format!(
            "e := Dictionary new. e at: #salary put: {}. e at: #id put: {i}. Staff add: e.\n",
            20_000 + (i % 10) * 1000
        ));
    }
    s.run(&src).unwrap();
    s.commit().unwrap();
}

fn select_count(s: &mut Session, salary: i64) -> i64 {
    s.run(&format!("(Staff select: [:e | e salary = {salary}]) size")).unwrap().as_int().unwrap()
}

#[test]
fn indexed_and_scanned_answers_agree() {
    let gs = GemStone::in_memory();
    let mut s = gs.login("system").unwrap();
    setup_staff(&mut s, 200);
    let before: Vec<i64> = (0..10).map(|k| select_count(&mut s, 20_000 + k * 1000)).collect();
    s.run("System createIndexOn: Staff path: #salary").unwrap();
    s.commit().unwrap();
    let after: Vec<i64> = (0..10).map(|k| select_count(&mut s, 20_000 + k * 1000)).collect();
    assert_eq!(before, after);
    assert_eq!(after.iter().sum::<i64>(), 200);
    assert_eq!(gs.database().directory_count(), 1);
}

#[test]
fn directory_tracks_updates_inserts_and_removals() {
    let gs = GemStone::in_memory();
    let mut s = gs.login("system").unwrap();
    setup_staff(&mut s, 50);
    s.run("System createIndexOn: Staff path: #salary").unwrap();
    s.commit().unwrap();
    let base = select_count(&mut s, 25_000);
    // Update: one employee moves to 25000.
    s.run("(Staff detect: [:e | (e at: #salary) = 20000]) at: #salary put: 25000").unwrap();
    s.commit().unwrap();
    assert_eq!(select_count(&mut s, 25_000), base + 1);
    // Insert a new member.
    s.run("| e | e := Dictionary new. e at: #salary put: 25000. Staff add: e").unwrap();
    s.commit().unwrap();
    assert_eq!(select_count(&mut s, 25_000), base + 2);
    // Remove a member entirely.
    s.run("Staff remove: (Staff detect: [:e | (e at: #salary) = 25000])").unwrap();
    s.commit().unwrap();
    assert_eq!(select_count(&mut s, 25_000), base + 1);
}

#[test]
fn as_of_lookups_after_index_creation() {
    let gs = GemStone::in_memory();
    let mut s = gs.login("system").unwrap();
    setup_staff(&mut s, 30);
    s.run("System createIndexOn: Staff path: #salary").unwrap();
    s.commit().unwrap();
    let t_before = s.run("System currentTime").unwrap().as_int().unwrap();
    let was = select_count(&mut s, 21_000);
    s.run("Staff do: [:e | ((e at: #salary) = 21000) ifTrue: [e at: #salary put: 50000]]").unwrap();
    s.commit().unwrap();
    assert_eq!(select_count(&mut s, 21_000), 0);
    s.run(&format!("System timeDial: {t_before}")).unwrap();
    assert_eq!(select_count(&mut s, 21_000), was, "the directory answers in past states");
    s.run("System timeDialNow").unwrap();
}

#[test]
fn nested_discriminator_rekeys_on_inner_change() {
    // §6's headache: "using a nested element as a discriminator. Since that
    // element may be different in different states of the database, its
    // object may need to appear along two branches of the directory."
    let gs = GemStone::in_memory();
    let mut s = gs.login("system").unwrap();
    s.run(
        "| e d |
         Staff := Set new.
         d := Dictionary new. d at: #name put: 'Sales'.
         e := Dictionary new. e at: #dept put: d. Staff add: e.
         d := Dictionary new. d at: #name put: 'Research'.
         e := Dictionary new. e at: #dept put: d. Staff add: e",
    )
    .unwrap();
    s.commit().unwrap();
    s.run("System createIndexOn: Staff path: #(dept name)").unwrap();
    s.commit().unwrap();
    let by_dept = |s: &mut Session, name: &str| {
        s.run(&format!("(Staff select: [:e | (e ! dept ! name) = '{name}']) size"))
            .unwrap()
            .as_int()
            .unwrap()
    };
    assert_eq!(by_dept(&mut s, "Sales"), 1);
    assert_eq!(by_dept(&mut s, "Research"), 1);
    let t_before = s.run("System currentTime").unwrap().as_int().unwrap();
    // Rename the INNER object: the member must re-key.
    s.run("((Staff detect: [:e | (e ! dept ! name) = 'Sales']) at: #dept) at: #name put: 'Retail'")
        .unwrap();
    s.commit().unwrap();
    assert_eq!(by_dept(&mut s, "Sales"), 0);
    assert_eq!(by_dept(&mut s, "Retail"), 1);
    // Both branches exist across time.
    s.run(&format!("System timeDial: {t_before}")).unwrap();
    assert_eq!(by_dept(&mut s, "Sales"), 1, "the old branch still answers for old states");
    assert_eq!(by_dept(&mut s, "Retail"), 0);
    s.run("System timeDialNow").unwrap();
}

#[test]
fn range_selections_use_the_directory_and_agree_with_scans() {
    let gs = GemStone::in_memory();
    let mut s = gs.login("system").unwrap();
    setup_staff(&mut s, 300);
    let range_count = |s: &mut Session| {
        s.run("(Staff select: [:e | (e salary > 22500) & (e salary <= 26000)]) size")
            .unwrap()
            .as_int()
            .unwrap()
    };
    let gt_count = |s: &mut Session| {
        s.run("(Staff select: [:e | e salary >= 27000]) size").unwrap().as_int().unwrap()
    };
    let scanned = (range_count(&mut s), gt_count(&mut s));
    s.run("System createIndexOn: Staff path: #salary").unwrap();
    s.commit().unwrap();
    let indexed = (range_count(&mut s), gt_count(&mut s));
    assert_eq!(scanned, indexed, "range scans through the directory agree");
    // Sanity on the distribution: salaries 20000..29000 × 30 each.
    assert_eq!(indexed.0, 120, "23000, 24000, 25000, 26000 qualify, 30 each");
    assert_eq!(indexed.1, 90, "27000, 28000, 29000");
}

#[test]
fn between_and_compiles_to_a_range_plan() {
    let gs = GemStone::in_memory();
    let mut s = gs.login("system").unwrap();
    setup_staff(&mut s, 100);
    s.run("System createIndexOn: Staff path: #salary").unwrap();
    s.commit().unwrap();
    let n = s
        .run("(Staff select: [:e | e salary between: 21000 and: 23000]) size")
        .unwrap()
        .as_int()
        .unwrap();
    assert_eq!(n, 30, "21000, 22000, 23000 × 10 each");
}

#[test]
fn directories_survive_restart() {
    let gs = GemStone::in_memory();
    let mut s = gs.login("system").unwrap();
    setup_staff(&mut s, 40);
    s.run("System createIndexOn: Staff path: #salary").unwrap();
    s.commit().unwrap();
    let was = select_count(&mut s, 23_000);
    drop(s);
    let disk = gs.shutdown().unwrap();
    let gs2 = GemStone::open(disk, 64).unwrap();
    let mut s = gs2.login("system").unwrap();
    assert_eq!(select_count(&mut s, 23_000), was, "rebuilt directory answers identically");
    // And keeps maintaining itself.
    s.run("| e | e := Dictionary new. e at: #salary put: 23000. Staff add: e").unwrap();
    s.commit().unwrap();
    assert_eq!(select_count(&mut s, 23_000), was + 1);
}

#[test]
fn dirty_sessions_fall_back_to_scans_correctly() {
    // A session with uncommitted writes must not trust the (committed-state)
    // directory; answers still have to reflect its own writes.
    let gs = GemStone::in_memory();
    let mut s = gs.login("system").unwrap();
    setup_staff(&mut s, 20);
    s.run("System createIndexOn: Staff path: #salary").unwrap();
    s.commit().unwrap();
    let base = select_count(&mut s, 29_000);
    s.run("(Staff detect: [:e | (e at: #salary) = 20000]) at: #salary put: 29000").unwrap();
    // NOT committed: the select must see the local write.
    assert_eq!(select_count(&mut s, 29_000), base + 1);
    s.abort();
    assert_eq!(select_count(&mut s, 29_000), base);
}
