//! T-obs: the unified telemetry layer, end to end.
//!
//! Three pillars from the issue: (a) metric snapshot diffs match ground
//! truth for a scripted workload — exact commit counts, track-I/O counts
//! cross-checked against the legacy accessors, exact hash-join probe
//! counts; (b) spans nest session → transaction → statement →
//! plan-operator/track-I/O and never leak across sessions; (c)
//! `explain_analyze` profiles report exactly the row counts the real
//! query returns. Plus the counter-based overhead gate and the
//! slow-statement log.

use gemstone::{GemStone, Session, SpanKind, StoreConfig, Telemetry};
use gemstone_calculus::{CmpOp, Pred, Query, Range, Term, VarId};
use gemstone_object::ElemName;
use gemstone_opal::OpalWorld;
use std::collections::{HashMap, HashSet};

mod common;
use common::diag_dir;

/// §5.1-style company data: three employees, two departments, joined on
/// the department name. Two employees work in Sales, so the equi-join
/// answers exactly two rows.
fn build_company(s: &mut Session) -> Query {
    s.run(
        "| t | Employees := Bag new. Departments := Bag new.\n\
         t := Dictionary new. t at: #Name put: 'Peters'. t at: #Dept put: 'Sales'. Employees add: t.\n\
         t := Dictionary new. t at: #Name put: 'Burns'. t at: #Dept put: 'Sales'. Employees add: t.\n\
         t := Dictionary new. t at: #Name put: 'Carter'. t at: #Dept put: 'Marketing'. Employees add: t.\n\
         t := Dictionary new. t at: #Name put: 'Sales'. t at: #Floor put: 1. Departments add: t.\n\
         t := Dictionary new. t at: #Name put: 'Research'. t at: #Floor put: 2. Departments add: t.",
    )
    .expect("populate");
    s.commit().expect("commit");
    let e_sym = s.intern("Employees");
    let d_sym = s.intern("Departments");
    let e = s.get_global(e_sym).expect("Employees");
    let d = s.get_global(d_sym).expect("Departments");
    let dept = ElemName::Sym(s.intern("Dept"));
    let name = ElemName::Sym(s.intern("Name"));
    let floor = ElemName::Sym(s.intern("Floor"));
    let (a, b) = (s.intern("Who"), s.intern("Where"));
    let (v0, v1) = (VarId(0), VarId(1));
    Query {
        result: vec![(a, Term::Path(v0, vec![name])), (b, Term::Path(v1, vec![floor]))],
        ranges: vec![
            Range { var: v0, domain: Term::Const(e) },
            Range { var: v1, domain: Term::Const(d) },
        ],
        pred: Pred::Cmp(Term::Path(v0, vec![dept]), CmpOp::Eq, Term::Path(v1, vec![name])),
    }
}

/// (a) Snapshot diffs match ground truth: exact transaction/commit/
/// statement counts, and the registry's disk counters move in lockstep
/// with the legacy `DiskStats` accessor they now back.
#[test]
fn snapshot_diff_matches_scripted_workload() {
    let gs = GemStone::in_memory();
    let mut s = gs.login("system").unwrap();
    let before = s.metrics();
    let (_, disk_before) = gs.database().storage_stats();

    s.run("Ledger := Dictionary new").unwrap();
    s.commit().unwrap();
    s.run("Ledger at: 1 put: 100").unwrap();
    s.commit().unwrap();

    let d = s.metrics().diff(&before);
    let (_, disk_after) = gs.database().storage_stats();

    assert_eq!(d.counter("txn.begins"), 2);
    assert_eq!(d.counter("txn.commits"), 2);
    assert_eq!(d.counter("txn.aborts"), 0);
    assert_eq!(d.counter("storage.store.commits"), 2);
    assert_eq!(d.counter("session.statements"), 2);
    let h = d.histogram("session.statement_ns").expect("statement histogram");
    assert_eq!(h.count, 2);
    assert!(h.sum > 0, "strict clock makes every statement nonzero-width");

    // The thin-view contract: the registry IS the old accessor's storage.
    assert_eq!(
        d.counter("storage.disk.writes"),
        disk_after.track_writes - disk_before.track_writes
    );
    assert_eq!(d.counter("storage.disk.reads"), disk_after.track_reads - disk_before.track_reads);
    assert!(d.counter("storage.disk.writes") > 0, "two commits must write tracks");
    assert!(d.counter("storage.cache.fills_commit") > 0, "safe-write groups fill the cache");
    assert!(
        d.histogram("storage.commit.group_tracks").expect("group histogram").count >= 2,
        "each commit records its safe-write group size"
    );
}

/// (a') Exact join probe counts for a known equi-join: three probe rows
/// against a two-row build side, two matches.
#[test]
fn join_counters_are_exact() {
    let gs = GemStone::in_memory();
    let mut s = gs.login("system").unwrap();
    let q = build_company(&mut s);

    let before = s.metrics();
    let rows = s.query(&q).unwrap();
    let d = s.metrics().diff(&before);

    assert_eq!(rows.len(), 2);
    assert_eq!(d.counter("calculus.hash_builds"), 2, "departments are the build side");
    assert_eq!(d.counter("calculus.hash_probes"), 3, "each employee probes once");
    assert_eq!(d.counter("calculus.hash_matches"), 2);
    assert_eq!(d.counter("calculus.rows_out"), rows.len() as u64);
    assert_eq!(d.counter("calculus.rows_scanned"), 5);
}

/// (b) Spans nest (statement under transaction under session marker) and
/// never leak across sessions: every event carries its own session id,
/// and the two sessions' event sets are disjoint.
#[test]
fn spans_nest_and_never_leak_across_sessions() {
    let (telemetry, _time) = Telemetry::manual();
    let gs = GemStone::create_with(StoreConfig::default(), telemetry).unwrap();
    let mut s1 = gs.login("system").unwrap();
    let mut s2 = gs.login("system").unwrap();
    s1.set_tracing(true);

    s1.run("X := 1").unwrap();
    s1.commit().unwrap();
    s2.run("Y := 2").unwrap();
    s2.commit().unwrap();

    let t1 = s1.trace();
    let t2 = s2.trace();
    assert!(!t1.is_empty() && !t2.is_empty());
    assert!(t1.iter().all(|e| e.session == s1.session_id()));
    assert!(t2.iter().all(|e| e.session == s2.session_id()));
    let ids1: HashSet<u64> = t1.iter().map(|e| e.id).collect();
    assert!(t2.iter().all(|e| !ids1.contains(&e.id)), "span ids are globally unique");

    // Nesting within session 1.
    let sess = t1.iter().find(|e| e.kind == SpanKind::Session).expect("session marker");
    let txn = t1.iter().find(|e| e.kind == SpanKind::Transaction).expect("txn span");
    let stmt = t1.iter().find(|e| e.kind == SpanKind::Statement).expect("statement span");
    assert_eq!(sess.parent, 0);
    assert_eq!(txn.parent, sess.id);
    assert_eq!(stmt.parent, txn.id);
    assert!(t1.iter().all(|e| e.duration_ns() > 0), "strict clock: no zero-width spans");

    // The commit wrote tracks; those I/O spans hang off this session's tree.
    let io: Vec<_> = t1.iter().filter(|e| e.kind == SpanKind::TrackIo).collect();
    assert!(!io.is_empty(), "commit must record track-I/O spans");
    assert!(io.iter().all(|e| ids1.contains(&e.parent)), "I/O spans attach inside the session");
}

/// (b') Statement sampling: with 1-in-2 sampling only every other
/// statement gets a span, and plan-operator spans of unsampled
/// statements are suppressed rather than orphaned.
#[test]
fn statement_sampling_suppresses_unsampled_subtrees() {
    let gs = GemStone::in_memory();
    let mut s = gs.login("system").unwrap();
    let q = build_company(&mut s);
    s.set_tracing(true);
    s.set_trace_sampling(2);

    for _ in 0..4 {
        s.query_analyzed(&q).unwrap();
        s.run("1 + 1").unwrap();
    }

    let events = s.trace();
    let stmts = events.iter().filter(|e| e.kind == SpanKind::Statement).count();
    assert!(stmts > 0 && stmts < 8, "1-in-2 sampling kept {stmts} of 8 statements");
    let ids: HashSet<u64> = events.iter().map(|e| e.id).collect();
    for op in events.iter().filter(|e| e.kind == SpanKind::PlanOperator) {
        assert!(ids.contains(&op.parent), "plan-operator span must have a recorded parent");
    }
}

/// (c) `explain_analyze` row counts equal the real query output, per
/// operator, on the section-5 company query.
#[test]
fn explain_analyze_counts_match_query_results() {
    let gs = GemStone::in_memory();
    let mut s = gs.login("system").unwrap();
    let q = build_company(&mut s);

    let plain = s.query(&q).unwrap();
    let analyzed = s.query_analyzed(&q).unwrap();
    assert_eq!(plain, analyzed, "profiling must not change the answer");

    let profile = s.last_profile().expect("profile").clone();
    assert_eq!(profile.rows_out(), analyzed.len() as u64, "root emits the result rows");
    assert!(profile.nodes.len() >= 3, "join plus two inputs at minimum");
    for node in &profile.nodes {
        assert!(node.wall_ns > 0, "every operator has nonzero wall time: {}", node.label);
    }
    let hash = profile
        .nodes
        .iter()
        .find(|n| n.label.starts_with("hash-join"))
        .expect("hash join operator");
    assert_eq!(hash.rows_out, 2);
    assert_eq!(hash.rows_in, 5, "three probe rows plus two build rows");
    assert_eq!(hash.build_rows, Some(2), "hash table built from the departments");

    let rendered = s.render_analysis().expect("rendered analysis");
    for node in &profile.nodes {
        assert!(rendered.contains(&node.label), "rendering shows {}", node.label);
    }
    assert!(rendered.contains("rows_in=") && rendered.contains("rows_out="));
    assert!(rendered.contains("wall="));
    assert!(rendered.contains("build="));
}

/// (c') The OPAL select-block path through `explain_analyze` renders the
/// plan with real row counts too.
#[test]
fn explain_analyze_on_opal_source() {
    let gs = GemStone::in_memory();
    let mut s = gs.login("system").unwrap();
    s.run(
        "| t | Employees := Set new.\n\
         t := Dictionary new. t at: #Salary put: 24000. Employees add: t.\n\
         t := Dictionary new. t at: #Salary put: 24650. Employees add: t.\n\
         t := Dictionary new. t at: #Salary put: 142000. Employees add: t.",
    )
    .unwrap();
    s.commit().unwrap();

    let n = s.run("(Employees select: [:e | e Salary > 24500]) size").unwrap();
    let matching = n.as_int().expect("size") as u64;

    let text = s.explain_analyze("(Employees select: [:e | e Salary > 24500]) size").unwrap();
    assert!(text.contains("rows_out="), "analysis rendered: {text}");
    let profile = s.last_profile().expect("profile");
    assert_eq!(profile.rows_out(), matching, "profiled rows equal the select's size");

    let none = s.explain_analyze("3 + 4").unwrap();
    assert!(none.contains("no select block"), "non-query statements say so: {none}");
}

/// The counter-based overhead gate: enabling full tracing adds zero
/// interpreter dispatches (the instrument is outside the bytecode loop),
/// and records a bounded, small number of telemetry events per
/// statement — structurally within any 10% budget.
#[test]
fn telemetry_overhead_gate() {
    let workload = |s: &mut Session| {
        for i in 0..10 {
            s.run(&format!("| x | x := 0. 1 to: 50 do: [:k | x := x + k]. x + {i}")).unwrap();
        }
        s.commit().unwrap();
    };

    let gs_off = GemStone::in_memory();
    let mut s_off = gs_off.login("system").unwrap();
    let before_off = s_off.metrics();
    workload(&mut s_off);
    let d_off = s_off.metrics().diff(&before_off);

    let gs_on = GemStone::in_memory();
    let mut s_on = gs_on.login("system").unwrap();
    s_on.set_tracing(true);
    let before_on = s_on.metrics();
    workload(&mut s_on);
    let d_on = s_on.metrics().diff(&before_on);

    let off = d_off.counter("opal.interp.dispatches");
    let on = d_on.counter("opal.interp.dispatches");
    assert!(off > 1000, "workload is dispatch-heavy: {off}");
    assert_eq!(on, off, "tracing adds no interpreter work");
    assert!(on * 10 <= off * 11, "enabled within 10% of disabled");

    let spans = d_on.counter("telemetry.spans.recorded");
    assert!(spans > 0, "tracing actually recorded spans");
    assert!(
        spans * 10 <= on,
        "telemetry is O(1) per statement, not per bytecode: {spans} spans vs {on} dispatches"
    );
    assert_eq!(d_off.counter("telemetry.spans.recorded"), 0, "disabled records nothing");

    // The flight-recorder leg of the gate: every emission site is
    // permanently attached (the journal-off path is one relaxed atomic
    // load), and enabling the journal changes no interpreter work either
    // — events are emitted beside existing counter moves, never inside
    // the bytecode loop.
    let dir = diag_dir("overhead");
    let gs_j = GemStone::in_memory();
    gs_j.database().start_journal(gemstone::JournalConfig::at(dir.path())).unwrap();
    let mut s_j = gs_j.login("system").unwrap();
    let before_j = s_j.metrics();
    workload(&mut s_j);
    let d_j = s_j.metrics().diff(&before_j);
    let journaled = d_j.counter("opal.interp.dispatches");
    assert_eq!(off, journaled, "journaling adds no interpreter dispatches");
    assert_eq!(
        d_off.counter("opal.interp.dispatches"),
        off,
        "journal disabled (the default above) adds no interpreter dispatches"
    );

    // The observatory leg of the gate: the ring is pull-based — sampling
    // only happens inside an explicit `observatory_tick`, so enabling it
    // leaves every engine hot path untouched (structurally zero extra
    // dispatches, not merely within budget).
    let gs_r = GemStone::in_memory();
    gs_r.database().enable_observatory(gemstone::ObservatoryConfig::default());
    let mut s_r = gs_r.login("system").unwrap();
    let before_r = s_r.metrics();
    workload(&mut s_r);
    let d_r = s_r.metrics().diff(&before_r);
    assert_eq!(
        off,
        d_r.counter("opal.interp.dispatches"),
        "the observatory ring adds no interpreter dispatches"
    );
    gs_r.database().observatory_tick();
    assert!(gs_r.telemetry().observatory.len() <= 1, "samples exist only where a driver ticks");
}

/// Interpreter and verifier counters flow through the registry.
#[test]
fn interpreter_and_verifier_counters() {
    let gs = GemStone::in_memory();
    let mut s = gs.login("system").unwrap();
    let before = s.metrics();

    s.run("1 + 2").unwrap();
    s.run("'a' , 'b'").unwrap();
    s.run("| n | n := 5. n * n").unwrap();

    let d = s.metrics().diff(&before);
    assert!(d.counter("opal.interp.dispatches") > 0);
    assert!(d.counter("opal.interp.sends") > 0);
    assert!(d.counter("opal.verify.checks") >= 3, "each doit is verified before install");
    assert_eq!(d.counter("opal.verify.rejects"), 0);
}

/// Satellite: the slow-statement log is off by default, captures source,
/// plan summary and duration when armed, and disarms cleanly.
#[test]
fn slow_statement_log() {
    let gs = GemStone::in_memory();
    let mut s = gs.login("system").unwrap();

    s.run("X := 1").unwrap();
    assert!(s.slow_log().is_empty(), "slow log defaults to off");

    s.set_slow_threshold(Some(0));
    s.run("Y := 2").unwrap();
    s.run("(Y + 1) * 2").unwrap();
    assert_eq!(s.slow_log().len(), 2);
    let entry = &s.slow_log()[0];
    assert_eq!(entry.source, "Y := 2");
    assert!(entry.wall_ns > 0);
    assert_eq!(entry.plan_summary, "(no select block)");

    s.run("Zs := Set new. Zs add: 3. Zs add: 9").unwrap();
    s.run("(Zs select: [:e | e > 5]) size").unwrap();
    let with_plan = s.slow_log().last().expect("entry");
    assert_ne!(with_plan.plan_summary, "(no select block)", "select blocks log their plan");
    assert!(!with_plan.plan_summary.is_empty());

    let len = s.slow_log().len();
    s.set_slow_threshold(None);
    s.run("X := 4").unwrap();
    assert_eq!(s.slow_log().len(), len, "disarmed log stops growing");
    s.clear_slow_log();
    assert!(s.slow_log().is_empty());
}

/// Satellite: after reopen, recovery gauges mirror the `RecoveryReport`
/// thin view exactly, and faulting cold objects fills the cache on the
/// read-through path (not the commit path).
#[test]
fn recovery_gauges_and_read_through_fills() {
    let cfg = StoreConfig { track_size: 512, cache_tracks: 8, replicas: 2 };
    let gs = GemStone::create(cfg).unwrap();
    let mut s = gs.login("system").unwrap();
    let mut src = String::from("| t | Ledger := Dictionary new.\n");
    for i in 0..50 {
        src.push_str(&format!("t := Array new. t add: {i}. Ledger at: {i} put: t.\n"));
    }
    s.run(&src).unwrap();
    s.commit().unwrap();
    drop(s);
    let disk = gs.shutdown().unwrap();

    // Reopen with a one-track cache so cold faults must read through.
    let gs2 = GemStone::open(disk, 1).unwrap();
    let mut s2 = gs2.login("system").unwrap();
    let rep = s2.recovery_report();
    let snap = s2.metrics();
    assert_eq!(snap.gauge("storage.recovery.roots_considered"), rep.roots_considered as i64);
    assert_eq!(snap.gauge("storage.recovery.roots_valid"), rep.roots_valid as i64);
    assert_eq!(snap.gauge("storage.recovery.roots_torn"), rep.roots_torn as i64);
    assert_eq!(snap.gauge("storage.recovery.epoch"), rep.recovered_epoch as i64);
    assert_eq!(snap.gauge("storage.recovery.tracks_salvaged"), rep.tracks_salvaged as i64);
    assert_eq!(snap.gauge("storage.recovery.tracks_discarded"), rep.tracks_discarded as i64);
    assert_eq!(snap.gauge("storage.recovery.reopen_reads"), rep.reopen_reads as i64);

    let before = s2.metrics();
    let v = s2.run("Ledger size").unwrap();
    assert_eq!(v.as_int(), Some(50));
    let d = s2.metrics().diff(&before);
    assert!(d.counter("storage.cache.fills_read") > 0, "cold faults fill via read-through");
    assert_eq!(d.counter("storage.cache.fills_commit"), 0, "no commit ran");
}

/// Exporters: the text table and JSON-lines renderings carry the metric
/// names and values a scrape would need.
#[test]
fn exporters_render_names_and_values() {
    let gs = GemStone::in_memory();
    let mut s = gs.login("system").unwrap();
    s.run("X := 42").unwrap();
    s.commit().unwrap();

    let snap = s.metrics();
    let table = snap.render_table();
    for name in ["txn.commits", "storage.disk.writes", "opal.interp.dispatches"] {
        assert!(table.contains(name), "table lists {name}");
    }
    let json = snap.to_json_lines();
    assert!(json.lines().count() > 10, "one line per metric");
    for line in json.lines() {
        assert!(line.starts_with('{') && line.ends_with('}'), "JSON object per line: {line}");
        assert!(line.contains("\"metric\""), "named: {line}");
    }

    // Diffing against itself zeroes every counter.
    let zero = snap.diff(&snap);
    assert_eq!(zero.counter("txn.commits"), 0);
}

/// Span ids parented correctly even for queries run outside any
/// statement (direct `query_analyzed` under tracing): operators attach
/// under the session marker rather than leaking parent 0.
#[test]
fn plan_operator_spans_attach_under_session() {
    let gs = GemStone::in_memory();
    let mut s = gs.login("system").unwrap();
    let q = build_company(&mut s);
    s.set_tracing(true);
    s.query_analyzed(&q).unwrap();

    let events = s.trace();
    let ops: Vec<_> = events.iter().filter(|e| e.kind == SpanKind::PlanOperator).collect();
    assert!(ops.len() >= 3, "one span per plan operator");
    let by_id: HashMap<u64, &gemstone::SpanEvent> = events.iter().map(|e| (e.id, e)).collect();
    for op in &ops {
        let mut cur = op.parent;
        let mut hops = 0;
        while cur != 0 {
            let parent = by_id.get(&cur).expect("parent span recorded in same session");
            assert_eq!(parent.session, s.session_id());
            cur = parent.parent;
            hops += 1;
            assert!(hops < 10, "no parent cycles");
        }
    }
}
