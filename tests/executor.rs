//! The Executor interface (§6): blocks of OPAL source in, results and error
//! messages out; a Compiler and Interpreter per session; programmatic sends.

use gemstone::{GemError, GemStone};

#[test]
fn results_and_error_messages_come_back() {
    let gs = GemStone::in_memory();
    let mut s = gs.login("system").unwrap();
    assert_eq!(s.run_display("3 + 4").unwrap(), "7");
    assert_eq!(s.run_display("'Gem', 'Stone'").unwrap(), "'GemStone'");
    // Parse errors carry positions.
    match s.run("3 +") {
        Err(GemError::ParseError { line, .. }) => assert_eq!(line, 1),
        other => panic!("{other:?}"),
    }
    // Runtime errors name class and selector.
    match s.run("3 fly") {
        Err(GemError::DoesNotUnderstand { class, selector }) => {
            assert_eq!(class, "SmallInteger");
            assert_eq!(selector, "fly");
        }
        other => panic!("{other:?}"),
    }
    // The session survives errors: state is intact.
    s.run("K := 41").unwrap();
    let _ = s.run("K zork");
    assert_eq!(s.run("K + 1").unwrap().as_int(), Some(42));
}

#[test]
fn programmatic_sends_from_rust() {
    let gs = GemStone::in_memory();
    let mut s = gs.login("system").unwrap();
    s.run("Object subclass: 'Acc' instVarNames: #('total')").unwrap();
    s.run("Acc compile: 'add: n total := (total ifNil: [0]) + n. ^total'").unwrap();
    let acc = s.run("A := Acc new. A").unwrap();
    let v = s.send(acc, "add:", &[gemstone::Oop::int(30)]).unwrap();
    assert_eq!(v.as_int(), Some(30));
    let v = s.send(acc, "add:", &[gemstone::Oop::int(12)]).unwrap();
    assert_eq!(v.as_int(), Some(42));
    // Mixed OPAL / Rust views of the same object agree.
    assert_eq!(s.run("A total").unwrap().as_int(), Some(42));
}

#[test]
fn each_session_compiles_independently_but_shares_schema() {
    let gs = GemStone::in_memory();
    let mut a = gs.login("system").unwrap();
    let mut b = gs.login("system").unwrap();
    a.run("Object subclass: 'Shared' instVarNames: #('x')").unwrap();
    // Schema is shared immediately (class definitions are not transactional).
    let v = b.run("Shared new class name").unwrap();
    assert_eq!(b.display(v).unwrap(), "'Shared'");
    // Methods compiled in one session dispatch in the other.
    a.run("Shared compile: 'answer ^42'").unwrap();
    assert_eq!(b.run("Shared new answer").unwrap().as_int(), Some(42));
}

#[test]
fn user_print_string_overrides_dispatch() {
    let gs = GemStone::in_memory();
    let mut s = gs.login("system").unwrap();
    s.run(
        "Object subclass: 'Money' instVarNames: #('amount').
         Money compile: 'printString ^amount printString, '' USD'''",
    )
    .unwrap();
    let shown = s.run_display("| m | m := Money new. m amount: 125. m").unwrap();
    assert_eq!(shown, "125 USD");
}

#[test]
fn class_side_methods() {
    let gs = GemStone::in_memory();
    let mut s = gs.login("system").unwrap();
    s.run(
        "Object subclass: 'Point2' instVarNames: #('x' 'y').
         Point2 compileClassMethod: 'x: ax y: ay | p | p := self new. p x: ax. p y: ay. ^p'",
    )
    .unwrap();
    let v = s.run("(Point2 x: 3 y: 4) y").unwrap();
    assert_eq!(v.as_int(), Some(4));
}

#[test]
fn commit_mid_doit_keeps_the_execution_alive() {
    // §4.2: system commands are ordinary messages, so a doIt can commit in
    // the middle and keep working on the same objects.
    let gs = GemStone::in_memory();
    let mut s = gs.login("system").unwrap();
    let v = s
        .run(
            "D := Dictionary new.
             D at: #x put: 1.
             System commitTransaction.
             D at: #x put: 2.
             D at: #x",
        )
        .unwrap();
    assert_eq!(v.as_int(), Some(2));
    // The first commit made x=1 durable; the second write is still pending.
    let mut other = gs.login("system").unwrap();
    assert_eq!(other.run("D at: #x").unwrap().as_int(), Some(1));
    s.commit().unwrap();
    other.abort();
    assert_eq!(other.run("D at: #x").unwrap().as_int(), Some(2));
}

#[test]
fn abort_mid_doit_discards_pending_writes() {
    let gs = GemStone::in_memory();
    let mut s = gs.login("system").unwrap();
    s.run("K := Dictionary new. K at: #v put: 10").unwrap();
    s.commit().unwrap();
    let v = s.run("K at: #v put: 99. System abortTransaction. K at: #v").unwrap();
    assert_eq!(v.as_int(), Some(10), "the abort rolled back within the doIt");
}

#[test]
fn step_budget_guards_runaway_blocks() {
    let gs = GemStone::in_memory();
    let mut s = gs.login("system").unwrap();
    let err = s.run("[true] whileTrue: [1]");
    assert!(matches!(err, Err(GemError::ResourceExhausted(_))), "{err:?}");
    // And the session is still usable afterwards.
    assert_eq!(s.run("2 + 2").unwrap().as_int(), Some(4));
}
