//! Experiment F1: the paper's **Figure 1 — "A Database with History"** —
//! reproduced end to end through OPAL, with the exact transaction times the
//! figure prints (2, 3, 5, 8, 10, 12) and the §5.3.2 path queries.
//!
//! The narrative encoded in the figure:
//! * t2 — Ayn Rand is hired (employee 1821), living in Portland;
//! * t3 — Milton Friedman is hired (employee 1372), living in Seattle;
//! * t5 — Ayn becomes president; the company car is assigned to her;
//! * t8 — the presidency changes to Milton, who moves to Portland; Ayn
//!   leaves the company (employee 1821 ↦ nil);
//! * t12 — Ayn moves to San Diego and gives up the company car.

use gemstone::{GemStone, Session};

/// Commit filler transactions until the *next* commit will land at `target`.
fn pad_to(session: &mut Session, target: u64) {
    loop {
        let now = session.run("System currentTime").unwrap().as_int().unwrap() as u64;
        assert!(now < target, "already past t{target} (at t{now})");
        if now + 1 == target {
            return;
        }
        session.run("Filler := Object new").unwrap();
        session.commit().unwrap();
    }
}

fn build_figure1(session: &mut Session) {
    // t1: the world, the company, its employees set and the car.
    session
        .run(
            "World := Dictionary new.
             Acme := Dictionary new.
             Employees := Dictionary new.
             Car := Dictionary new.
             World at: 'Acme Corp' put: Acme.
             Acme at: #employees put: Employees.
             Acme at: #companyCar put: Car",
        )
        .unwrap();
    assert_eq!(session.commit().unwrap().ticks(), 1);

    // t2: Ayn Rand hired, lives in Portland.
    session
        .run(
            "Ayn := Dictionary new.
             Ayn at: #name put: 'Ayn Rand'. Ayn at: #city put: 'Portland'.
             Employees at: 1821 put: Ayn",
        )
        .unwrap();
    assert_eq!(session.commit().unwrap().ticks(), 2);

    // t3: Milton Friedman hired, lives in Seattle.
    session
        .run(
            "Milton := Dictionary new.
             Milton at: #name put: 'Milton Friedman'. Milton at: #city put: 'Seattle'.
             Employees at: 1372 put: Milton",
        )
        .unwrap();
    assert_eq!(session.commit().unwrap().ticks(), 3);

    // t5: Ayn becomes president; the car is hers.
    pad_to(session, 5);
    session.run("Acme at: #president put: Ayn. Car at: #assignedTo put: Ayn").unwrap();
    assert_eq!(session.commit().unwrap().ticks(), 5);

    // t8: Milton takes over and moves to Portland; Ayn leaves.
    pad_to(session, 8);
    session
        .run(
            "Acme at: #president put: Milton.
             Milton at: #city put: 'Portland'.
             Employees removeKey: 1821",
        )
        .unwrap();
    assert_eq!(session.commit().unwrap().ticks(), 8);

    // t12: Ayn moves to San Diego and returns the car.
    pad_to(session, 12);
    session.run("Ayn at: #city put: 'San Diego'. Car removeKey: #assignedTo").unwrap();
    assert_eq!(session.commit().unwrap().ticks(), 12);
}

#[test]
fn figure1_paths_and_history() {
    let gs = GemStone::in_memory();
    let mut s = gs.login("system").unwrap();
    build_figure1(&mut s);

    // "A current transaction can access the new company president by the
    // path expression World!'Acme Corp'!'president'"
    let v = s.run_display("World ! 'Acme Corp' ! president ! name").unwrap();
    assert_eq!(v, "'Milton Friedman'");

    // "or at a time in the recent past with … @10."
    let v = s.run_display("World ! 'Acme Corp' ! president @ 10 ! name").unwrap();
    assert_eq!(v, "'Milton Friedman'");

    // "If the argument of @ were 7, then the previous president would be
    // accessed."
    let v = s.run_display("World ! 'Acme Corp' ! president @ 7 ! name").unwrap();
    assert_eq!(v, "'Ayn Rand'");

    // "the previous president's current city, San Diego, can be accessed by
    // the path World!'Acme Corp'!'president'@7!city."
    let v = s.run_display("World ! 'Acme Corp' ! president @ 7 ! city").unwrap();
    assert_eq!(v, "'San Diego'");
}

#[test]
fn figure1_time_dial() {
    let gs = GemStone::in_memory();
    let mut s = gs.login("system").unwrap();
    build_figure1(&mut s);

    // §5.4: "Setting the time dial to time T is the same as appending @T to
    // each component in a path expression." At t7: Ayn is president AND her
    // city reads as of t7 — Portland.
    s.run("System timeDial: 7").unwrap();
    let v = s.run_display("World ! 'Acme Corp' ! president ! city").unwrap();
    assert_eq!(v, "'Portland'");
    // Explicit @ overrides the dial: Milton's city at 10 was Portland too,
    // so probe his t3 Seattle instead.
    let v = s.run_display("World ! 'Acme Corp' ! president @ 8 ! city @ 4").unwrap();
    assert_eq!(v, "'Seattle'");
    // Writes are refused while dialed into the past.
    let err = s.run("World at: #x put: 1");
    assert!(matches!(err, Err(gemstone::GemError::WriteInPast)), "{err:?}");
    s.run("System timeDialNow").unwrap();
    let v = s.run_display("World ! 'Acme Corp' ! president ! city").unwrap();
    assert_eq!(v, "'Portland'", "current: Milton in Portland");
}

#[test]
fn figure1_deletion_is_history() {
    let gs = GemStone::in_memory();
    let mut s = gs.login("system").unwrap();
    build_figure1(&mut s);

    // "The fact that Ayn left as an employee is indicated by the
    // relationship in the employees object with her employee number 1821 as
    // an element name … whose value is the object nil."
    let v = s.run("(World ! 'Acme Corp' ! employees at: 1821) isNil").unwrap();
    assert_eq!(v.as_bool(), Some(true), "gone from the current state");
    let v = s.run_display("World ! 'Acme Corp' ! employees ! 1821 @ 7 ! name").unwrap();
    assert_eq!(v, "'Ayn Rand'", "but fully present in past states");

    // Employee count: 2 at t7, 1 now.
    s.run("System timeDial: 7").unwrap();
    assert_eq!(s.run("(World ! 'Acme Corp' ! employees) size").unwrap().as_int(), Some(2));
    s.run("System timeDialNow").unwrap();
    assert_eq!(s.run("(World ! 'Acme Corp' ! employees) size").unwrap().as_int(), Some(1));
}

#[test]
fn figure1_car_assignment_history() {
    let gs = GemStone::in_memory();
    let mut s = gs.login("system").unwrap();
    build_figure1(&mut s);

    // "She was allowed to continue to use her company car until her move at 12."
    let v = s.run_display("World ! 'Acme Corp' ! companyCar ! assignedTo @ 11 ! name").unwrap();
    assert_eq!(v, "'Ayn Rand'");
    let v = s.run("(World ! 'Acme Corp' ! companyCar at: #assignedTo) isNil").unwrap();
    assert_eq!(v.as_bool(), Some(true));
    // Before t5 the car was unassigned: the path traverses nil.
    let err = s.run("World ! 'Acme Corp' ! companyCar ! assignedTo @ 4 ! name");
    assert!(matches!(err, Err(gemstone::GemError::PathThroughNil(_))), "{err:?}");
}

#[test]
fn figure1_identity_spans_time() {
    // §5.4: "Identity is a property of an object that spans time." The Ayn
    // object reached as president@7 and as employee-1821@5 is the SAME
    // object, and its current state shows San Diego either way.
    let gs = GemStone::in_memory();
    let mut s = gs.login("system").unwrap();
    build_figure1(&mut s);
    let v = s
        .run(
            "| p e | p := World ! 'Acme Corp' ! president @ 7.
             e := World ! 'Acme Corp' ! employees ! 1821 @ 5.
             p == e",
        )
        .unwrap();
    assert_eq!(v.as_bool(), Some(true));
}

#[test]
fn figure1_survives_restart() {
    // The full history must be recoverable from disk.
    let gs = GemStone::in_memory();
    let mut s = gs.login("system").unwrap();
    build_figure1(&mut s);
    drop(s);
    let disk = gs.shutdown().unwrap();
    let gs2 = GemStone::open(disk, 128).unwrap();
    let mut s = gs2.login("system").unwrap();
    let v = s.run_display("World ! 'Acme Corp' ! president @ 7 ! city").unwrap();
    assert_eq!(v, "'San Diego'");
    let v = s.run_display("World ! 'Acme Corp' ! president ! name").unwrap();
    assert_eq!(v, "'Milton Friedman'");
}
