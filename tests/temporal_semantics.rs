//! Deeper temporal semantics through the full system: §5.3's transaction
//! time model, heterogeneous values over time, views over history, and the
//! "database as its own audit trail" behavior.

use gemstone::{GemError, GemStone};

#[test]
fn all_updates_in_one_transaction_share_one_time() {
    // §5.3.1: transaction time stamps the *commit*, not each store. A
    // real-world change touching many objects is one instant.
    let gs = GemStone::in_memory();
    let mut s = gs.login("system").unwrap();
    s.run("A := Dictionary new. B := Dictionary new").unwrap();
    s.commit().unwrap();
    s.run("A at: #x put: 1. B at: #y put: 2. A at: #x put: 3").unwrap();
    let t = s.commit().unwrap().ticks();
    // Immediately before t: neither write visible. At t: both, and only the
    // final value of the doubly-written element.
    s.run(&format!("System timeDial: {}", t - 1)).unwrap();
    assert!(s.run("(A at: #x) isNil").unwrap().as_bool().unwrap());
    assert!(s.run("(B at: #y) isNil").unwrap().as_bool().unwrap());
    s.run(&format!("System timeDial: {t}")).unwrap();
    assert_eq!(s.run("A at: #x").unwrap().as_int(), Some(3), "intra-txn writes collapse");
    assert_eq!(s.run("B at: #y").unwrap().as_int(), Some(2));
}

#[test]
fn heterogeneous_values_for_one_element_over_time() {
    // §5.2: AssignedTo "could have a value that is an employee, a
    // department or a set of departments" — and §5.3 indexes that by time.
    let gs = GemStone::in_memory();
    let mut s = gs.login("system").unwrap();
    s.run("Car := Dictionary new").unwrap();
    s.commit().unwrap();
    s.run("Car at: #assignedTo put: 'Milton'").unwrap();
    let t1 = s.commit().unwrap().ticks();
    s.run("| d | d := Set new. d add: 'Sales'; add: 'Planning'. Car at: #assignedTo put: d")
        .unwrap();
    s.commit().unwrap();
    assert_eq!(
        s.run_display(&format!("Car ! assignedTo @ {t1}")).unwrap(),
        "'Milton'",
        "a string then"
    );
    assert_eq!(s.run("(Car at: #assignedTo) size").unwrap().as_int(), Some(2), "a set now");
}

#[test]
fn event_time_is_user_data() {
    // §5.3.1: "the extendibility of classes that OPAL provides allows any
    // semantics for time to easily be added by users" — event time is just
    // an element; transaction time is the system's.
    let gs = GemStone::in_memory();
    let mut s = gs.login("system").unwrap();
    s.run(
        "Object subclass: 'Hire' instVarNames: #('who' 'eventDate').
         H := Hire new. H who: 'Ayn'. H eventDate: 19840615",
    )
    .unwrap();
    let txn_time = s.commit().unwrap().ticks();
    assert_eq!(s.run("H eventDate").unwrap().as_int(), Some(19_840_615));
    // Users can rewrite event time (a discovered discrepancy)…
    s.run("H eventDate: 19840616").unwrap();
    s.commit().unwrap();
    // …but transaction time keeps the unforgeable record of the correction.
    assert_eq!(s.run(&format!("H ! eventDate @ {txn_time}")).unwrap().as_int(), Some(19_840_615));
}

#[test]
fn views_over_history_drop_out_for_free() {
    // §5.4: "Support for views drops out almost for free. We can construct
    // an object that provides a view" — here: a method computing headcount
    // works unchanged at any dial setting.
    let gs = GemStone::in_memory();
    let mut s = gs.login("system").unwrap();
    s.run(
        "Object subclass: 'CompanyView' instVarNames: #('employees').
         CompanyView compile: 'headcount ^employees size'.
         Emps := Dictionary new.
         V := CompanyView new. V employees: Emps",
    )
    .unwrap();
    s.commit().unwrap();
    let mut times = Vec::new();
    for i in 0..4 {
        s.run(&format!("Emps at: {i} put: 'e{i}'")).unwrap();
        times.push(s.commit().unwrap().ticks());
    }
    assert_eq!(s.run("V headcount").unwrap().as_int(), Some(4));
    for (i, t) in times.iter().enumerate() {
        s.run(&format!("System timeDial: {t}")).unwrap();
        assert_eq!(
            s.run("V headcount").unwrap().as_int(),
            Some(i as i64 + 1),
            "the same view method answers in any state"
        );
    }
}

#[test]
fn future_times_read_as_current() {
    let gs = GemStone::in_memory();
    let mut s = gs.login("system").unwrap();
    s.run("D := Dictionary new. D at: #x put: 1").unwrap();
    s.commit().unwrap();
    let v = s.run("D ! x @ 999999").unwrap();
    assert_eq!(v.as_int(), Some(1), "a future time sees the latest state");
}

#[test]
fn negative_or_bad_dial_arguments_error() {
    let gs = GemStone::in_memory();
    let mut s = gs.login("system").unwrap();
    assert!(matches!(s.run("System timeDial: -3"), Err(GemError::TypeMismatch { .. })));
    s.run("D := Dictionary new. D at: #x put: 1").unwrap();
    s.commit().unwrap();
    assert!(s.run("D ! x @ 'yesterday'").is_err());
}

#[test]
fn uncommitted_writes_are_invisible_to_as_of_reads() {
    let gs = GemStone::in_memory();
    let mut s = gs.login("system").unwrap();
    s.run("D := Dictionary new. D at: #x put: 1").unwrap();
    let t = s.commit().unwrap().ticks();
    s.run("D at: #x put: 99").unwrap(); // pending
    assert_eq!(s.run(&format!("D ! x @ {t}")).unwrap().as_int(), Some(1));
    assert_eq!(s.run("D at: #x").unwrap().as_int(), Some(99), "current read sees pending");
    s.abort();
    assert_eq!(s.run("D at: #x").unwrap().as_int(), Some(1));
}

#[test]
fn transient_objects_have_no_past() {
    let gs = GemStone::in_memory();
    let mut s = gs.login("system").unwrap();
    let v = s.run("| d | d := Dictionary new. d at: #x put: 5. d ! x @ 1").unwrap();
    assert!(v.is_nil(), "an uncommitted object did not exist at t1");
}
