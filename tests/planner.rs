//! E-plan: the live statistics observatory feeding the cost-based planner.
//!
//! Four contracts from the issue: (a) on a skewed 3-way join the
//! cost-based order is counter-provably cheaper than the fixed PR 1
//! declaration-order plan; (b) a seeded drift scenario emits a journaled
//! `PlanDrift` and the *next* execution re-plans over fresh statistics to
//! a cheaper plan (`replan = true`); (c) replay determinism still holds
//! with every `stats_update`/`plan_choice`/`plan_drift` event in the
//! stream; (d) statistics stay off by default, so an untouched database
//! plans exactly as before and moves none of the new counters.

use gemstone::{
    replay, DiagnosticBundle, GemStone, Journal, JournalConfig, JournalEvent, Session, StoreConfig,
    Telemetry,
};
use gemstone_calculus::{CmpOp, Pred, Query, Range, Term, VarId};
use gemstone_object::ElemName;
use gemstone_opal::OpalWorld;

mod common;
use common::diag_dir;

/// Skewed order-entry data: 40 orders spread evenly over 5 customers
/// (selective equi-join, 1 match per probe) and bunched into a single
/// region shared by all 5 region rows (explosive equi-join, 5 matches per
/// probe). Every join path carries a directory, so the statistics layer
/// sees cardinalities and key distributions for all three sets.
fn build_skew(s: &mut Session) -> (Query, Query) {
    s.run(
        "| t | Orders := Bag new. Customers := Bag new. Regions := Bag new.
         1 to: 8 do: [:r |
             1 to: 5 do: [:c |
                 t := Dictionary new.
                 t at: #Cust put: c. t at: #Region put: 7.
                 Orders add: t]].
         1 to: 5 do: [:c |
             t := Dictionary new. t at: #Cust put: c. Customers add: t].
         1 to: 5 do: [:i |
             t := Dictionary new. t at: #Region put: 7. Regions add: t].",
    )
    .expect("populate");
    s.commit().expect("commit data");
    s.run("System createIndexOn: Orders path: #Cust").expect("index Orders");
    s.run("System createIndexOn: Orders path: #Region").expect("index Orders region");
    s.run("System createIndexOn: Customers path: #Cust").expect("index Customers");
    s.run("System createIndexOn: Regions path: #Region").expect("index Regions");
    s.commit().expect("commit");

    let (o_sym, r_sym, c_sym) = (s.intern("Orders"), s.intern("Regions"), s.intern("Customers"));
    let o = s.get_global(o_sym).expect("Orders");
    let r = s.get_global(r_sym).expect("Regions");
    let c = s.get_global(c_sym).expect("Customers");
    let cust = ElemName::Sym(s.intern("Cust"));
    let region = ElemName::Sym(s.intern("Region"));
    let label = s.intern("Cust");
    let (v0, v1, v2) = (VarId(0), VarId(1), VarId(2));
    // Declaration order puts the explosive Regions join *first*: the fixed
    // PR 1 translation must execute it first, while the cost-based planner
    // is free to reorder the selective Customers join ahead of it.
    let three_way = Query {
        result: vec![(label, Term::Path(v0, vec![cust]))],
        ranges: vec![
            Range { var: v0, domain: Term::Const(o) },
            Range { var: v1, domain: Term::Const(r) },
            Range { var: v2, domain: Term::Const(c) },
        ],
        pred: Pred::Cmp(Term::Path(v0, vec![region]), CmpOp::Eq, Term::Path(v1, vec![region]))
            .and(Pred::Cmp(Term::Path(v0, vec![cust]), CmpOp::Eq, Term::Path(v2, vec![cust]))),
    };
    let cust2 = ElemName::Sym(s.intern("Cust"));
    let two_way = Query {
        result: vec![(label, Term::Path(v0, vec![cust2]))],
        ranges: vec![
            Range { var: v0, domain: Term::Const(o) },
            Range { var: v1, domain: Term::Const(c) },
        ],
        pred: Pred::Cmp(Term::Path(v0, vec![cust2]), CmpOp::Eq, Term::Path(v1, vec![cust2])),
    };
    (three_way, two_way)
}

/// Total row traffic a query actually caused, from the exact operator
/// counters: rows scanned + directory rows visited + hash build/probe
/// work. The currency both plans are priced in.
fn row_visits(s: &Session) -> u64 {
    let p = s.last_plan_stats().expect("a planned query");
    p.rows_scanned + p.index_rows + p.hash_builds + p.hash_probes
}

// ---------------------------------------------- cost-based join ordering

/// (a) The acceptance skew: declaration order joins the explosive Regions
/// pair first (200 intermediate rows through the second join), the
/// cost-based order joins selective Customers first (40). Same 200
/// answers, counter-provably less work.
#[test]
fn cost_based_order_beats_declaration_order_on_skew() {
    let gs = GemStone::in_memory();
    let mut s = gs.login("system").unwrap();
    let (q, _) = build_skew(&mut s);

    // Fixed PR 1 behavior: statistics off, declaration order, directories
    // probed reflexively.
    let before = s.metrics();
    let rows = s.query(&q).unwrap();
    assert_eq!(rows.len(), 200, "8 orders per customer x 5 region rows x 5 customers");
    let fixed = s.last_decision().expect("decision recorded").clone();
    let fixed_cost = row_visits(&s);
    let d = s.metrics().diff(&before);
    assert!(!fixed.cost_based, "without statistics the planner must not claim cost basis");
    assert_eq!(d.counter("calculus.plan.choices"), 0, "stats off: no plan-choice events");

    // Train the statistics catalog and replan the identical query.
    let trained = gs.database().enable_stats().unwrap();
    assert!(trained >= 3, "one stats refresh per directory, got {trained}");
    let before = s.metrics();
    let rows = s.query(&q).unwrap();
    assert_eq!(rows.len(), 200, "the reordered plan answers the same rows");
    let chosen = s.last_decision().expect("decision recorded").clone();
    let chosen_cost = row_visits(&s);
    let d = s.metrics().diff(&before);

    assert!(chosen.cost_based, "statistics drove this choice");
    assert_ne!(chosen.canon, fixed.canon, "the skew must change the chosen plan");
    assert!(chosen.alternatives.len() >= 2, "considered alternatives are recorded");
    let (first_canon, first_cost) = &chosen.alternatives[0];
    assert_eq!(first_canon, &chosen.canon, "chosen plan leads the alternatives");
    assert_eq!(*first_cost, chosen.est_cost);
    for (_, cost) in &chosen.alternatives[1..] {
        assert!(*cost >= chosen.est_cost, "no considered alternative may be cheaper");
    }

    // The counter proof: the cost-based order does strictly less row work,
    // with the hash-join counters showing the selective join ran first.
    assert!(
        chosen_cost < fixed_cost,
        "cost-based {chosen_cost} row visits must beat declaration order {fixed_cost}"
    );
    let p = s.last_plan_stats().unwrap();
    assert!(p.hash_probes > 0, "the chosen plan is a hash-join order");
    assert_eq!(
        p.hash_probes, 80,
        "40 orders probe Customers, then 40 surviving rows probe Regions"
    );
    assert_eq!(d.counter("calculus.plan.choices"), 1);
    assert_eq!(d.counter("calculus.plan.cost_based"), 1);
    assert_eq!(d.counter("calculus.plan.drift"), 0, "fresh statistics: estimates hold");
}

/// (d) Estimates ride the analyzed profile: with fresh statistics every
/// operator's estimate lands within the drift threshold of its actual,
/// and the rendered analysis shows the est/err% column.
#[test]
fn analyzed_profile_carries_estimates() {
    let gs = GemStone::in_memory();
    let mut s = gs.login("system").unwrap();
    let (q, _) = build_skew(&mut s);
    gs.database().enable_stats().unwrap();

    let rows = s.query_analyzed(&q).unwrap();
    assert_eq!(rows.len(), 200);
    let profile = s.last_profile().expect("profiled run");
    let estimated: Vec<_> = profile.nodes.iter().filter_map(|n| n.est_rows).collect();
    assert_eq!(estimated.len(), profile.nodes.len(), "every operator carries an estimate");
    assert!(profile.worst_estimate().is_some());
    let rendered = s.render_analysis().expect("analysis rendered");
    assert!(rendered.contains("est="), "estimate column: {rendered}");
    assert!(rendered.contains("err="), "error column: {rendered}");
}

// ------------------------------------------------------- drift + replan

/// (b) The seeded drift scenario. Statistics are trained while Orders is
/// tiny, then maintenance is frozen and Orders grows 100x with almost
/// entirely non-matching keys. The stale-planned execution misses its
/// estimates by far more than the drift threshold → journaled `PlanDrift`
/// → the sets are marked stale → the next execution refreshes, re-plans
/// to a different, cheaper plan, and flags `replan`.
#[test]
fn drift_triggers_replan_to_cheaper_plan() {
    let gs = GemStone::in_memory();
    let mut s = gs.login("system").unwrap();
    s.run(
        "| t | Orders := Bag new. Customers := Bag new.
         1 to: 4 do: [:c |
             t := Dictionary new. t at: #Cust put: c. Orders add: t].
         1 to: 40 do: [:c |
             t := Dictionary new. t at: #Cust put: c. Customers add: t].",
    )
    .unwrap();
    s.commit().unwrap();
    s.run("System createIndexOn: Orders path: #Cust").unwrap();
    s.run("System createIndexOn: Customers path: #Cust").unwrap();
    s.commit().unwrap();

    let (o_sym, c_sym) = (s.intern("Orders"), s.intern("Customers"));
    let o = s.get_global(o_sym).expect("Orders");
    let c = s.get_global(c_sym).expect("Customers");
    let cust = ElemName::Sym(s.intern("Cust"));
    let label = s.intern("Cust");
    let (v0, v1) = (VarId(0), VarId(1));
    // Probe Customers by each order's key: cheap while Orders has 4 rows.
    let q = Query {
        result: vec![(label, Term::Path(v0, vec![cust]))],
        ranges: vec![
            Range { var: v0, domain: Term::Const(o) },
            Range { var: v1, domain: Term::Const(c) },
        ],
        pred: Pred::Cmp(Term::Path(v0, vec![cust]), CmpOp::Eq, Term::Path(v1, vec![cust])),
    };

    // Train on the tiny shape, then freeze maintenance so the catalog
    // goes stale on purpose (the seeded scenario).
    gs.database().enable_stats().unwrap();
    gs.database().set_stats_maintenance(false);
    s.run(
        "| t | 1 to: 396 do: [:i |
             t := Dictionary new. t at: #Cust put: i + 100. Orders add: t]",
    )
    .unwrap();
    s.commit().unwrap();

    // Execution 1: planned against the stale catalog (Orders "has 4 rows"),
    // profiled so actuals come back. 400 actual scan rows against an
    // estimate of 4 is a 100x miss — far past the drift threshold.
    let before = s.metrics();
    let rows = s.query_analyzed(&q).unwrap();
    assert_eq!(rows.len(), 4, "only the 4 original orders match a customer");
    let stale = s.last_decision().unwrap().clone();
    let stale_cost = row_visits(&s);
    let d = s.metrics().diff(&before);
    assert!(stale.cost_based && !stale.replan);
    assert_eq!(d.counter("calculus.plan.drift"), 1, "the estimate miss is journaled");
    assert_eq!(d.counter("calculus.plan.replans"), 0, "drift is detected, not yet repaired");

    // Execution 2: the drift marked both sets stale, so planning starts
    // with a refresh (even though maintenance stays frozen), re-plans
    // against honest cardinalities, and does strictly less work.
    let before = s.metrics();
    let rows = s.query_analyzed(&q).unwrap();
    assert_eq!(rows.len(), 4, "same answer after the re-plan");
    let fresh = s.last_decision().unwrap().clone();
    let fresh_cost = row_visits(&s);
    let d = s.metrics().diff(&before);
    assert!(fresh.replan, "the re-optimization protocol flags the re-plan");
    assert_ne!(fresh.canon, stale.canon, "honest statistics change the plan");
    assert!(
        fresh_cost < stale_cost,
        "re-planned execution ({fresh_cost} row visits) must beat the stale plan ({stale_cost})"
    );
    assert!(d.counter("calculus.stats.updates") >= 2, "the refresh is journaled");
    assert_eq!(d.counter("calculus.plan.replans"), 1);
    assert_eq!(d.counter("calculus.plan.drift"), 0, "fresh estimates hold");
}

// --------------------------------------------------- journal integration

/// (c) Replay determinism with the full statistics event set in the
/// stream, and the v4 events appear in the order the protocol promises:
/// training updates, then choices, a drift episode, the drift-triggered
/// refresh, and finally the re-planning choice.
#[test]
fn stats_events_replay_byte_exact() {
    let dir = diag_dir("plan-events");
    let gs = {
        let telemetry = Telemetry::new();
        telemetry.journal.start(JournalConfig::at(dir.path())).expect("journal start");
        GemStone::create_with(StoreConfig::default(), telemetry).expect("create")
    };
    let mut s = gs.login("system").unwrap();
    let (q3, q2) = build_skew(&mut s);
    gs.database().enable_stats().unwrap();
    s.query(&q3).unwrap();
    // Seed a drift: freeze maintenance, then grow the side the stale plan
    // scans (Customers) 13x with non-matching keys, and run analyzed twice.
    gs.database().set_stats_maintenance(false);
    s.run(
        "| t | 1 to: 59 do: [:i |
             t := Dictionary new. t at: #Cust put: i + 100. Customers add: t]",
    )
    .unwrap();
    s.commit().unwrap();
    s.query_analyzed(&q2).unwrap();
    s.query_analyzed(&q2).unwrap();

    let live = gs.database().metrics_snapshot();
    gs.telemetry().journal.flush();
    let readout = Journal::read_from(&dir).expect("readable journal");
    assert!(readout.complete);
    let replayed = replay(&readout.events).snapshot();
    assert_eq!(
        replayed.to_json_lines(),
        live.to_json_lines(),
        "replaying the stats-era journal must reproduce the live snapshot byte-for-byte"
    );

    let updates =
        readout.events.iter().filter(|e| matches!(e, JournalEvent::StatsUpdate { .. })).count();
    assert!(updates >= 3, "training + drift refresh, got {updates}");
    let drifts: Vec<usize> = readout
        .events
        .iter()
        .enumerate()
        .filter_map(|(i, e)| matches!(e, JournalEvent::PlanDrift { .. }).then_some(i))
        .collect();
    assert_eq!(drifts.len(), 1, "exactly one drift episode");
    let replans: Vec<usize> = readout
        .events
        .iter()
        .enumerate()
        .filter_map(|(i, e)| {
            matches!(e, JournalEvent::PlanChoice { replan: true, .. }).then_some(i)
        })
        .collect();
    assert_eq!(replans.len(), 1, "exactly one re-planning choice");
    assert!(drifts[0] < replans[0], "drift is journaled before the re-plan that repairs it");
    let refresh_after_drift = readout.events[drifts[0]..replans[0]]
        .iter()
        .any(|e| matches!(e, JournalEvent::StatsUpdate { .. }));
    assert!(refresh_after_drift, "the drift-triggered refresh lands between drift and re-plan");
}

/// The doctor's planner-health section end to end: a journaled run with a
/// drift episode distills into a bundle whose `PlannerProfile` carries the
/// choice counts, the per-set refreshes, the worst statement, and the
/// drift episode — rendered and in the `--out` JSON document.
#[test]
fn doctor_bundle_reports_planner_health() {
    let dir = diag_dir("plan-doctor");
    let gs = {
        let telemetry = Telemetry::new();
        telemetry.journal.start(JournalConfig::at(dir.path())).expect("journal start");
        GemStone::create_with(StoreConfig::default(), telemetry).expect("create")
    };
    let mut s = gs.login("system").unwrap();
    let (_, q2) = build_skew(&mut s);
    gs.database().enable_stats().unwrap();
    gs.database().set_stats_maintenance(false);
    s.run(
        "| t | 1 to: 59 do: [:i |
             t := Dictionary new. t at: #Cust put: i + 100. Customers add: t]",
    )
    .unwrap();
    s.commit().unwrap();
    s.query_analyzed(&q2).unwrap();
    s.query_analyzed(&q2).unwrap();

    let live = gs.database().metrics_snapshot();
    gs.telemetry().journal.flush();
    let readout = Journal::read_from(&dir).expect("readable journal");
    let bundle = DiagnosticBundle::build(&readout, Some(&live), "test");
    let p = &bundle.planner;
    assert_eq!(p.choices, 2, "two analyzed executions, one choice each");
    assert_eq!(p.cost_based, 2);
    assert_eq!(p.replans, 1, "the second execution re-planned");
    assert!(p.stats_updates >= 4, "training + drift refresh, got {}", p.stats_updates);
    assert_eq!(p.drift_episodes.len(), 1, "the drift episode is kept");
    assert!(p.drift_episodes[0].err_pct.abs() >= 300, "a seeded 13x miss");
    assert_eq!(p.worst_statements.len(), 1, "one statement drifted");
    assert!(!p.set_refreshes.is_empty(), "per-set refresh counts survive");
    let text = bundle.render();
    assert!(text.contains("planner health:"), "{text}");
    assert!(text.contains("drift:"), "{text}");
    let json = bundle.to_json();
    assert!(json.contains("\"planner\": {\"choices\":2,\"cost_based\":2,\"replans\":1"), "{json}");
    assert!(json.contains("\"drift_episodes\":[{\"session\":"), "{json}");
}

/// (d) Off by default: a database that never calls `enable_stats` moves
/// none of the statistics counters and plans in declaration order — the
/// PR 1 contract, byte for byte.
#[test]
fn stats_off_is_the_pr1_planner() {
    let gs = GemStone::in_memory();
    let mut s = gs.login("system").unwrap();
    let (q, _) = build_skew(&mut s);
    assert!(!gs.database().stats_enabled());

    let before = s.metrics();
    s.query(&q).unwrap();
    s.commit().unwrap();
    let d = s.metrics().diff(&before);
    for c in [
        "calculus.stats.updates",
        "calculus.plan.choices",
        "calculus.plan.cost_based",
        "calculus.plan.replans",
        "calculus.plan.drift",
    ] {
        assert_eq!(d.counter(c), 0, "{c} must stay untouched with statistics off");
    }
    assert_eq!(s.render_stats(), "(statistics catalog empty — enable with Database::enable_stats)");
}
