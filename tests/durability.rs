//! Process-level durability: the ack is the promise.
//!
//! PR 8 satellite. The `durable_writer` helper binary appends commits to a
//! file-backed database and prints `ack <i>` only after each commit's root
//! page is fsynced. This harness SIGKILLs the writer at a random ack —
//! while the next commit is typically mid-write — reopens the database in
//! this process, and asserts that every acknowledged commit survived and
//! that nothing partial is visible: the log is an exact `0..k` prefix with
//! at most the one in-flight commit beyond the last ack.
//!
//! The database lives under `target/durability/<test>-<pid>` so a failing
//! CI job uploads the file for post-mortem; on success the guard removes it.

mod common;
use common::scratch_dir;

use gemstone::GemStone;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::{BufRead, BufReader};
use std::path::Path;
use std::process::{Command, Stdio};

/// Run the writer asking for `commits` appends, SIGKILL it after reading
/// `kill_at` acks. Returns the highest acked value.
fn run_and_kill(db: &Path, commits: usize, kill_at: usize) -> i64 {
    let mut child = Command::new(env!("CARGO_BIN_EXE_durable_writer"))
        .arg(db)
        .arg(commits.to_string())
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn durable_writer");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut last_acked = -1i64;
    let mut seen = 0usize;
    for line in BufReader::new(stdout).lines() {
        let line = line.expect("writer stdout");
        let v: i64 = line
            .strip_prefix("ack ")
            .unwrap_or_else(|| panic!("unexpected writer output: {line:?}"))
            .parse()
            .expect("ack value");
        last_acked = v;
        seen += 1;
        if seen >= kill_at {
            // `Child::kill` is SIGKILL on unix: no destructors, no flush —
            // the writer dies wherever it happens to be.
            child.kill().expect("SIGKILL writer");
            break;
        }
    }
    child.wait().expect("reap writer");
    last_acked
}

/// Reopen the database and assert every ack survived with nothing partial.
/// Returns the recovered log size.
fn assert_acked_prefix(db: &Path, last_acked: i64) -> i64 {
    let gs = GemStone::open_file(db, 64).expect("reopen after SIGKILL");
    let mut s = gs.login("system").expect("login");
    let k = s.run("Log size").expect("Log size").as_int().expect("integer");
    assert!(
        k > last_acked,
        "durability violation: last ack was {last_acked} but only {k} commits survived"
    );
    // Nothing phantom either: beyond the acks at most the single in-flight
    // commit may have reached the disk before the kill landed.
    assert!(k <= last_acked + 2, "log size {k} vs last ack {last_acked}: impossible surplus");
    for j in 1..=k {
        let v = s.run(&format!("Log at: {j}")).expect("Log at:").as_int().expect("integer");
        assert_eq!(v, j - 1, "slot {j} holds a torn or reordered value");
    }
    k
}

/// SIGKILL the writer mid-stream twice — once against a fresh database and
/// once against the recovered one — and prove all acked commits survive.
#[test]
fn acked_commits_survive_sigkill() {
    let dir = scratch_dir("target/durability", "sigkill");
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let db = dir.join("kill.gem");
    let mut rng = StdRng::seed_from_u64(u64::from(std::process::id()));

    let kill_at = rng.gen_range(5usize..25);
    let acked = run_and_kill(&db, 40, kill_at);
    assert!(acked >= 0, "writer acked nothing before the kill point");
    let k = assert_acked_prefix(&db, acked);

    // Round 2: the recovered database keeps accepting commits where the
    // log left off, and survives a second kill.
    let kill_at2 = rng.gen_range(3usize..12);
    let acked2 = run_and_kill(&db, 40, kill_at2);
    assert!(acked2 >= k, "resumed writer continues from the recovered prefix");
    assert_acked_prefix(&db, acked2);
}

/// A writer allowed to run to completion leaves a database whose reopen
/// sees every commit — the no-crash baseline for the kill test above.
#[test]
fn uninterrupted_writer_round_trips() {
    let dir = scratch_dir("target/durability", "baseline");
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let db = dir.join("clean.gem");

    let acked = run_and_kill(&db, 12, usize::MAX);
    assert_eq!(acked, 11, "writer acked all 12 commits");
    let k = assert_acked_prefix(&db, acked);
    assert_eq!(k, 12);
}
