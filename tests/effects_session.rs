//! Effect summaries at the session boundary: the shared per-database
//! summary cache invalidates on method (re)installation, summaries never
//! go stale across `add_method_code`, and transactions whose every
//! statement proves Pure/ReadOnly commit on the static fast path.

use gemstone::GemStone;

/// A callee re-install flips its callers' summaries ReadOnly →
/// WritesGlobal and back — the cache serves the *current* program, not
/// the one that existed when the summary was first computed.
#[test]
fn reinstall_flips_caller_summary_and_back() {
    let gs = GemStone::in_memory();
    let mut s = gs.login("system").unwrap();
    s.run("Object subclass: 'Probe' instVarNames: #()").unwrap();
    s.run("Probe compile: 'peek ^1'").unwrap();
    s.run("Probe compile: 'poll ^self peek'").unwrap();

    let before = s.metrics();
    let summary = s.method_effects("Probe", "poll").unwrap();
    assert!(summary.effect.is_read_only(), "fresh poll is read-only, got {}", summary.effect);
    assert!(summary.globals_written.is_empty());
    assert!(s.metrics().diff(&before).counter("opal.effects.computed") > 0);

    // Re-install the callee with a globally visible effect (a commit
    // through `System`): the cached caller summary must be dropped and
    // recomputed as WritesGlobal.
    let before = s.metrics();
    s.run("Probe compile: 'peek System commitTransaction. ^1'").unwrap();
    assert!(
        s.metrics().diff(&before).counter("opal.effects.invalidations") > 0,
        "re-install did not invalidate the summary cache"
    );
    let summary = s.method_effects("Probe", "poll").unwrap();
    assert_eq!(summary.effect.as_str(), "WritesGlobal", "stale summary survived re-install");

    // And back: restoring the pure callee restores the caller's verdict.
    s.run("Probe compile: 'peek ^1'").unwrap();
    let summary = s.method_effects("Probe", "poll").unwrap();
    assert!(
        summary.effect.is_read_only(),
        "summary did not recover after restoring the callee, got {}",
        summary.effect
    );
}

/// `add_method_code` (the raw install path, no `compile:` sugar) also
/// invalidates — no entry point may leave a stale summary behind.
#[test]
fn add_method_code_invalidates_cached_summaries() {
    let gs = GemStone::in_memory();
    let mut s = gs.login("system").unwrap();
    s.run("Object subclass: 'Raw' instVarNames: #()").unwrap();
    s.run("Raw compile: 'leaf ^7'").unwrap();
    let first = s.method_effects("Raw", "leaf").unwrap();
    assert!(first.effect.is_read_only());

    // Compiling a *doIt* goes through add_doit_code and must NOT
    // invalidate (doIts are never call-graph targets).
    let before = s.metrics();
    s.run("3 + 4").unwrap();
    assert_eq!(
        s.metrics().diff(&before).counter("opal.effects.invalidations"),
        0,
        "running a doIt needlessly flushed the summary cache"
    );

    // A real method install through the same raw path does invalidate,
    // and the follow-up query recomputes rather than serving stale state.
    let before = s.metrics();
    s.run("Raw compile: 'leaf ^OrderedCollection new'").unwrap();
    let diff = s.metrics().diff(&before);
    assert!(diff.counter("opal.effects.invalidations") > 0);
    let second = s.method_effects("Raw", "leaf").unwrap();
    assert_eq!(second.effect.as_str(), "WritesLocal");
}

/// The tentpole consumer: a transaction of statically-classified
/// read-only statements commits via the lock-free fast path (counted by
/// `opal.effects.static_ro_commits`); any write drops the transaction
/// back to the full path.
#[test]
fn static_read_only_transactions_take_the_fast_commit_path() {
    let gs = GemStone::in_memory();
    let mut s = gs.login("system").unwrap();
    s.run("Object subclass: 'Emp' instVarNames: #('salary')").unwrap();
    s.run(
        "Staff := OrderedCollection new.
         Staff add: (Emp new salary: 10; yourself).
         Staff add: (Emp new salary: 30; yourself)",
    )
    .unwrap();
    s.commit().unwrap();

    // Pure reads: every statement classifies read-only before running.
    let before = s.metrics();
    assert_eq!(s.run("Staff size").unwrap().as_int(), Some(2));
    s.run("3 + 4 * 2").unwrap();
    s.commit().unwrap();
    let diff = s.metrics().diff(&before);
    assert_eq!(diff.counter("opal.effects.static_ro_commits"), 1, "fast path not taken");
    assert!(diff.counter("opal.effects.stmts_static_ro") >= 2);
    assert!(diff.counter("opal.effects.stmts_classified") >= 2);

    // One write in the transaction clears the static flag: the commit
    // succeeds but on the full path.
    let before = s.metrics();
    s.run("Staff size").unwrap();
    s.run("Staff add: (Emp new salary: 99; yourself)").unwrap();
    s.commit().unwrap();
    assert_eq!(
        s.metrics().diff(&before).counter("opal.effects.static_ro_commits"),
        0,
        "a writing transaction slipped onto the read-only fast path"
    );
    assert_eq!(s.run("Staff size").unwrap().as_int(), Some(3));
}
