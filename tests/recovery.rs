//! Experiments C5 and C10: safe writes and replication through the full
//! system — a crash anywhere inside a commit group leaves the previous
//! committed state intact, and mirrored replicas survive single-disk loss.

use gemstone::{Database, FaultPlan, GemStone, ReadFault, StoreConfig, TearClass};

fn small_cfg() -> StoreConfig {
    StoreConfig { track_size: 1024, cache_tracks: 32, replicas: 1 }
}

#[test]
fn schema_and_data_survive_restart() {
    let gs = GemStone::create(small_cfg()).unwrap();
    let mut s = gs.login("system").unwrap();
    s.run(
        "| e |
         Object subclass: 'Employee' instVarNames: #('name' 'salary').
         Employee compile: 'raise salary := salary + 1000. ^salary'.
         Staff := Set new.
         e := Employee new. e name: 'Ellen'. e salary: 24650. Staff add: e",
    )
    .unwrap();
    s.commit().unwrap();
    drop(s);
    let disk = gs.shutdown().unwrap();

    let gs2 = GemStone::open(disk, 32).unwrap();
    let mut s = gs2.login("system").unwrap();
    // Data, classes AND recompiled methods all work.
    let v = s.run("(Staff detect: [:e | true]) raise").unwrap();
    assert_eq!(v.as_int(), Some(25650));
    let v = s.run("Staff first isKindOf: Employee").unwrap();
    assert_eq!(v.as_bool(), Some(true));
}

#[test]
fn crash_during_commit_is_all_or_nothing() {
    // Try crashing at every write position inside the second commit's
    // safe-write group; recovery must always see exactly the first commit.
    for fail_after in 0..8 {
        let gs = GemStone::create(small_cfg()).unwrap();
        let mut s = gs.login("system").unwrap();
        s.run("D := Dictionary new. D at: #v put: 'first'. D at: #w put: 'keep'").unwrap();
        s.commit().unwrap();

        s.run("D at: #v put: 'second'. D at: #extra put: 'x'").unwrap();
        // Arm crash injection directly on the store's disk.
        arm_crash(gs.database(), fail_after);
        let res = s.commit();
        drop(s);
        let mut disk = gs.shutdown().unwrap();
        disk.replica_mut(0).revive();

        let gs2 = GemStone::open(disk, 32).unwrap();
        let mut s2 = gs2.login("system").unwrap();
        let v = s2.run_display("D at: #v").unwrap();
        let extra = s2.run("(D at: #extra) isNil").unwrap().as_bool().unwrap();
        if res.is_ok() {
            assert_eq!(v, "'second'", "fail_after={fail_after}");
            assert!(!extra);
        } else {
            assert_eq!(v, "'first'", "fail_after={fail_after}: torn commit must vanish");
            assert!(extra, "fail_after={fail_after}: no partial commit");
        }
        assert_eq!(s2.run_display("D at: #w").unwrap(), "'keep'");
    }
}

fn arm_crash(db: &std::sync::Arc<Database>, after_writes: u64) {
    // Reach the disk through the database's test accessor.
    db.with_disk(|disk| disk.replica_mut(0).fail_after_writes(after_writes));
}

#[test]
fn crash_during_recovery_double_fault() {
    // Power loss mid-commit, then recovery itself is interrupted — twice,
    // at different reads — before being allowed through. Recovery is
    // read-only, so each interrupted attempt must fail cleanly (never fall
    // back to a stale root) and leave the platter untouched for the retry.
    let gs = GemStone::create(small_cfg()).unwrap();
    let mut s = gs.login("system").unwrap();
    s.run("D := Dictionary new. D at: #v put: 'first'").unwrap();
    s.commit().unwrap();
    s.run("D at: #v put: 'second'").unwrap();
    arm_crash(gs.database(), 2);
    assert!(s.commit().is_err());
    drop(s);
    let mut disk = gs.shutdown().unwrap();
    disk.replica_mut(0).revive();

    for fault_at_read in [0u64, 2] {
        let mut d = disk.clone();
        d.replica_mut(0).set_fault_plan(FaultPlan {
            read_fault: Some(ReadFault { after_reads: fault_at_read, count: 1 }),
            ..FaultPlan::default()
        });
        assert!(
            GemStone::open(d, 32).is_err(),
            "recovery interrupted at read {fault_at_read} must abort, not improvise"
        );
    }

    // Third attempt, no faults: identical platter, full recovery.
    let gs2 = GemStone::open(disk, 32).unwrap();
    let mut s2 = gs2.login("system").unwrap();
    assert_eq!(s2.run_display("D at: #v").unwrap(), "'first'", "torn commit stays invisible");
    let rep = s2.recovery_report();
    assert_eq!(rep.roots_considered, 2);
    assert!(rep.roots_valid >= 1);
    assert!(rep.tracks_discarded >= 1, "the torn commit's shadow tracks are orphans");
}

#[test]
fn torn_write_inside_track_header() {
    // Tear the commit group's final write — the root itself — inside the
    // TRACK_HEADER: once within the 4-byte length field, once within the
    // 8-byte checksum field. Both must leave the previous root ruling.
    for tear in [TearClass::HeaderLen, TearClass::HeaderSum] {
        // First pass measures how many writes the commit performs, so the
        // second pass can tear exactly the last one.
        let writes = {
            let gs = GemStone::create(small_cfg()).unwrap();
            let mut s = gs.login("system").unwrap();
            s.run("D := Dictionary new. D at: #v put: 'first'").unwrap();
            s.commit().unwrap();
            gs.database().with_disk(|d| d.replica_mut(0).set_fault_plan(FaultPlan::trace()));
            s.run("D at: #v put: 'second'").unwrap();
            s.commit().unwrap();
            gs.database().with_disk(|d| d.replica_mut(0).take_write_trace().len() as u64)
        };
        assert!(writes >= 2, "commit writes data tracks then the root");

        let gs = GemStone::create(small_cfg()).unwrap();
        let mut s = gs.login("system").unwrap();
        s.run("D := Dictionary new. D at: #v put: 'first'").unwrap();
        s.commit().unwrap();
        s.run("D at: #v put: 'second'").unwrap();
        gs.database().with_disk(|d| {
            d.replica_mut(0).set_fault_plan(FaultPlan {
                crash_after_writes: Some(writes - 1),
                tear,
                ..FaultPlan::default()
            })
        });
        assert!(s.commit().is_err(), "{tear:?}: root write torn");
        drop(s);
        let mut disk = gs.shutdown().unwrap();
        disk.replica_mut(0).revive();

        let gs2 = GemStone::open(disk, 32).unwrap();
        let mut s2 = gs2.login("system").unwrap();
        assert_eq!(
            s2.run_display("D at: #v").unwrap(),
            "'first'",
            "{tear:?}: header-torn root must not validate"
        );
        let rep = s2.recovery_report();
        assert_eq!(rep.roots_considered, 2, "{tear:?}");
        assert!(rep.roots_valid >= 1, "{tear:?}");
    }
}

#[test]
fn replicated_database_survives_primary_loss() {
    let cfg = StoreConfig { track_size: 1024, cache_tracks: 0, replicas: 2 };
    let gs = GemStone::create(cfg).unwrap();
    let mut s = gs.login("system").unwrap();
    s.run("D := Dictionary new. D at: #v put: 42").unwrap();
    s.commit().unwrap();
    // Kill the primary.
    gs.database().with_disk(|disk| {
        disk.replica_mut(0).fail_after_writes(0);
        let _ = disk.replica_mut(0).write_track(gemstone::TrackId(500), b"x");
    });
    // Force refaulting from disk (mirror) by bounding the object cache.
    gs.database().set_object_cache_limit(Some(0));
    gs.database().set_object_cache_limit(None);
    s.commit().unwrap();
    let v = s.run("D at: #v").unwrap();
    assert_eq!(v.as_int(), Some(42), "mirror serves reads after primary loss");
    // Writes still succeed (degraded).
    s.run("D at: #v put: 43").unwrap();
    s.commit().unwrap();
    assert_eq!(s.run("D at: #v").unwrap().as_int(), Some(43));
}

#[test]
fn many_commits_then_recover_everything() {
    let gs = GemStone::create(small_cfg()).unwrap();
    let mut s = gs.login("system").unwrap();
    s.run("Ledger := Dictionary new").unwrap();
    s.commit().unwrap();
    for i in 0..30 {
        s.run(&format!("Ledger at: {i} put: {}", i * i)).unwrap();
        s.commit().unwrap();
    }
    drop(s);
    let disk = gs.shutdown().unwrap();
    let gs2 = GemStone::open(disk, 32).unwrap();
    let mut s = gs2.login("system").unwrap();
    assert_eq!(s.run("Ledger size").unwrap().as_int(), Some(30));
    assert_eq!(s.run("Ledger at: 17").unwrap().as_int(), Some(289));
    // Histories intact: entry 5 did not exist before its commit.
    let t_first = 2; // Ledger creation committed at t1; entry 0 at t2
    s.run(&format!("System timeDial: {t_first}")).unwrap();
    assert_eq!(s.run("Ledger size").unwrap().as_int(), Some(1));
}
