//! Experiments C5 and C10: safe writes and replication through the full
//! system — a crash anywhere inside a commit group leaves the previous
//! committed state intact, and mirrored replicas survive single-disk loss.

use gemstone::{Database, GemStone, StoreConfig};

fn small_cfg() -> StoreConfig {
    StoreConfig { track_size: 1024, cache_tracks: 32, replicas: 1 }
}

#[test]
fn schema_and_data_survive_restart() {
    let gs = GemStone::create(small_cfg()).unwrap();
    let mut s = gs.login("system").unwrap();
    s.run(
        "| e |
         Object subclass: 'Employee' instVarNames: #('name' 'salary').
         Employee compile: 'raise salary := salary + 1000. ^salary'.
         Staff := Set new.
         e := Employee new. e name: 'Ellen'. e salary: 24650. Staff add: e",
    )
    .unwrap();
    s.commit().unwrap();
    drop(s);
    let disk = gs.shutdown().unwrap();

    let gs2 = GemStone::open(disk, 32).unwrap();
    let mut s = gs2.login("system").unwrap();
    // Data, classes AND recompiled methods all work.
    let v = s.run("(Staff detect: [:e | true]) raise").unwrap();
    assert_eq!(v.as_int(), Some(25650));
    let v = s.run("Staff first isKindOf: Employee").unwrap();
    assert_eq!(v.as_bool(), Some(true));
}

#[test]
fn crash_during_commit_is_all_or_nothing() {
    // Try crashing at every write position inside the second commit's
    // safe-write group; recovery must always see exactly the first commit.
    for fail_after in 0..8 {
        let gs = GemStone::create(small_cfg()).unwrap();
        let mut s = gs.login("system").unwrap();
        s.run("D := Dictionary new. D at: #v put: 'first'. D at: #w put: 'keep'").unwrap();
        s.commit().unwrap();

        s.run("D at: #v put: 'second'. D at: #extra put: 'x'").unwrap();
        // Arm crash injection directly on the store's disk.
        arm_crash(gs.database(), fail_after);
        let res = s.commit();
        drop(s);
        let mut disk = gs.shutdown().unwrap();
        disk.replica_mut(0).revive();

        let gs2 = GemStone::open(disk, 32).unwrap();
        let mut s2 = gs2.login("system").unwrap();
        let v = s2.run_display("D at: #v").unwrap();
        let extra = s2.run("(D at: #extra) isNil").unwrap().as_bool().unwrap();
        if res.is_ok() {
            assert_eq!(v, "'second'", "fail_after={fail_after}");
            assert!(!extra);
        } else {
            assert_eq!(v, "'first'", "fail_after={fail_after}: torn commit must vanish");
            assert!(extra, "fail_after={fail_after}: no partial commit");
        }
        assert_eq!(s2.run_display("D at: #w").unwrap(), "'keep'");
    }
}

fn arm_crash(db: &std::sync::Arc<Database>, after_writes: u64) {
    // Reach the disk through the database's test accessor.
    db.with_disk(|disk| disk.replica_mut(0).fail_after_writes(after_writes));
}

#[test]
fn replicated_database_survives_primary_loss() {
    let cfg = StoreConfig { track_size: 1024, cache_tracks: 0, replicas: 2 };
    let gs = GemStone::create(cfg).unwrap();
    let mut s = gs.login("system").unwrap();
    s.run("D := Dictionary new. D at: #v put: 42").unwrap();
    s.commit().unwrap();
    // Kill the primary.
    gs.database().with_disk(|disk| {
        disk.replica_mut(0).fail_after_writes(0);
        let _ = disk.replica_mut(0).write_track(gemstone::TrackId(500), b"x");
    });
    // Force refaulting from disk (mirror) by bounding the object cache.
    gs.database().set_object_cache_limit(Some(0));
    gs.database().set_object_cache_limit(None);
    s.commit().unwrap();
    let v = s.run("D at: #v").unwrap();
    assert_eq!(v.as_int(), Some(42), "mirror serves reads after primary loss");
    // Writes still succeed (degraded).
    s.run("D at: #v put: 43").unwrap();
    s.commit().unwrap();
    assert_eq!(s.run("D at: #v").unwrap().as_int(), Some(43));
}

#[test]
fn many_commits_then_recover_everything() {
    let gs = GemStone::create(small_cfg()).unwrap();
    let mut s = gs.login("system").unwrap();
    s.run("Ledger := Dictionary new").unwrap();
    s.commit().unwrap();
    for i in 0..30 {
        s.run(&format!("Ledger at: {i} put: {}", i * i)).unwrap();
        s.commit().unwrap();
    }
    drop(s);
    let disk = gs.shutdown().unwrap();
    let gs2 = GemStone::open(disk, 32).unwrap();
    let mut s = gs2.login("system").unwrap();
    assert_eq!(s.run("Ledger size").unwrap().as_int(), Some(30));
    assert_eq!(s.run("Ledger at: 17").unwrap().as_int(), Some(289));
    // Histories intact: entry 5 did not exist before its commit.
    let t_first = 2; // Ledger creation committed at t1; entry 0 at t2
    s.run(&format!("System timeDial: {t_first}")).unwrap();
    assert_eq!(s.run("Ledger size").unwrap().as_int(), Some(1));
}
