//! T-obs2: the persistent flight recorder, end to end.
//!
//! The tentpole contract: replaying a recorded journal through a fresh
//! registry reproduces the live `MetricsSnapshot` **byte-for-byte** — the
//! determinism test that keeps every emission site honest. Around it:
//! segment rotation stays within its disk budget, unknown schema versions
//! are rejected, the doctor's bundle validates its own cache model against
//! the recorded trace, and structured failures auto-capture a bundle.
//!
//! Journals land under `target/diagnostics/` so a failing CI job uploads
//! them as artifacts.

use gemstone::{
    replay, DiagnosticBundle, GemStone, Journal, JournalConfig, Session, StoreConfig, Telemetry,
    TrackId,
};
use gemstone_calculus::{CmpOp, Pred, Query, Range, Term, VarId};
use gemstone_object::ElemName;
use gemstone_opal::OpalWorld;
use std::path::Path;

mod common;
use common::diag_dir;

/// §5.1-style company data (same fixture as the telemetry suite): the
/// equi-join on the department name answers exactly two rows.
fn build_company(s: &mut Session) -> Query {
    s.run(
        "| t | Employees := Bag new. Departments := Bag new.\n\
         t := Dictionary new. t at: #Name put: 'Peters'. t at: #Dept put: 'Sales'. Employees add: t.\n\
         t := Dictionary new. t at: #Name put: 'Burns'. t at: #Dept put: 'Sales'. Employees add: t.\n\
         t := Dictionary new. t at: #Name put: 'Carter'. t at: #Dept put: 'Marketing'. Employees add: t.\n\
         t := Dictionary new. t at: #Name put: 'Sales'. t at: #Floor put: 1. Departments add: t.\n\
         t := Dictionary new. t at: #Name put: 'Research'. t at: #Floor put: 2. Departments add: t.",
    )
    .expect("populate");
    s.commit().expect("commit");
    let e_sym = s.intern("Employees");
    let d_sym = s.intern("Departments");
    let e = s.get_global(e_sym).expect("Employees");
    let d = s.get_global(d_sym).expect("Departments");
    let dept = ElemName::Sym(s.intern("Dept"));
    let name = ElemName::Sym(s.intern("Name"));
    let floor = ElemName::Sym(s.intern("Floor"));
    let (a, b) = (s.intern("Who"), s.intern("Where"));
    let (v0, v1) = (VarId(0), VarId(1));
    Query {
        result: vec![(a, Term::Path(v0, vec![name])), (b, Term::Path(v1, vec![floor]))],
        ranges: vec![
            Range { var: v0, domain: Term::Const(e) },
            Range { var: v1, domain: Term::Const(d) },
        ],
        pred: Pred::Cmp(Term::Path(v0, vec![dept]), CmpOp::Eq, Term::Path(v1, vec![name])),
    }
}

/// A GemStone whose flight recorder runs from birth: the journal starts
/// *before* the volume is formatted, so the baseline covers creation.
fn recorded_gemstone(dir: &Path, cfg: StoreConfig) -> GemStone {
    let telemetry = Telemetry::new();
    telemetry.journal.start(JournalConfig::at(dir.to_path_buf())).expect("journal start");
    GemStone::create_with(cfg, telemetry).expect("create")
}

// ------------------------------------------------- replay determinism

/// THE acceptance criterion: live workload → journal → replay → the same
/// snapshot, byte-identical through the JSON exporter.
#[test]
fn journal_replay_reproduces_live_snapshot() {
    let dir = diag_dir("replay");
    let gs = recorded_gemstone(&dir, StoreConfig::default());
    let mut s = gs.login("system").unwrap();
    let q = build_company(&mut s);
    let rows = s.query(&q).unwrap();
    assert_eq!(rows.len(), 2, "the join fixture answers two rows");
    s.run("| x | x := OrderedCollection new. x add: 7. x add: 9. x size").unwrap();
    s.run("1 + 2 * 3").unwrap();
    s.commit().unwrap();

    let live = gs.database().metrics_snapshot();
    gs.telemetry().journal.flush();
    let readout = Journal::read_from(&dir).expect("readable journal");
    assert!(readout.complete, "recorded from birth: segment 1 still present");
    let replayed = replay(&readout.events).snapshot();
    assert_eq!(
        replayed.to_json_lines(),
        live.to_json_lines(),
        "replaying the journal must reproduce the live snapshot byte-for-byte"
    );
}

/// Replay determinism holds across a crash/recovery boundary: reopen the
/// volume with a fresh recorder; the `recovery` event plus baseline keep
/// the replay exact.
#[test]
fn replay_survives_reopen() {
    let dir = diag_dir("reopen");
    let gs = GemStone::create(StoreConfig::default()).unwrap();
    let mut s = gs.login("system").unwrap();
    s.run("Stash := OrderedCollection new. Stash add: 1").unwrap();
    s.commit().unwrap();
    drop(s);
    let disk = gs.shutdown().unwrap();

    let telemetry = Telemetry::new();
    telemetry.journal.start(JournalConfig::at(dir.path())).unwrap();
    let gs2 = GemStone::open_with(disk, 64, telemetry).unwrap();
    let mut s2 = gs2.login("system").unwrap();
    s2.run("Stash add: 2. Stash size").unwrap();
    s2.commit().unwrap();

    let live = gs2.database().metrics_snapshot();
    gs2.telemetry().journal.flush();
    let readout = Journal::read_from(&dir).unwrap();
    let replayed = replay(&readout.events).snapshot();
    assert_eq!(replayed.to_json_lines(), live.to_json_lines());
    // The recovery pass itself was recorded.
    let bundle = DiagnosticBundle::build(&readout, Some(&live), "reopen");
    let rec = bundle.recovery.expect("recovery event recorded at reopen");
    assert!(rec.roots_considered >= 1);
    assert_eq!(bundle.replay_matches_live, Some(true));
}

// ------------------------------------------------- rotation & schema

/// Rotation keeps at most `max_segments` files on disk; a truncated
/// journal is flagged incomplete and its replay verdict goes false.
#[test]
fn rotation_bounds_disk_and_flags_incomplete() {
    let dir = diag_dir("rotate");
    let telemetry = Telemetry::new();
    telemetry
        .journal
        .start(JournalConfig { dir: dir.to_path_buf(), max_segment_bytes: 2048, max_segments: 3 })
        .unwrap();
    let gs = GemStone::create_with(StoreConfig::default(), telemetry).unwrap();
    let mut s = gs.login("system").unwrap();
    for i in 0..50 {
        s.run(&format!("{i} + {i}")).unwrap();
    }
    s.commit().unwrap();
    gs.telemetry().journal.flush();

    let segments: Vec<String> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.starts_with("journal-"))
        .collect();
    assert!(segments.len() <= 3, "segment budget exceeded: {segments:?}");
    assert!(segments.len() >= 2, "workload was sized to rotate at least once");

    let readout = Journal::read_from(&dir).unwrap();
    assert!(!readout.complete, "oldest segments were deleted");
    let live = gs.database().metrics_snapshot();
    let bundle = DiagnosticBundle::build(&readout, Some(&live), "rotated");
    assert_eq!(
        bundle.replay_matches_live,
        Some(false),
        "a truncated journal must not claim determinism"
    );
}

/// A journal written by a future build is rejected, not misread.
#[test]
fn unknown_schema_version_is_rejected() {
    let dir = diag_dir("schema");
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("journal-00000001.jsonl"), "{\"e\":\"header\",\"v\":99,\"seq\":1}\n")
        .unwrap();
    let err = Journal::read_from(&dir).unwrap_err();
    assert!(err.contains("schema"), "unexpected error text: {err}");
}

// ------------------------------------------------- the doctor's bundle

/// The bundle's cache model is validated against the recorded trace: at
/// the live capacity the simulated hit/miss counts must equal what the
/// real cache did. Heat map and locality come from the same events.
#[test]
fn doctor_bundle_validates_cache_model_and_heat() {
    let dir = diag_dir("bundle");
    let gs =
        recorded_gemstone(&dir, StoreConfig { track_size: 2048, cache_tracks: 8, replicas: 1 });
    let mut s = gs.login("system").unwrap();
    let q = build_company(&mut s);
    s.query(&q).unwrap();
    s.commit().unwrap();
    // Force re-reads through the small track cache.
    gs.database().set_object_cache_limit(Some(0));
    gs.database().set_object_cache_limit(None);
    s.query(&q).unwrap();
    s.commit().unwrap();
    drop(s);

    let bundle = gs.database().diagnostic_bundle("doctor-test").unwrap();
    assert_eq!(bundle.replay_matches_live, Some(true));
    assert!(!bundle.heat.is_empty(), "commits and faults touched tracks");
    assert!((0.0..=1.0).contains(&bundle.locality_score));
    assert_eq!(bundle.live_capacity, Some(8));
    assert_eq!(
        bundle.sweep_validated,
        Some(true),
        "LRU model must reproduce the recorded hit/miss counts"
    );
    assert!(!bundle.sweep.is_empty());
    assert!(!bundle.slow_statements.is_empty(), "statements were recorded");

    let text = bundle.render();
    assert!(text.contains("track heat map"), "render: {text}");
    assert!(text.contains("cache hit-rate vs size"));
    let json = bundle.to_json();
    assert!(json.contains("\"replay_matches_live\": true"));
    assert!(json.contains("\"locality_score\""));
}

/// A dead disk mid-statement auto-captures `bundle-disk-dead-*.json`
/// beside the journal segments.
#[test]
fn disk_death_auto_captures_bundle() {
    let dir = diag_dir("capture");
    let gs =
        recorded_gemstone(&dir, StoreConfig { track_size: 8192, cache_tracks: 0, replicas: 1 });
    let mut s = gs.login("system").unwrap();
    s.run("Box := OrderedCollection new. Box add: 42").unwrap();
    s.commit().unwrap();
    drop(s);
    // Evict the committed object, then kill the only replica.
    gs.database().set_object_cache_limit(Some(0));
    gs.database().set_object_cache_limit(None);
    gs.database().with_disk(|d| {
        d.replica_mut(0).fail_after_writes(0);
        let _ = d.replica_mut(0).write_track(TrackId(999), b"x");
    });
    let mut s2 = gs.login("system").unwrap();
    let err = s2.run("Box size");
    assert!(err.is_err(), "faulting from a dead disk must fail");

    let bundles: Vec<String> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.starts_with("bundle-disk-dead-") && n.ends_with(".json"))
        .collect();
    assert_eq!(bundles.len(), 1, "exactly one auto-captured bundle: {bundles:?}");
    let body = std::fs::read_to_string(dir.join(&bundles[0])).unwrap();
    assert!(body.contains("\"reason\": \"disk-dead\""));
}

/// `Database::capture_bundle` is a silent no-op while the recorder is off
/// (the failure paths call it unconditionally).
#[test]
fn capture_without_recorder_is_noop() {
    let gs = GemStone::in_memory();
    assert!(gs.database().capture_bundle("disk-dead").is_none());
    assert!(gs.database().diagnostic_bundle("x").is_err());
}

/// The recorder can start mid-life: the baseline carries the absolute
/// counter state, so replay still reproduces cumulative totals exactly.
#[test]
fn midlife_start_baselines_absolute_state() {
    let dir = diag_dir("midlife");
    let gs = GemStone::in_memory();
    let mut s = gs.login("system").unwrap();
    s.run("Pre := OrderedCollection new. Pre add: 1").unwrap();
    s.commit().unwrap();

    gs.database().start_journal(JournalConfig::at(dir.path())).unwrap();
    s.run("Pre add: 2. Pre size").unwrap();
    s.commit().unwrap();

    let live = gs.database().metrics_snapshot();
    gs.telemetry().journal.flush();
    let readout = Journal::read_from(&dir).unwrap();
    let replayed = replay(&readout.events).snapshot();
    assert_eq!(replayed.to_json_lines(), live.to_json_lines());
    gs.database().stop_journal();
}
