//! Cross-crate checks that the pre-merger STDM (gemstone-stdm) and the full
//! GemStone Data Model agree wherever the paper says they should — and
//! differ exactly where §5.4 says STDM falls short.

use gemstone::GemStone;
use gemstone_stdm::{parse_path, Label, LabeledSet, SValue, TxnTime};

#[test]
fn same_database_fragment_same_answers() {
    // §5.1's fragment in pure STDM…
    let mut acme = LabeledSet::new();
    let mut departments = LabeledSet::new();
    departments.put(
        Label::name("A12"),
        LabeledSet::of([("Name", SValue::from("Sales")), ("Budget", SValue::Int(142_000))]),
    );
    acme.put(Label::name("Departments"), departments);
    let mut world = LabeledSet::new();
    world.put(Label::name("X"), acme);
    let p = parse_path("X!Departments!A12!Budget").unwrap();
    let stdm_answer = match p.eval(world.get(&Label::name("X")).unwrap().as_set().unwrap(), None) {
        Ok(SValue::Int(i)) => *i,
        other => panic!("{other:?}"),
    };

    // …and in the full system through OPAL paths.
    let gs = GemStone::in_memory();
    let mut s = gs.login("system").unwrap();
    s.run(
        "| deps a12 |
         X := Dictionary new.
         deps := Dictionary new.
         a12 := Dictionary new.
         a12 at: #Name put: 'Sales'. a12 at: #Budget put: 142000.
         deps at: #A12 put: a12.
         X at: #Departments put: deps",
    )
    .unwrap();
    let gsdm_answer = s.run("X ! Departments ! A12 ! Budget").unwrap().as_int().unwrap();
    assert_eq!(stdm_answer, gsdm_answer);
}

#[test]
fn stdm_lacks_identity_gsdm_has_it() {
    // §5.4: "STDM sets are unlike mathematical sets, in that any set
    // instance can be an element in at most one other set" — child sets are
    // owned by value, so "sharing" in STDM is copying.
    let dept = LabeledSet::of([("name", "Sales")]);
    let mut e1 = LabeledSet::new();
    e1.put(Label::name("dept"), dept.clone()); // forced to copy
    let mut e2 = LabeledSet::new();
    e2.put(Label::name("dept"), dept);
    // Mutate through e1; e2 is unaffected — the update anomaly.
    e1.get_mut_set(&Label::name("dept")).unwrap().put_at(
        Label::name("name"),
        "Retail",
        TxnTime::from_ticks(1),
    );
    let e1_name = parse_path("e!dept!name").unwrap();
    assert_eq!(e1_name.eval(&e1, None).unwrap(), &SValue::from("Retail"));
    assert_eq!(e1_name.eval(&e2, None).unwrap(), &SValue::from("Sales"), "the copy diverged");

    // GSDM: one object, two owners, no divergence possible
    // (tests/sharing_identity.rs proves the positive case).
}

#[test]
fn temporal_semantics_agree_between_models() {
    // The §5.3.2 rules hold identically in STDM and GSDM: per-component @,
    // dial distribution, removal-as-nil.
    let mut s_stdm = LabeledSet::new();
    s_stdm.put_at(Label::name("v"), 1i64, TxnTime::from_ticks(2));
    s_stdm.put_at(Label::name("v"), 2i64, TxnTime::from_ticks(5));
    s_stdm.remove_at(Label::name("v"), TxnTime::from_ticks(8));

    let gs = GemStone::in_memory();
    let mut sess = gs.login("system").unwrap();
    sess.run("D := Dictionary new").unwrap();
    sess.commit().unwrap(); // t1
    sess.run("D at: #v put: 1").unwrap();
    sess.commit().unwrap(); // t2
    for _ in 0..2 {
        sess.run("Pad := Object new").unwrap();
        sess.commit().unwrap(); // t3, t4
    }
    sess.run("D at: #v put: 2").unwrap();
    sess.commit().unwrap(); // t5
    for _ in 0..2 {
        sess.run("Pad := Object new").unwrap();
        sess.commit().unwrap(); // t6, t7
    }
    sess.run("D removeKey: #v").unwrap();
    sess.commit().unwrap(); // t8

    for t in 1..=9u64 {
        let stdm_v = s_stdm.get_at(&Label::name("v"), TxnTime::from_ticks(t)).cloned();
        let gsdm_v = sess.run(&format!("D ! v @ {t}")).unwrap().as_int();
        let expected = match stdm_v {
            Some(SValue::Int(i)) => Some(i),
            _ => None,
        };
        assert_eq!(gsdm_v, expected, "at t{t}");
    }
}
