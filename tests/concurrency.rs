//! Experiment C4: multi-session optimistic concurrency through the full
//! system (§6's Transaction Manager), including SafeTime (§5.4) and a
//! serializability check on concurrent counter updates.

use gemstone::{ConflictKind, GemError, GemStone};

/// PR 9 tentpole: a losing validation yields a structured forensic
/// report — the kind, the culprit commit (time + session), the
/// overlapping objects with their home tracks — surfaced through the
/// error, `Session::last_conflict`, and the database-wide heat tables.
#[test]
fn conflict_forensics_name_the_culprit() {
    let gs = GemStone::in_memory();
    let mut a = gs.login("system").unwrap();
    let mut b = gs.login("system").unwrap();

    a.run("Account := Dictionary new. Account at: #balance put: 100").unwrap();
    a.commit().unwrap();

    a.run("Account at: #balance put: (Account at: #balance) + 10").unwrap();
    b.run("Account at: #balance put: (Account at: #balance) - 10").unwrap();
    let winner_time = a.commit().unwrap();
    let err = b.commit().unwrap_err();
    let GemError::TransactionConflict { kind, detail } = &err else {
        panic!("expected a conflict, got {err:?}");
    };
    assert_eq!(*kind, ConflictKind::Overlap);
    assert!(detail.contains("goop"), "detail names the contested object: {detail}");

    let report = b.last_conflict().expect("losing session has a report");
    assert_eq!(report.kind, ConflictKind::Overlap);
    assert_eq!(report.session, b.session_id());
    assert_eq!(report.culprit_session, a.session_id(), "the killer is named");
    assert_eq!(report.culprit_time, winner_time, "killed by the winning commit");
    assert!(!report.goops.is_empty(), "the contested objects are listed");
    assert!(
        !report.tracks.is_empty(),
        "home tracks resolved (the resolver is installed at database build)"
    );
    assert!(a.last_conflict().is_none(), "the winner has no conflict to report");

    let stats = gs.database().conflict_stats();
    assert_eq!((stats.overlap, stats.watermark), (1, 0));
    assert_eq!(stats.total(), 1);
    let (hot_goop, n) = stats.by_object[0];
    assert_eq!(n, 1);
    assert!(report.goops.contains(&hot_goop), "heat table agrees with the report");
    assert_eq!(stats.by_track[0].1, 1);
}

#[test]
fn conflicting_sessions_abort_the_later_committer() {
    let gs = GemStone::in_memory();
    let mut a = gs.login("system").unwrap();
    let mut b = gs.login("system").unwrap();

    a.run("Account := Dictionary new. Account at: #balance put: 100").unwrap();
    a.commit().unwrap();

    // Both sessions read-modify-write the same element.
    a.run("Account at: #balance put: (Account at: #balance) + 10").unwrap();
    b.run("Account at: #balance put: (Account at: #balance) - 10").unwrap();
    a.commit().unwrap();
    let err = b.commit();
    assert!(matches!(err, Err(GemError::TransactionConflict { .. })), "{err:?}");

    // b retries on fresh state and succeeds.
    b.run("Account at: #balance put: (Account at: #balance) - 10").unwrap();
    b.commit().unwrap();
    let v = a.run("Account at: #balance").unwrap();
    assert_eq!(v.as_int(), Some(100), "both updates applied exactly once");
}

#[test]
fn disjoint_elements_commit_concurrently() {
    let gs = GemStone::in_memory();
    let mut a = gs.login("system").unwrap();
    let mut b = gs.login("system").unwrap();
    a.run("D := Dictionary new. D at: #x put: 0. D at: #y put: 0").unwrap();
    a.commit().unwrap();
    a.run("D at: #x put: 1").unwrap();
    b.run("D at: #y put: 2").unwrap();
    a.commit().unwrap();
    b.commit().expect("different elements of one object must not conflict");
    assert_eq!(a.run("(D at: #x) + (D at: #y)").unwrap().as_int(), Some(3));
}

#[test]
fn sessions_are_isolated_until_commit() {
    let gs = GemStone::in_memory();
    let mut a = gs.login("system").unwrap();
    let mut b = gs.login("system").unwrap();
    a.run("Shared := Dictionary new. Shared at: #v put: 1").unwrap();
    a.commit().unwrap();
    a.run("Shared at: #v put: 2").unwrap(); // uncommitted
    let v = b.run("Shared at: #v").unwrap();
    assert_eq!(v.as_int(), Some(1), "b sees only committed state");
    a.commit().unwrap();
    // b's current transaction now holds a stale read; ending it (the
    // validator would reject a commit of that read) and starting fresh
    // shows the new state.
    b.abort();
    let v = b.run("Shared at: #v").unwrap();
    assert_eq!(v.as_int(), Some(2));
}

#[test]
fn abort_discards_the_workspace() {
    let gs = GemStone::in_memory();
    let mut s = gs.login("system").unwrap();
    s.run("K := Dictionary new. K at: #v put: 7").unwrap();
    s.commit().unwrap();
    s.run("K at: #v put: 99").unwrap();
    s.abort();
    assert_eq!(s.run("K at: #v").unwrap().as_int(), Some(7));
}

#[test]
fn safe_time_is_stable_under_running_writers() {
    let gs = GemStone::in_memory();
    let mut writer = gs.login("system").unwrap();
    writer.run("Log := Dictionary new. Log at: #n put: 0").unwrap();
    writer.commit().unwrap();

    let mut reader = gs.login("system").unwrap();
    // Reader pins its dial to SafeTime; subsequent commits by the writer
    // never change what it sees.
    let safe = reader.run("System safeTime").unwrap().as_int().unwrap();
    reader.run(&format!("System timeDial: {safe}")).unwrap();
    let before = reader.run("Log at: #n").unwrap().as_int().unwrap();
    for i in 1..5 {
        writer.run(&format!("Log at: #n put: {i}")).unwrap();
        writer.commit().unwrap();
        // The reader's dialed view is frozen even across its own txn
        // boundaries.
        reader.commit().unwrap();
        let now = reader.run("Log at: #n").unwrap().as_int().unwrap();
        assert_eq!(now, before, "SafeTime view is immutable");
    }
    reader.run("System timeDialNow").unwrap();
    reader.commit().unwrap();
    assert_eq!(reader.run("Log at: #n").unwrap().as_int(), Some(4));
}

#[test]
fn concurrent_threads_preserve_serializability() {
    // N threads each try to increment a shared counter M times, retrying on
    // conflict. The final value must equal total successful increments.
    let gs = GemStone::in_memory();
    let mut setup = gs.login("system").unwrap();
    setup.run("Counter := Dictionary new. Counter at: #n put: 0").unwrap();
    setup.commit().unwrap();
    drop(setup);

    let threads = 4;
    let per_thread = 25;
    let total: i64 = crossbeam::scope(|scope| {
        let mut handles = Vec::new();
        for _ in 0..threads {
            let gs = gs.clone();
            handles.push(scope.spawn(move |_| {
                let mut s = gs.login("system").unwrap();
                let mut done = 0i64;
                while done < per_thread {
                    s.run("Counter at: #n put: (Counter at: #n) + 1").unwrap();
                    match s.commit() {
                        Ok(_) => done += 1,
                        Err(GemError::TransactionConflict { .. }) => {} // retry
                        Err(e) => panic!("{e}"),
                    }
                }
                done
            }));
        }
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    })
    .unwrap();

    assert_eq!(total, threads as i64 * per_thread);
    let mut check = gs.login("system").unwrap();
    let v = check.run("Counter at: #n").unwrap();
    assert_eq!(v.as_int(), Some(total), "no lost updates under contention");
    let (commits, aborts) = gs.database().txn_counts();
    assert!(commits >= total as u64);
    // With 4 threads hammering one element, some aborts are expected (not
    // asserted strictly — scheduling dependent).
    let _ = aborts;
}

#[test]
fn blind_concurrent_inserts_into_one_collection() {
    // Two sessions adding members to the same committed Set: adds read the
    // membership (equality scan), so they conflict on the collection — the
    // second committer retries and both members land.
    let gs = GemStone::in_memory();
    let mut a = gs.login("system").unwrap();
    a.run("S := Set new").unwrap();
    a.commit().unwrap();
    let mut b = gs.login("system").unwrap();
    a.run("S add: 1").unwrap();
    b.run("S add: 2").unwrap();
    a.commit().unwrap();
    if b.commit().is_err() {
        b.run("S add: 2").unwrap();
        b.commit().unwrap();
    }
    assert_eq!(a.run("S size").unwrap().as_int(), Some(2));
}
