//! Experiment C4: multi-session optimistic concurrency through the full
//! system (§6's Transaction Manager), including SafeTime (§5.4) and a
//! serializability check on concurrent counter updates.

use gemstone::{GemError, GemStone};

#[test]
fn conflicting_sessions_abort_the_later_committer() {
    let gs = GemStone::in_memory();
    let mut a = gs.login("system").unwrap();
    let mut b = gs.login("system").unwrap();

    a.run("Account := Dictionary new. Account at: #balance put: 100").unwrap();
    a.commit().unwrap();

    // Both sessions read-modify-write the same element.
    a.run("Account at: #balance put: (Account at: #balance) + 10").unwrap();
    b.run("Account at: #balance put: (Account at: #balance) - 10").unwrap();
    a.commit().unwrap();
    let err = b.commit();
    assert!(matches!(err, Err(GemError::TransactionConflict { .. })), "{err:?}");

    // b retries on fresh state and succeeds.
    b.run("Account at: #balance put: (Account at: #balance) - 10").unwrap();
    b.commit().unwrap();
    let v = a.run("Account at: #balance").unwrap();
    assert_eq!(v.as_int(), Some(100), "both updates applied exactly once");
}

#[test]
fn disjoint_elements_commit_concurrently() {
    let gs = GemStone::in_memory();
    let mut a = gs.login("system").unwrap();
    let mut b = gs.login("system").unwrap();
    a.run("D := Dictionary new. D at: #x put: 0. D at: #y put: 0").unwrap();
    a.commit().unwrap();
    a.run("D at: #x put: 1").unwrap();
    b.run("D at: #y put: 2").unwrap();
    a.commit().unwrap();
    b.commit().expect("different elements of one object must not conflict");
    assert_eq!(a.run("(D at: #x) + (D at: #y)").unwrap().as_int(), Some(3));
}

#[test]
fn sessions_are_isolated_until_commit() {
    let gs = GemStone::in_memory();
    let mut a = gs.login("system").unwrap();
    let mut b = gs.login("system").unwrap();
    a.run("Shared := Dictionary new. Shared at: #v put: 1").unwrap();
    a.commit().unwrap();
    a.run("Shared at: #v put: 2").unwrap(); // uncommitted
    let v = b.run("Shared at: #v").unwrap();
    assert_eq!(v.as_int(), Some(1), "b sees only committed state");
    a.commit().unwrap();
    // b's current transaction now holds a stale read; ending it (the
    // validator would reject a commit of that read) and starting fresh
    // shows the new state.
    b.abort();
    let v = b.run("Shared at: #v").unwrap();
    assert_eq!(v.as_int(), Some(2));
}

#[test]
fn abort_discards_the_workspace() {
    let gs = GemStone::in_memory();
    let mut s = gs.login("system").unwrap();
    s.run("K := Dictionary new. K at: #v put: 7").unwrap();
    s.commit().unwrap();
    s.run("K at: #v put: 99").unwrap();
    s.abort();
    assert_eq!(s.run("K at: #v").unwrap().as_int(), Some(7));
}

#[test]
fn safe_time_is_stable_under_running_writers() {
    let gs = GemStone::in_memory();
    let mut writer = gs.login("system").unwrap();
    writer.run("Log := Dictionary new. Log at: #n put: 0").unwrap();
    writer.commit().unwrap();

    let mut reader = gs.login("system").unwrap();
    // Reader pins its dial to SafeTime; subsequent commits by the writer
    // never change what it sees.
    let safe = reader.run("System safeTime").unwrap().as_int().unwrap();
    reader.run(&format!("System timeDial: {safe}")).unwrap();
    let before = reader.run("Log at: #n").unwrap().as_int().unwrap();
    for i in 1..5 {
        writer.run(&format!("Log at: #n put: {i}")).unwrap();
        writer.commit().unwrap();
        // The reader's dialed view is frozen even across its own txn
        // boundaries.
        reader.commit().unwrap();
        let now = reader.run("Log at: #n").unwrap().as_int().unwrap();
        assert_eq!(now, before, "SafeTime view is immutable");
    }
    reader.run("System timeDialNow").unwrap();
    reader.commit().unwrap();
    assert_eq!(reader.run("Log at: #n").unwrap().as_int(), Some(4));
}

#[test]
fn concurrent_threads_preserve_serializability() {
    // N threads each try to increment a shared counter M times, retrying on
    // conflict. The final value must equal total successful increments.
    let gs = GemStone::in_memory();
    let mut setup = gs.login("system").unwrap();
    setup.run("Counter := Dictionary new. Counter at: #n put: 0").unwrap();
    setup.commit().unwrap();
    drop(setup);

    let threads = 4;
    let per_thread = 25;
    let total: i64 = crossbeam::scope(|scope| {
        let mut handles = Vec::new();
        for _ in 0..threads {
            let gs = gs.clone();
            handles.push(scope.spawn(move |_| {
                let mut s = gs.login("system").unwrap();
                let mut done = 0i64;
                while done < per_thread {
                    s.run("Counter at: #n put: (Counter at: #n) + 1").unwrap();
                    match s.commit() {
                        Ok(_) => done += 1,
                        Err(GemError::TransactionConflict { .. }) => {} // retry
                        Err(e) => panic!("{e}"),
                    }
                }
                done
            }));
        }
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    })
    .unwrap();

    assert_eq!(total, threads as i64 * per_thread);
    let mut check = gs.login("system").unwrap();
    let v = check.run("Counter at: #n").unwrap();
    assert_eq!(v.as_int(), Some(total), "no lost updates under contention");
    let (commits, aborts) = gs.database().txn_counts();
    assert!(commits >= total as u64);
    // With 4 threads hammering one element, some aborts are expected (not
    // asserted strictly — scheduling dependent).
    let _ = aborts;
}

#[test]
fn blind_concurrent_inserts_into_one_collection() {
    // Two sessions adding members to the same committed Set: adds read the
    // membership (equality scan), so they conflict on the collection — the
    // second committer retries and both members land.
    let gs = GemStone::in_memory();
    let mut a = gs.login("system").unwrap();
    a.run("S := Set new").unwrap();
    a.commit().unwrap();
    let mut b = gs.login("system").unwrap();
    a.run("S add: 1").unwrap();
    b.run("S add: 2").unwrap();
    a.commit().unwrap();
    if b.commit().is_err() {
        b.run("S add: 2").unwrap();
        b.commit().unwrap();
    }
    assert_eq!(a.run("S size").unwrap().as_int(), Some(2));
}
