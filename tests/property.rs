//! Property tests over the full system: random operation sequences checked
//! against an in-Rust reference model — current reads, as-of reads at every
//! moment, commit/abort semantics, and restart equivalence.

use gemstone::{GemStone, Session, StoreConfig};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// A random workload step over one dictionary with keys 0..4.
#[derive(Debug, Clone)]
enum Step {
    Put(u8, i64),
    Remove(u8),
    Commit,
    Abort,
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        (0u8..4, -50i64..50).prop_map(|(k, v)| Step::Put(k, v)),
        (0u8..4).prop_map(Step::Remove),
        Just(Step::Commit),
        Just(Step::Abort),
    ]
}

/// Reference model: committed value history per key, plus pending state.
#[derive(Default)]
struct Model {
    /// (commit_time, key → value) snapshots.
    committed: Vec<(u64, BTreeMap<u8, i64>)>,
    current: BTreeMap<u8, i64>,
    pending: BTreeMap<u8, Option<i64>>,
}

impl Model {
    fn apply(&mut self, step: &Step, session_time: impl Fn() -> u64) {
        match step {
            Step::Put(k, v) => {
                self.pending.insert(*k, Some(*v));
            }
            Step::Remove(k) => {
                self.pending.insert(*k, None);
            }
            Step::Commit => {
                for (k, v) in std::mem::take(&mut self.pending) {
                    match v {
                        Some(v) => {
                            self.current.insert(k, v);
                        }
                        None => {
                            self.current.remove(&k);
                        }
                    }
                }
                self.committed.push((session_time(), self.current.clone()));
            }
            Step::Abort => {
                self.pending.clear();
            }
        }
    }

    fn visible(&self, k: u8) -> Option<i64> {
        match self.pending.get(&k) {
            Some(v) => *v,
            None => self.current.get(&k).copied(),
        }
    }

    fn as_of(&self, t: u64, k: u8) -> Option<i64> {
        self.committed
            .iter()
            .rev()
            .find(|(ct, _)| *ct <= t)
            .and_then(|(_, snap)| snap.get(&k).copied())
    }
}

fn read(s: &mut Session, k: u8) -> Option<i64> {
    s.run(&format!("D at: {k}")).unwrap().as_int()
}

fn read_at(s: &mut Session, t: u64, k: u8) -> Option<i64> {
    s.run(&format!("D ! {k} @ {t}")).ok().and_then(|v| v.as_int())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every visible state — pending, current, and every past moment —
    /// matches the reference model throughout a random workload.
    #[test]
    fn random_workload_matches_model(steps in prop::collection::vec(step_strategy(), 1..30)) {
        let gs = GemStone::in_memory();
        let mut s = gs.login("system").unwrap();
        s.run("D := Dictionary new").unwrap();
        s.commit().unwrap();
        let mut model = Model::default();
        model.committed.push((1, BTreeMap::new()));

        for step in &steps {
            match step {
                Step::Put(k, v) => {
                    s.run(&format!("D at: {k} put: {v}")).unwrap();
                }
                Step::Remove(k) => {
                    // removeKey: errors when absent — mirror that by guarding.
                    s.run(&format!(
                        "(D at: {k}) notNil ifTrue: [D removeKey: {k}]"
                    ))
                    .unwrap();
                }
                Step::Commit => {
                    s.commit().unwrap();
                }
                Step::Abort => {
                    s.abort();
                }
            }
            let now = gs.database().txn_counts(); // force no-op; keep timing via session below
            let _ = now;
            let time_now = s.run("System currentTime").unwrap().as_int().unwrap() as u64;
            model.apply(step, || time_now);
            // Current visibility (pending included).
            for k in 0..4u8 {
                prop_assert_eq!(read(&mut s, k), model.visible(k), "key {} after {:?}", k, step);
            }
        }
        // Historical visibility at every committed moment.
        let final_time = s.run("System currentTime").unwrap().as_int().unwrap() as u64;
        s.abort(); // discard any pending writes before time travel
        for t in 1..=final_time {
            for k in 0..4u8 {
                let got = read_at(&mut s, t, k);
                let want = model.as_of(t, k);
                prop_assert_eq!(got, want, "key {} as of t{}", k, t);
            }
        }
    }

    /// Restarting from disk is observationally equivalent: all current and
    /// historical reads are unchanged.
    #[test]
    fn restart_preserves_all_states(steps in prop::collection::vec(step_strategy(), 1..20)) {
        let gs = GemStone::create(StoreConfig { track_size: 1024, cache_tracks: 16, replicas: 1 }).unwrap();
        let mut s = gs.login("system").unwrap();
        s.run("D := Dictionary new").unwrap();
        s.commit().unwrap();
        for step in &steps {
            match step {
                Step::Put(k, v) => { s.run(&format!("D at: {k} put: {v}")).unwrap(); }
                Step::Remove(k) => {
                    s.run(&format!("(D at: {k}) notNil ifTrue: [D removeKey: {k}]")).unwrap();
                }
                Step::Commit | Step::Abort => { s.commit().unwrap(); }
            }
        }
        s.commit().unwrap();
        let final_time = s.run("System currentTime").unwrap().as_int().unwrap() as u64;
        let mut expected = Vec::new();
        for t in 1..=final_time {
            for k in 0..4u8 {
                expected.push(read_at(&mut s, t, k));
            }
        }
        drop(s);
        let disk = gs.shutdown().unwrap();
        let gs2 = GemStone::open(disk, 16).unwrap();
        let mut s2 = gs2.login("system").unwrap();
        let mut actual = Vec::new();
        for t in 1..=final_time {
            for k in 0..4u8 {
                actual.push(read_at(&mut s2, t, k));
            }
        }
        prop_assert_eq!(expected, actual);
    }
}
