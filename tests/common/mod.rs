//! Shared fixtures for the integration suites.
#![allow(dead_code)] // each test target uses a different subset

use std::path::{Path, PathBuf};

/// A per-test scratch directory under `target/diagnostics/`, wiped clean on
/// entry and removed again when the test passes. On panic the directory is
/// left behind so a failing CI job can upload it as an artifact.
pub struct DiagDir(PathBuf);

impl DiagDir {
    pub fn path(&self) -> &Path {
        &self.0
    }
}

impl std::ops::Deref for DiagDir {
    type Target = Path;
    fn deref(&self) -> &Path {
        &self.0
    }
}

impl AsRef<Path> for DiagDir {
    fn as_ref(&self) -> &Path {
        &self.0
    }
}

impl Drop for DiagDir {
    fn drop(&mut self) {
        if std::thread::panicking() {
            eprintln!("test failed: diagnostics kept at {}", self.0.display());
        } else {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }
}

/// Claim `<root>/<name>-<pid>` for one test.
pub fn scratch_dir(root: &str, name: &str) -> DiagDir {
    let dir = PathBuf::from(root).join(format!("{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    DiagDir(dir)
}

/// Claim `target/diagnostics/<name>-<pid>` for one test.
pub fn diag_dir(name: &str) -> DiagDir {
    scratch_dir("target/diagnostics", name)
}
