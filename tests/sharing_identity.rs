//! Experiment C2 — entity identity and shared components (§2D, §4.2):
//! "a single object can be a component of several other objects … if two
//! objects share a component, updates to that component through one object
//! are visible in the other object." Plus the department-rename scenario
//! that breaks logical-pointer models.

use gemstone::GemStone;

#[test]
fn shared_component_updates_are_visible_through_both_owners() {
    let gs = GemStone::in_memory();
    let mut s = gs.login("system").unwrap();
    // Two employees share ONE department object.
    s.run(
        "Sales := Dictionary new. Sales at: #name put: 'Sales'. Sales at: #budget put: 142000.
         Ellen := Dictionary new. Ellen at: #dept put: Sales.
         Robert := Dictionary new. Robert at: #dept put: Sales",
    )
    .unwrap();
    s.commit().unwrap();
    // Identity, not copies:
    let v = s.run("(Ellen at: #dept) == (Robert at: #dept)").unwrap();
    assert_eq!(v.as_bool(), Some(true));
    // Update through Ellen; visible through Robert.
    s.run("(Ellen at: #dept) at: #budget put: 150000").unwrap();
    let v = s.run("(Robert at: #dept) at: #budget").unwrap();
    assert_eq!(v.as_int(), Some(150_000));
    s.commit().unwrap();
    // And after a restart the sharing persists (one GOOP, two references).
    drop(s);
    let disk = gs.shutdown().unwrap();
    let gs2 = GemStone::open(disk, 64).unwrap();
    let mut s = gs2.login("system").unwrap();
    let v = s.run("(Ellen at: #dept) == (Robert at: #dept)").unwrap();
    assert_eq!(v.as_bool(), Some(true), "identity survives the disk");
    let v = s.run("(Robert at: #dept) at: #budget").unwrap();
    assert_eq!(v.as_int(), Some(150_000));
}

#[test]
fn department_rename_does_not_strand_employees() {
    // §2D: "What happens when we want to change the department name?" —
    // with logical pointers (relbase shows this) the join silently breaks;
    // with entity identity the link is unaffected.
    let gs = GemStone::in_memory();
    let mut s = gs.login("system").unwrap();
    s.run(
        "Dept := Dictionary new. Dept at: #name put: 'Sales'.
         Emp := Dictionary new. Emp at: #dept put: Dept",
    )
    .unwrap();
    s.commit().unwrap();
    s.run("Dept at: #name put: 'Retail'").unwrap();
    s.commit().unwrap();
    let v = s.run_display("(Emp at: #dept) at: #name").unwrap();
    assert_eq!(v, "'Retail'", "the employee still reaches the renamed department");
    // And history keeps the old name reachable.
    let v = s.run_display("Emp ! dept ! name @ 1").unwrap();
    assert_eq!(v, "'Sales'");
}

#[test]
fn same_set_of_children_shared_by_two_parents() {
    // §2D: "to reflect that two people have the same set of children
    // requires either a relation representing named sets of children, or a
    // rather complicated data dependency" — here it's just sharing.
    let gs = GemStone::in_memory();
    let mut s = gs.login("system").unwrap();
    s.run(
        "Kids := Set new. Kids add: 'Olivia'; add: 'Dale'; add: 'Paul'.
         Robert := Dictionary new. Robert at: #children put: Kids.
         Susan := Dictionary new. Susan at: #children put: Kids",
    )
    .unwrap();
    s.commit().unwrap();
    s.run("(Robert at: #children) add: 'Sam'").unwrap();
    let v = s.run("(Susan at: #children) size").unwrap();
    assert_eq!(v.as_int(), Some(4), "one set, two parents");
    let v = s.run("(Susan at: #children) == (Robert at: #children)").unwrap();
    assert_eq!(v.as_bool(), Some(true));
}

#[test]
fn equivalent_but_not_identical_gates() {
    // §4.2's circuit gates: same characteristics, different objects.
    let gs = GemStone::in_memory();
    let mut s = gs.login("system").unwrap();
    s.run(
        "G1 := Dictionary new. G1 at: #kind put: #nand. G1 at: #delay put: 2.
         G2 := Dictionary new. G2 at: #kind put: #nand. G2 at: #delay put: 2",
    )
    .unwrap();
    s.commit().unwrap();
    assert_eq!(s.run("G1 == G2").unwrap().as_bool(), Some(false));
    assert_eq!(s.run("(G1 at: #kind) = (G2 at: #kind)").unwrap().as_bool(), Some(true));
    assert_eq!(s.run("G1 == G1").unwrap().as_bool(), Some(true));
}

#[test]
fn objects_in_multiple_collections() {
    // §5.4: unlike STDM sets, "an element may be a member of several sets".
    let gs = GemStone::in_memory();
    let mut s = gs.login("system").unwrap();
    s.run(
        "E := Dictionary new. E at: #name put: 'Burns'.
         Staff := Set new. Staff add: E.
         Committee := Set new. Committee add: E",
    )
    .unwrap();
    s.commit().unwrap();
    let v = s.run("(Staff detect: [:x | true]) == (Committee detect: [:x | true])").unwrap();
    assert_eq!(v.as_bool(), Some(true));
    // Mutate through one path, observe through the other.
    s.run("(Staff detect: [:x | true]) at: #name put: 'Burns-Smith'").unwrap();
    let v = s.run_display("(Committee detect: [:x | true]) at: #name").unwrap();
    assert_eq!(v, "'Burns-Smith'");
}
