//! C-crash: the exhaustive crash-point matrix for the safe-write commit
//! protocol (§7), at two levels.
//!
//! The storage-level matrix enumerates every write of every commit of a
//! scripted ≥25-commit workload, torn at all six byte-offset classes, plus
//! a crash at every read of the recovery pass itself; each point reopens
//! the volume through `PermanentStore::open` and checks all-or-nothing
//! visibility, byte-identical committed history (including temporal
//! reads), newest-root recovery, report accuracy, and that the recovered
//! store accepts the retried commit. The full-system sweep drives the same
//! protocol through `Database::open` — OPAL sessions, schema metadata,
//! recompiled methods — for every write of a smaller workload.
//!
//! Any failing point is reported as a compact `CrashSchedule` token
//! (e.g. `c7.w3.hsum`) that `run_schedule` replays standalone, and the
//! full token list lands in `target/crash_matrix_failures.txt` so CI can
//! upload it as an artifact.

use gemstone::{FaultPlan, GemStone, IoRecord, StoreConfig, TearClass};
use gemstone_storage::crashpoint::{
    enumerate_matrix_on, run_schedule, CrashSchedule, MatrixBackend, Workload,
};

/// Workload size; the nightly workflow raises it via CRASH_MATRIX_COMMITS.
fn matrix_commits() -> usize {
    std::env::var("CRASH_MATRIX_COMMITS").ok().and_then(|v| v.parse().ok()).unwrap_or(25)
}

/// Which backend the matrix drives: `GEMSTONE_BACKEND=file` runs it
/// against real files (in `GEMSTONE_DB_DIR`, or a tmpdir), anything else
/// against the simulated disk. The CI `durability` job and the nightly
/// file-matrix tier set it; local `cargo test` stays in memory.
fn matrix_backend() -> MatrixBackend {
    match std::env::var("GEMSTONE_BACKEND").as_deref() {
        Ok("file") => {
            let dir = std::env::var("GEMSTONE_DB_DIR")
                .map(std::path::PathBuf::from)
                .unwrap_or_else(|_| {
                    std::env::temp_dir().join(format!("gemstone-matrix-{}", std::process::id()))
                });
            MatrixBackend::File { dir }
        }
        _ => MatrixBackend::Sim,
    }
}

#[test]
fn exhaustive_storage_crash_matrix() {
    let commits = matrix_commits();
    let backend = matrix_backend();
    let w = Workload::standard(commits);
    let report = enumerate_matrix_on(&w, &TearClass::ALL, &backend).expect("harness ran");
    eprintln!("crash matrix backend: {backend:?}");
    eprintln!(
        "crash matrix: {} commits, {} writes -> {} commit crash points, \
         {} recovery crash points, {} reopenings, {} violations",
        report.commits,
        report.total_writes,
        report.commit_crash_points,
        report.recovery_crash_points,
        report.reopenings,
        report.violations.len(),
    );
    if !report.is_clean() {
        let lines: Vec<String> =
            report.violations.iter().map(|(tok, why)| format!("{tok}  {why}")).collect();
        let body = lines.join("\n");
        let _ = std::fs::create_dir_all("target");
        let _ = std::fs::write("target/crash_matrix_failures.txt", &body);
        panic!(
            "safe-write invariant violated at {} crash point(s); \
             repro each token with crashpoint::run_schedule:\n{body}",
            lines.len()
        );
    }
    assert_eq!(report.commits as usize, commits);
    assert!(
        report.total_writes >= 2 * report.commits as u64,
        "every commit writes at least one data track and the root"
    );
    assert_eq!(
        report.commit_crash_points,
        report.total_writes * TearClass::ALL.len() as u64,
        "every write torn at every class"
    );
    assert!(
        report.recovery_crash_points >= 2 * report.commits as u64,
        "recovery performs at least two reads per reopening, all interrupted"
    );
    assert!(report.reopenings > report.commit_crash_points, "each point recovers at least once");
}

/// The physical write/fsync stream of real commits on the file backend:
/// each safe-write group must show data writes, a barrier, the root write,
/// and the ack barrier — in that order, twice per group, never more. The
/// full stream is printed when `GEMSTONE_FSYNC_TRACE=1` (the nightly
/// file-matrix tier enables it) so ordering regressions are visible in CI
/// logs even when the assertions still pass.
#[test]
fn file_backend_fsync_trace_shows_group_commit() {
    let dir = std::env::temp_dir().join(format!("gemstone-fsync-trace-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("trace.gem");
    let _ = std::fs::remove_file(&path);
    let cfg = StoreConfig { track_size: 1024, cache_tracks: 32, replicas: 1 };
    let gs = GemStone::create_file(&path, cfg).unwrap();
    let mut s = gs.login("system").unwrap();
    let verbose = std::env::var("GEMSTONE_FSYNC_TRACE").as_deref() == Ok("1");
    for (k, script) in
        ["Log := Dictionary new", "Log at: 1 put: 100", "Log at: 2 put: 'two'"].iter().enumerate()
    {
        gs.database().with_disk(|d| d.replica_mut(0).set_fault_plan(FaultPlan::trace()));
        s.run(script).unwrap();
        s.commit().unwrap();
        let trace = gs.database().with_disk(|d| d.replica_mut(0).take_io_trace());
        if verbose {
            eprintln!("commit {k}: {trace:?}");
        }
        let syncs = trace.iter().filter(|r| **r == IoRecord::Sync).count();
        assert_eq!(syncs, 2, "commit {k}: group commit is two barriers, got {trace:?}");
        assert_eq!(trace.last(), Some(&IoRecord::Sync), "commit {k}: ack barrier last");
        let data_sync = trace.iter().position(|r| *r == IoRecord::Sync).unwrap();
        let root_write = trace
            .iter()
            .position(|r| matches!(r, IoRecord::Write { track, .. } if track.0 < 2))
            .expect("a root-page write");
        assert!(
            data_sync < root_write,
            "commit {k}: root write before the data barrier: {trace:?}"
        );
    }
    drop(s);
    drop(gs);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn schedule_token_is_a_one_line_repro() {
    // The token printed on failure replays the identical crash standalone.
    let w = Workload::standard(6);
    for token in ["c2.w0.clean", "c4.w2.hsum", "c5.w1.tail", "c3.w2.half.r1"] {
        let s: CrashSchedule = token.parse().expect(token);
        assert_eq!(s.to_string(), token, "token roundtrip");
        run_schedule(&w, &s).unwrap_or_else(|e| panic!("{token}: {e}"));
    }
}

/// The full-system sweep: every write of every commit of an OPAL workload
/// (globals, schema changes, object graphs) torn at two classes, recovered
/// through `Database::open` with its schema reload and method recompile.
#[test]
fn full_system_crash_sweep() {
    let cfg = StoreConfig { track_size: 1024, cache_tracks: 32, replicas: 1 };
    // Commit k's script; each leaves `Ledger` with k entries, so recovered
    // state is identifiable by a single query.
    let scripts = [
        "Ledger := Dictionary new",
        "Ledger at: 1 put: 100",
        "Object subclass: 'Acct' instVarNames: #('bal'). Ledger at: 2 put: 'two'",
        "| a | a := Acct new. a bal: 7. Ledger at: 3 put: a",
        "Ledger at: 1 put: 200. Ledger at: 4 put: 'four'",
    ];

    // Profile pass: run the workload once, tracing each commit's write
    // count and checkpointing the platter before each commit.
    let gs = GemStone::create(cfg).unwrap();
    let mut s = gs.login("system").unwrap();
    let mut checkpoints = Vec::new();
    let mut times = Vec::new();
    for script in &scripts {
        checkpoints.push(gs.database().with_disk(|d| d.clone()));
        s.run(script).unwrap();
        times.push(s.commit().unwrap());
    }
    // Telemetry satellite: every commit records its safe-write group size
    // (data tracks + root — always at least two tracks) in the histogram.
    let snap = gs.database().metrics_snapshot();
    let groups = snap.histogram("storage.commit.group_tracks").expect("group histogram");
    assert!(groups.count >= scripts.len() as u64, "one group recorded per commit");
    assert!(groups.min >= 2, "each safe-write group spans data and root tracks");
    drop(s);
    drop(gs);

    // Sweep: crash commit k at every write index, two tear classes each.
    // The write count is measured in the sweep's own context — a reopened
    // database replaying commit k with a tracing plan — so index i below
    // names exactly the i+1st write of the group being torn.
    let mut points = 0u64;
    for k in 1..scripts.len() {
        let writes = {
            let mut disk = checkpoints[k].clone();
            disk.replica_mut(0).revive();
            disk.replica_mut(0).set_fault_plan(FaultPlan::trace());
            let gs = GemStone::open(disk, 32).unwrap();
            let mut s = gs.login("system").unwrap();
            gs.database().with_disk(|d| {
                d.replica_mut(0).take_write_trace();
            });
            s.run(scripts[k]).unwrap();
            s.commit().unwrap();
            gs.database().with_disk(|d| d.replica_mut(0).take_write_trace().len() as u64)
        };
        assert!(writes >= 2, "commit {k} safe-writes data and a root");
        for write in 0..writes {
            for tear in [TearClass::Half, TearClass::HeaderSum] {
                points += 1;
                let ctx = format!("commit {k}, write {write}, {tear:?}");
                let mut disk = checkpoints[k].clone();
                disk.replica_mut(0).revive();
                let gs = GemStone::open(disk, 32).unwrap_or_else(|e| panic!("{ctx}: {e}"));
                let mut s = gs.login("system").unwrap();
                s.run(scripts[k]).unwrap();
                gs.database().with_disk(|d| {
                    d.replica_mut(0).set_fault_plan(FaultPlan {
                        crash_after_writes: Some(write),
                        tear,
                        ..FaultPlan::default()
                    })
                });
                assert!(s.commit().is_err(), "{ctx}: commit must not survive the crash");
                drop(s);
                let mut disk = gs.shutdown().unwrap();
                disk.replica_mut(0).revive();

                let gs2 = GemStone::open(disk, 32).unwrap_or_else(|e| panic!("{ctx}: {e}"));
                let mut s2 = gs2.login("system").unwrap();
                // All-or-nothing: k entries before the crash; the commit may
                // only have landed if its final (root) write was the torn one.
                let size = s2.run("Ledger size").unwrap().as_int().unwrap() as u64;
                let committed = if size == k as u64 - 1 {
                    false
                } else if size == k as u64 && write == writes - 1 {
                    true
                } else {
                    panic!("{ctx}: recovered {size} entries, expected {}", k - 1);
                };
                let c = if committed { k + 1 } else { k };
                if c >= 3 {
                    assert_eq!(s2.run_display("Ledger at: 2").unwrap(), "'two'", "{ctx}");
                    assert!(
                        s2.run("Acct new").is_ok(),
                        "{ctx}: recovered schema instantiates Acct"
                    );
                }
                if c >= 4 {
                    assert_eq!(s2.run("(Ledger at: 3) bal").unwrap().as_int(), Some(7), "{ctx}");
                }
                let want_v1 = if c >= 5 { 200 } else { 100 };
                if c >= 2 {
                    assert_eq!(s2.run("Ledger at: 1").unwrap().as_int(), Some(want_v1), "{ctx}");
                }
                // Temporal reads over recovered history.
                for (j, &t) in times.iter().enumerate().take(c - 1).skip(1) {
                    s2.set_time_dial(t);
                    assert_eq!(
                        s2.run("Ledger size").unwrap().as_int(),
                        Some(j as i64),
                        "{ctx}: state at commit {j}"
                    );
                }
                s2.time_dial_now();
                // The recovery report is observable at session level and
                // consistent with what the crash left behind.
                let rep = s2.recovery_report();
                assert_eq!(rep.roots_considered, 2, "{ctx}");
                assert!(rep.roots_valid >= 1, "{ctx}");
                assert!(rep.reopen_reads > 0, "{ctx}");
                if !committed && write >= 1 {
                    assert!(
                        rep.tracks_discarded >= 1,
                        "{ctx}: the torn commit's shadow tracks are orphans"
                    );
                }
                // The registry gauges are a thin view over the same report,
                // and the post-recovery faults filled the cache read-through.
                let snap = s2.metrics();
                assert_eq!(
                    snap.gauge("storage.recovery.roots_considered"),
                    rep.roots_considered as i64,
                    "{ctx}"
                );
                assert_eq!(
                    snap.gauge("storage.recovery.roots_torn"),
                    rep.roots_torn as i64,
                    "{ctx}"
                );
                assert_eq!(
                    snap.gauge("storage.recovery.tracks_discarded"),
                    rep.tracks_discarded as i64,
                    "{ctx}"
                );
                assert!(
                    snap.counter("storage.cache.fills_read") > 0,
                    "{ctx}: recovered reads are read-through fills"
                );
            }
        }
    }
    eprintln!("full-system sweep: {points} crash points across {} commits", scripts.len() - 1);
    assert!(points >= 2 * (scripts.len() as u64 - 1) * 2, "swept every write, two tears each");
}
