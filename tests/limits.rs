//! Experiment C1 — §2B/§4.3's "no artificial limits": GemStone must hold
//! more than ST80's 32K-object cap and objects beyond its 64KB cap, with
//! everything surviving commit and recovery.

use gemstone::{GemStone, StoreConfig};

#[test]
fn more_than_32k_committed_objects() {
    let gs =
        GemStone::create(StoreConfig { track_size: 8192, cache_tracks: 128, replicas: 1 }).unwrap();
    let mut s = gs.login("system").unwrap();
    s.run("Registry := Dictionary new").unwrap();
    s.commit().unwrap();
    // 33K objects committed in batches (each one a Dictionary instance).
    for batch in 0..33 {
        let src = format!(
            "| d | 1 to: 1000 do: [:i | d := Dictionary new. d at: #n put: ({batch} * 1000) + i. \
             Registry at: ({batch} * 1000) + i put: d]"
        );
        s.run(&src).unwrap();
        s.commit().unwrap();
    }
    assert_eq!(s.run("Registry size").unwrap().as_int(), Some(33_000));
    assert_eq!(s.run("(Registry at: 32999) at: #n").unwrap().as_int(), Some(32_999));
    // And it all recovers.
    drop(s);
    let disk = gs.shutdown().unwrap();
    let gs2 = GemStone::open(disk, 128).unwrap();
    let mut s = gs2.login("system").unwrap();
    assert_eq!(s.run("Registry size").unwrap().as_int(), Some(33_000));
    assert_eq!(s.run("(Registry at: 1) at: #n").unwrap().as_int(), Some(1));
}

#[test]
fn object_larger_than_64k() {
    // §4.3: "the maximum size for an object is 64K bytes. We need to handle
    // more and larger data items … such as long documents."
    let gs =
        GemStone::create(StoreConfig { track_size: 4096, cache_tracks: 64, replicas: 1 }).unwrap();
    let mut s = gs.login("system").unwrap();
    // Build a 128KB string by repeated doubling.
    s.run(
        "Doc := 'abcdefgh'.
         1 to: 14 do: [:i | Doc := Doc , Doc]",
    )
    .unwrap();
    let n = s.run("Doc size").unwrap();
    assert_eq!(n.as_int(), Some(8 << 14), "131072 bytes > 64K");
    s.commit().unwrap();
    drop(s);
    let disk = gs.shutdown().unwrap();
    let gs2 = GemStone::open(disk, 64).unwrap();
    let mut s = gs2.login("system").unwrap();
    assert_eq!(s.run("Doc size").unwrap().as_int(), Some(8 << 14));
    assert_eq!(s.run("Doc at: 9").unwrap().as_char(), Some('a'));
}

#[test]
fn collection_with_many_elements() {
    let gs = GemStone::in_memory();
    let mut s = gs.login("system").unwrap();
    s.run("Big := OrderedCollection new. 1 to: 20000 do: [:i | Big add: i * 2]").unwrap();
    s.commit().unwrap();
    assert_eq!(s.run("Big size").unwrap().as_int(), Some(20_000));
    assert_eq!(s.run("Big last").unwrap().as_int(), Some(40_000));
    let v = s.run("Big inject: 0 into: [:a :e | a max: e]").unwrap();
    assert_eq!(v.as_int(), Some(40_000));
}

#[test]
fn deep_nesting_of_structured_values() {
    // §5.2: "unlimited nesting … a single value can have arbitrarily
    // detailed internal structure."
    let gs = GemStone::in_memory();
    let mut s = gs.login("system").unwrap();
    s.run(
        "| cur next |
         Nest := Dictionary new.
         cur := Nest.
         1 to: 100 do: [:i |
             next := Dictionary new.
             cur at: #depth put: i.
             cur at: #inner put: next.
             cur := next]",
    )
    .unwrap();
    s.commit().unwrap();
    let v = s
        .run(
            "| cur | cur := Nest.
             1 to: 99 do: [:i | cur := cur at: #inner].
             cur at: #depth",
        )
        .unwrap();
    assert_eq!(v.as_int(), Some(100));
}
