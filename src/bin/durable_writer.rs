//! Durability harness helper: append acked commits to a file-backed
//! database until killed.
//!
//! Usage: `durable_writer <db-path> <n-commits>`
//!
//! Creates the database on first use (with a persistent `Log` ordered
//! collection), or reopens it and resumes where the log left off. After
//! every committed append it prints `ack <i>` on stdout and flushes, so a
//! supervising test can SIGKILL the process at a chosen ack and then
//! assert that every acknowledged commit survived the crash.

use gemstone::{GemStone, StoreConfig};
use std::io::Write;

fn main() {
    let mut args = std::env::args().skip(1);
    let usage = "usage: durable_writer <db-path> <n-commits>";
    let path = std::path::PathBuf::from(args.next().expect(usage));
    let n: i64 = args.next().expect(usage).parse().expect("commit count");

    let gs = if path.exists() {
        GemStone::open_file(&path, 64).expect("reopen database")
    } else {
        let cfg = StoreConfig { track_size: 2048, cache_tracks: 64, replicas: 1 };
        let gs = GemStone::create_file(&path, cfg).expect("create database");
        let mut s = gs.login("system").expect("login");
        s.run("Log := OrderedCollection new").expect("init log");
        s.commit().expect("commit schema");
        gs
    };

    let mut s = gs.login("system").expect("login");
    let start = s.run("Log size").expect("log size").as_int().expect("integer size");
    let out = std::io::stdout();
    for i in start..start + n {
        s.run(&format!("Log add: {i}")).expect("append");
        s.commit().expect("commit");
        // The ack is the durability promise: it is only printed after the
        // commit's root page is fsynced to the file.
        let mut h = out.lock();
        writeln!(h, "ack {i}").expect("stdout");
        h.flush().expect("flush");
    }
}
