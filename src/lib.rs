pub use gemstone;
